//! The coordinator actor: local-violation processing, global polls and
//! error-allowance reallocation on its own thread.
//!
//! # Fault tolerance
//!
//! Unlike the original lock-step loop — which blocked forever on
//! `recv()` and hence hung if a single monitor died — every collection
//! phase is bounded by a configurable **tick deadline**. A monitor that
//! misses [`quarantine_after`](CoordinatorActor::with_quarantine_after)
//! consecutive deadlines is **quarantined**: the coordinator stops
//! waiting for it (so later ticks complete at full speed), reports the
//! event to the runner (whose supervisor may restart the monitor), and
//! switches to **degraded aggregation** — the missing monitor is counted
//! at its local threshold `T_i`, the largest value consistent with it
//! having nothing to report. Since `Σ T_i ≤ T`, this substitution never
//! suppresses an alert another monitor's excess would have caused: degraded
//! mode errs toward alerting, preserving the paper's no-missed-alert
//! property at the price of possible false alerts. A quarantined monitor
//! that reports on time again is restored immediately.
//!
//! # Durability and failover
//!
//! Every frame is epoch-stamped ([`MonitorFrame`]/[`ControlFrame`]). A
//! coordinator rejects monitor frames sealed at an older epoch — they can
//! only come from before a failover, e.g. from a monitor that sat out the
//! [`NewEpoch`](CoordinatorToMonitor::NewEpoch) broadcast behind a
//! network partition. Rejected frames are counted
//! ([`TickSummary::stale_epoch_frames`]) and answered with a fresh
//! `NewEpoch` at the end of the round (*epoch repair*), after which the
//! sender's next report is current-epoch and it re-earns active status
//! through the normal quarantine-recovery path. Quarantined monitors are
//! only awaited again on **fresh** evidence — a `Revived` handshake or a
//! frame for a not-yet-closed tick — so a delayed frame replayed after
//! quarantine cannot resurrect a dead monitor.
//!
//! With [`with_checkpoint`](CoordinatorActor::with_checkpoint) the
//! coordinator appends every tick outcome to a [`Wal`] and periodically
//! gathers full [`CoordinatorSnapshot`]s (per-monitor sampler state via
//! [`RequestSnapshot`](CoordinatorToMonitor::RequestSnapshot), allowances,
//! update schedule), which a warm standby replays to resume with learned
//! intervals instead of the paper's conservative `I_d` restart.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use volley_core::adaptation::PeriodReport;
use volley_core::allocation::ErrorAllocator;
use volley_core::snapshot::SamplerSnapshot;
use volley_core::task::MonitorId;
use volley_core::time::Tick;
use volley_obs::{names, Counter, Histogram, Obs, SpanLog};

use crate::checkpoint::{CoordinatorSnapshot, MultitaskSnapshot, TickOutcome, Wal, WalRecord};
use crate::failure::{FailureInjector, FaultPath, FaultPlan};
use crate::link::MonitorLink;
use crate::message::{
    decode, encode, ControlFrame, CoordinatorToMonitor, CoordinatorToRunner, MonitorFrame,
    MonitorToCoordinator, TickSummary,
};

/// Default bound on how long the coordinator waits for one tick's
/// reports. Generous next to the microseconds a healthy monitor needs,
/// so deadline misses indicate real failures, not scheduling jitter.
pub const DEFAULT_TICK_DEADLINE: Duration = Duration::from_secs(1);

/// Default number of consecutive missed deadlines before quarantine.
pub const DEFAULT_QUARANTINE_AFTER: u32 = 3;

/// Checkpoint bookkeeping: the WAL plus the snapshot cadence.
#[derive(Debug)]
struct Checkpointer {
    wal: Wal,
    every: u64,
    /// Next tick at (or after) which a full snapshot is gathered.
    next: Tick,
}

/// The coordinator: evaluates the global condition on local-violation
/// reports and periodically redistributes the error allowance (§IV),
/// tolerating crashed, stalled and lossy monitors via tick deadlines,
/// quarantine and degraded aggregation, and surviving its own crash via
/// an epoch-fenced warm standby restoring from the write-ahead log.
#[derive(Debug)]
pub struct CoordinatorActor {
    global_threshold: f64,
    local_thresholds: Vec<f64>,
    allocator: ErrorAllocator,
    slack_ratio: f64,
    update_period: u64,
    next_update_tick: Tick,
    adaptive_allocation: bool,
    failure: FailureInjector,
    faults: FaultPlan,
    tick_deadline: Duration,
    quarantine_after: u32,
    epoch: u64,
    /// Last tick closed by a previous incarnation (failover resume).
    resume_last_tick: Option<Tick>,
    checkpoint: Option<Checkpointer>,
    /// Multi-task follower gate (§II.B): present only on follower-task
    /// coordinators driven by a [`LeaderState`] feed.
    multitask: Option<FollowerGate>,
    /// Observability handles (absent = zero instrumentation cost).
    obs: Option<CoordinatorObsHandles>,
}

/// The §II.B suppression policy: while the precondition (leader) task's
/// violation likelihood is low, this coordinator's monitors are paced to
/// a coarse interval; the moment the leader fires they snap back to their
/// adaptive schedules. The gate engages and releases on [`LeaderState`]
/// transitions fed by the runner.
///
/// [`LeaderState`]: MonitorToCoordinator::LeaderState
#[derive(Debug)]
struct FollowerGate {
    /// Coarse interval pushed to followers while the leader is calm.
    gated_interval: u32,
    /// Whether the gate is currently engaged (leader calm).
    engaged: bool,
    /// Lifetime engage/release transitions.
    flips: u64,
    /// Lifetime samples suppressed across this coordinator's fleet.
    suppressed: u64,
    /// Restored gate state not yet re-broadcast to the (fresh) monitors.
    needs_sync: bool,
    /// Whether this coordinator broadcasts [`SetGate`] itself. An
    /// external driver (the multi-task runner) turns this off and sends
    /// the gate frames FIFO-ordered with tick data, which keeps the tick
    /// at which a gate takes effect deterministic; the coordinator still
    /// tracks engage/release state, counts flips and suppressed samples,
    /// and checkpoints the gate.
    ///
    /// [`SetGate`]: CoordinatorToMonitor::SetGate
    broadcast: bool,
}

/// Pre-resolved obs instruments for the coordinator's hot paths.
#[derive(Debug)]
struct CoordinatorObsHandles {
    spans: SpanLog,
    tick_hist: Histogram,
    wal_hist: Histogram,
    checkpoint_hist: Histogram,
    polls: Counter,
    recvs: Counter,
    suppressed: Counter,
    gate_flips: Counter,
}

/// Mutable per-run liveness bookkeeping.
struct Liveness {
    quarantined: Vec<bool>,
    /// A quarantined monitor showing signs of life (a `Revived` notice
    /// from the runner's supervisor, or a *fresh* frame of its own): the
    /// next collection awaits it again so it can re-earn active status.
    reviving: Vec<bool>,
    consecutive_missed: Vec<u32>,
    last_tick: Option<Tick>,
    /// Frames read ahead of their round (defensive; lock-step rarely
    /// produces them).
    pending: VecDeque<Bytes>,
    /// Stale-epoch frames rejected this round.
    stale_epoch: u32,
    /// Monitors that sent a stale-epoch frame and owe an epoch repair.
    needs_epoch: Vec<bool>,
}

impl Liveness {
    fn new(monitors: usize) -> Self {
        Liveness {
            quarantined: vec![false; monitors],
            reviving: vec![false; monitors],
            consecutive_missed: vec![0; monitors],
            last_tick: None,
            pending: VecDeque::new(),
            stale_epoch: 0,
            needs_epoch: vec![false; monitors],
        }
    }

    fn active(&self, idx: usize) -> bool {
        !self.quarantined[idx]
    }

    /// Whether a tick collection should wait for this monitor.
    fn awaited(&self, idx: usize) -> bool {
        !self.quarantined[idx] || self.reviving[idx]
    }

    fn any_quarantined(&self) -> bool {
        self.quarantined.iter().any(|&q| q)
    }

    /// Marks evidence that a quarantined monitor is alive again.
    fn mark_reviving(&mut self, idx: usize) {
        if idx < self.quarantined.len() && self.quarantined[idx] && !self.reviving[idx] {
            self.reviving[idx] = true;
            self.consecutive_missed[idx] = 0;
        }
    }
}

/// The monitor a protocol message claims to come from; `None` for
/// runner-originated control notices that speak for no monitor.
fn msg_sender(msg: &MonitorToCoordinator) -> Option<MonitorId> {
    match *msg {
        MonitorToCoordinator::TickDone { monitor, .. }
        | MonitorToCoordinator::PollReply { monitor, .. }
        | MonitorToCoordinator::Report { monitor, .. }
        | MonitorToCoordinator::Revived { monitor }
        | MonitorToCoordinator::StateSnapshot { monitor, .. } => Some(monitor),
        MonitorToCoordinator::LeaderState { .. } => None,
    }
}

/// Whether `msg` is *fresh* evidence of life — something a live monitor
/// would send now, as opposed to a delayed or replayed frame from an
/// already-closed tick. Only fresh evidence may resurrect a quarantined
/// monitor: awaiting one again on a stale delayed frame would stall every
/// round on a monitor that is in fact dead.
fn is_fresh(msg: &MonitorToCoordinator, last_tick: Option<Tick>) -> bool {
    match *msg {
        MonitorToCoordinator::Revived { .. } => true,
        MonitorToCoordinator::TickDone { tick, .. }
        | MonitorToCoordinator::PollReply { tick, .. } => last_tick.is_none_or(|lt| tick > lt),
        MonitorToCoordinator::Report { .. }
        | MonitorToCoordinator::StateSnapshot { .. }
        | MonitorToCoordinator::LeaderState { .. } => false,
    }
}

impl CoordinatorActor {
    /// Creates a coordinator for the monitors whose local thresholds are
    /// `local_thresholds` (one per monitor, used for degraded
    /// aggregation), sharing `global_threshold` and the allocator's
    /// global allowance.
    ///
    /// `adaptive_allocation` selects between the paper's `adapt` scheme
    /// and the static `even` baseline; `slack_ratio` must match the
    /// monitors' adaptation `γ`.
    pub fn new(
        global_threshold: f64,
        local_thresholds: Vec<f64>,
        allocator: ErrorAllocator,
        slack_ratio: f64,
        adaptive_allocation: bool,
        failure: FailureInjector,
    ) -> Self {
        let update_period = allocator.config().update_period_ticks;
        CoordinatorActor {
            global_threshold,
            local_thresholds,
            allocator,
            slack_ratio,
            update_period,
            next_update_tick: update_period,
            adaptive_allocation,
            failure,
            faults: FaultPlan::default(),
            tick_deadline: DEFAULT_TICK_DEADLINE,
            quarantine_after: DEFAULT_QUARANTINE_AFTER,
            epoch: 0,
            resume_last_tick: None,
            checkpoint: None,
            multitask: None,
            obs: None,
        }
    }

    /// Enables the §II.B follower gate: while the leader task is calm
    /// (per [`LeaderState`](MonitorToCoordinator::LeaderState) notices
    /// fed by the runner), every monitor of this task is paced to at most
    /// one sample per `gated_interval` ticks (minimum 2 — a gate of 1
    /// would suppress nothing). The gate starts released and engages on
    /// the first calm notice.
    #[must_use]
    pub fn with_multitask(mut self, gated_interval: u32) -> Self {
        self.multitask = Some(FollowerGate {
            gated_interval: gated_interval.max(2),
            engaged: false,
            flips: 0,
            suppressed: 0,
            needs_sync: false,
            broadcast: true,
        });
        self
    }

    /// Hands gate *propagation* to an external driver: the coordinator
    /// stops broadcasting [`CoordinatorToMonitor::SetGate`] and only
    /// tracks gate state (engage/release transitions, suppressed-sample
    /// counts, checkpointing). The driver must send the gate frames on
    /// each monitor's inbox link itself, FIFO-ordered with tick data, so
    /// the tick at which a gate takes effect is deterministic. Must
    /// follow [`with_multitask`](Self::with_multitask).
    #[must_use]
    pub fn with_external_gate_driver(mut self) -> Self {
        if let Some(gate) = self.multitask.as_mut() {
            gate.broadcast = false;
        }
        self
    }

    /// Restores follower-gate state from a checkpoint (failover resume).
    /// Must follow [`with_multitask`](Self::with_multitask); an engaged
    /// gate is re-broadcast to the (freshly spawned, ungated) monitors on
    /// the first tick round, so suppression survives the failover intact.
    #[must_use]
    pub fn with_multitask_resume(mut self, snapshot: &MultitaskSnapshot) -> Self {
        if let Some(gate) = self.multitask.as_mut() {
            gate.engaged = snapshot.engaged;
            gate.flips = snapshot.flips;
            gate.suppressed = snapshot.suppressed;
            gate.needs_sync = snapshot.engaged;
        }
        self
    }

    /// Installs a deterministic fault plan for the monitor→coordinator
    /// message paths.
    #[must_use]
    pub fn with_fault_plan(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches observability: spans + latency histograms for the tick
    /// round ([`names::COORDINATOR_TICK_NS`]), WAL appends
    /// ([`names::WAL_APPEND_NS`]) and checkpoint writes
    /// ([`names::CHECKPOINT_WRITE_NS`]), plus counters for global polls
    /// and received transport frames. Handles are resolved once so the
    /// tick loop never touches the registry mutex.
    #[must_use]
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = Some(CoordinatorObsHandles {
            spans: obs.spans().clone(),
            tick_hist: obs.registry().histogram(names::COORDINATOR_TICK_NS),
            wal_hist: obs.registry().histogram(names::WAL_APPEND_NS),
            checkpoint_hist: obs.registry().histogram(names::CHECKPOINT_WRITE_NS),
            polls: obs.registry().counter(names::COORDINATOR_POLLS_TOTAL),
            recvs: obs.registry().counter(names::TRANSPORT_RECVS_TOTAL),
            suppressed: obs
                .registry()
                .counter(names::MULTITASK_SUPPRESSED_SAMPLES_TOTAL),
            gate_flips: obs.registry().counter(names::MULTITASK_GATE_FLIPS_TOTAL),
        });
        self
    }

    /// Bounds how long each collection phase waits for monitor replies.
    #[must_use]
    pub fn with_tick_deadline(mut self, deadline: Duration) -> Self {
        self.tick_deadline = deadline.max(Duration::from_millis(1));
        self
    }

    /// Sets how many consecutive missed deadlines quarantine a monitor
    /// (minimum 1).
    #[must_use]
    pub fn with_quarantine_after(mut self, rounds: u32) -> Self {
        self.quarantine_after = rounds.max(1);
        self
    }

    /// Seals every control frame at `epoch` and rejects monitor frames
    /// from older epochs. A standby taking over bumps the epoch so the
    /// fleet can tell the new primary's traffic from the old one's.
    #[must_use]
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Resumes after a failover: `last_tick` is the last tick the
    /// previous incarnation closed (`None` if none completed) and
    /// `next_update_tick` restores the §IV-B reallocation schedule.
    #[must_use]
    pub fn with_resume(mut self, last_tick: Option<Tick>, next_update_tick: Tick) -> Self {
        self.resume_last_tick = last_tick;
        self.next_update_tick = next_update_tick;
        if let Some(cp) = self.checkpoint.as_mut() {
            cp.next = last_tick.map_or(0, |t| t + cp.every);
        }
        self
    }

    /// Checkpoints to `wal`: every tick outcome is appended, and every
    /// `every` ticks (minimum 1) the coordinator gathers a full snapshot
    /// of its own and every reachable monitor's adaptation state.
    #[must_use]
    pub fn with_checkpoint(mut self, wal: Wal, every: u64) -> Self {
        let every = every.max(1);
        let next = self.resume_last_tick.map_or(0, |t| t + every);
        self.checkpoint = Some(Checkpointer { wal, every, next });
        self
    }

    /// The global threshold.
    pub fn global_threshold(&self) -> f64 {
        self.global_threshold
    }

    /// The epoch this coordinator seals its frames with.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn monitors(&self) -> usize {
        self.local_thresholds.len()
    }

    /// Whether monitor `idx` is reachable (not partitioned) at `tick`.
    fn reachable(&self, idx: usize, tick: Tick) -> bool {
        !self.faults.partitioned(MonitorId(idx as u32), tick)
    }

    /// Receives the next frame: buffered read-ahead first, then the
    /// channel, bounded by `deadline`. `Ok(None)` means the deadline
    /// passed; `Err(())` means every sender disconnected.
    fn recv_frame(
        &self,
        live: &mut Liveness,
        from_monitors: &Receiver<Bytes>,
        deadline: Instant,
    ) -> Result<Option<Bytes>, ()> {
        if let Some(frame) = live.pending.pop_front() {
            return Ok(Some(frame));
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Ok(None);
        }
        match from_monitors.recv_timeout(remaining) {
            Ok(frame) => {
                if let Some(handles) = &self.obs {
                    handles.recvs.inc();
                }
                Ok(Some(frame))
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(()),
        }
    }

    /// Receives and decodes the next protocol message within `deadline`,
    /// enforcing the epoch fence, transparently consuming supervisor
    /// `Revived` notices and noting *fresh* life signs from quarantined
    /// monitors. `Ok(None)` means the deadline passed; `Err(())` means
    /// every sender disconnected.
    fn recv_msg(
        &self,
        live: &mut Liveness,
        from_monitors: &Receiver<Bytes>,
        deadline: Instant,
    ) -> Result<Option<MonitorToCoordinator>, ()> {
        loop {
            let Some(frame) = self.recv_frame(live, from_monitors, deadline)? else {
                return Ok(None);
            };
            let Ok(MonitorFrame { epoch, msg }) = decode::<MonitorFrame>(&frame) else {
                continue; // malformed frame
            };
            let sender = msg_sender(&msg).map(|id| id.0 as usize);
            if epoch < self.epoch {
                // A frame from before the failover — e.g. a monitor that
                // missed the NewEpoch broadcast behind a partition, or
                // traffic from the deposed primary's world. Reject it
                // (split-brain safety) but schedule an epoch repair so
                // the sender can rejoin the current epoch.
                live.stale_epoch += 1;
                if let Some(idx) = sender.filter(|&i| i < self.monitors()) {
                    live.needs_epoch[idx] = true;
                }
                continue;
            }
            if let Some(idx) = sender.filter(|&i| i < self.monitors()) {
                if is_fresh(&msg, live.last_tick) {
                    live.mark_reviving(idx);
                }
            }
            if matches!(msg, MonitorToCoordinator::Revived { .. }) {
                continue; // control notice, not a protocol reply
            }
            return Ok(Some(msg));
        }
    }

    /// Runs the coordinator loop until the monitor channel disconnects,
    /// consuming the actor.
    ///
    /// `from_monitors` carries encoded [`MonitorFrame`]s; `to_monitors[i]`
    /// is monitor *i*'s inbox link; each tick's
    /// [`CoordinatorToRunner::Summary`] — interleaved with quarantine and
    /// recovery events — is emitted on `to_runner`.
    pub fn run(
        mut self,
        from_monitors: Receiver<Bytes>,
        to_monitors: Vec<MonitorLink>,
        to_runner: Sender<Bytes>,
    ) {
        let n = self.monitors();
        debug_assert_eq!(to_monitors.len(), n);
        let mut live = Liveness::new(n);
        live.last_tick = self.resume_last_tick;
        while let Ok(true) = self.run_tick(&mut live, &from_monitors, &to_monitors, &to_runner) {}
    }

    /// One full tick round. `Ok(true)` continues, `Ok(false)` stops
    /// cleanly (runner gone, or an injected coordinator crash fired),
    /// `Err(())` stops on monitor disconnect.
    fn run_tick(
        &mut self,
        live: &mut Liveness,
        from_monitors: &Receiver<Bytes>,
        to_monitors: &[MonitorLink],
        to_runner: &Sender<Bytes>,
    ) -> Result<bool, ()> {
        let n = self.monitors();
        live.stale_epoch = 0;
        // One span + histogram pair covers the whole round — collection
        // wait included, which is what makes a stalled monitor visible as
        // coordinator tick latency.
        let _tick_span = self
            .obs
            .as_ref()
            .map(|h| h.spans.span_timed("coordinator_tick", &h.tick_hist));

        // Phase 1: collect TickDone from every awaited monitor — active
        // ones plus quarantined ones showing signs of life, minus any the
        // fault plan has partitioned away — bounded by the tick deadline.
        // When nothing at all is awaited (everything quarantined or
        // unreachable) the round still waits out the deadline: that
        // throttles the loop and gives `Revived` notices a chance to
        // arrive.
        let deadline = Instant::now() + self.tick_deadline;
        let mut seen = vec![false; n];
        let mut round_tick: Option<Tick> = None;
        let mut scheduled = 0u32;
        let mut violations = 0u32;
        let mut suppressed_samples = 0u32;
        loop {
            // `recv_msg` can grow the awaited set mid-round, so the exit
            // condition is re-evaluated every iteration. Partitioned
            // monitors are never waited for — their frames cannot arrive
            // — but still count as missing below, so a long partition
            // quarantines them and degraded aggregation takes over.
            let expect = round_tick.unwrap_or_else(|| live.last_tick.map_or(0, |t| t + 1));
            let awaited = |live: &Liveness, i: usize| live.awaited(i) && self.reachable(i, expect);
            if (0..n).any(|i| awaited(live, i)) && (0..n).all(|i| !awaited(live, i) || seen[i]) {
                break;
            }
            let Some(msg) = self.recv_msg(live, from_monitors, deadline)? else {
                break; // deadline: finish the round with whoever reported
            };
            if let MonitorToCoordinator::LeaderState { active, .. } = msg {
                // The runner sends leader-state notices ahead of a tick's
                // data, so the gate decision lands before this round's
                // reports are produced downstream.
                self.apply_leader_state(active, to_monitors);
                continue;
            }
            let MonitorToCoordinator::TickDone {
                monitor,
                tick: t,
                sampled,
                violation,
                suppressed,
            } = msg
            else {
                continue; // stale replies/reports from previous phases
            };
            let idx = monitor.0 as usize;
            if idx >= n {
                continue;
            }
            match round_tick {
                None => {
                    if live.last_tick.is_some_and(|lt| t <= lt) {
                        continue; // late frame for an already-closed tick
                    }
                    round_tick = Some(t);
                }
                Some(rt) if t < rt => continue, // late frame
                Some(rt) if t > rt => {
                    // Read-ahead (possible only if the runner raced ahead);
                    // keep it for the next round.
                    live.pending.push_back(MonitorFrame::seal(self.epoch, msg));
                    continue;
                }
                Some(_) => {}
            }
            if seen[idx] {
                continue; // duplicated frame
            }
            seen[idx] = true;
            live.consecutive_missed[idx] = 0;
            if live.quarantined[idx] {
                live.quarantined[idx] = false;
                live.reviving[idx] = false;
                let event = CoordinatorToRunner::MonitorRecovered { monitor, tick: t };
                if to_runner.send(encode(&event)).is_err() {
                    return Ok(false);
                }
            }
            if sampled {
                scheduled += 1;
            }
            if suppressed {
                suppressed_samples += 1;
            }
            // The report path may be lossy: a dropped report means the
            // coordinator never learns of the local violation.
            if violation
                && !self.faults.drops(FaultPath::ViolationReport, monitor, t)
                && !self.failure.should_drop()
            {
                violations += 1;
            }
        }
        let tick = match round_tick {
            Some(t) => t,
            // Nothing arrived (every monitor quarantined or silent): the
            // lock-step still advances one tick so the runner's loop —
            // which sent this tick's data — gets its summary.
            None => live.last_tick.map_or(0, |t| t + 1),
        };
        live.last_tick = Some(tick);

        // An injected coordinator crash: the primary vanishes without a
        // summary and without checkpointing this tick, exactly as a real
        // crash mid-round would — tick `tick` is newer than the
        // checkpoint horizon and the standby must re-drive it.
        if self
            .faults
            .coordinator_crash_tick()
            .is_some_and(|c| tick >= c)
        {
            return Ok(false);
        }

        // Deadline bookkeeping: missed reports, quarantine decisions.
        let mut missing_reports = 0u32;
        for (idx, &seen_this_round) in seen.iter().enumerate() {
            if live.quarantined[idx] {
                missing_reports += 1;
                // A reviving monitor that keeps missing deadlines loses
                // its comeback credit (stop waiting for it again).
                if live.reviving[idx] {
                    live.consecutive_missed[idx] += 1;
                    if live.consecutive_missed[idx] >= self.quarantine_after {
                        live.reviving[idx] = false;
                    }
                }
                continue;
            }
            if seen_this_round {
                continue;
            }
            missing_reports += 1;
            live.consecutive_missed[idx] += 1;
            if live.consecutive_missed[idx] >= self.quarantine_after {
                live.quarantined[idx] = true;
                let event = CoordinatorToRunner::MonitorQuarantined {
                    monitor: MonitorId(idx as u32),
                    tick,
                    consecutive_missed: live.consecutive_missed[idx],
                };
                if to_runner.send(encode(&event)).is_err() {
                    return Ok(false);
                }
            }
        }

        // Phase 2: global poll on any surviving local violation.
        let mut poll_samples = 0u32;
        let mut polled = false;
        let mut alerted = false;
        let mut degraded = false;
        if violations > 0 {
            polled = true;
            if let Some(handles) = &self.obs {
                handles.polls.inc();
            }
            // Wait only for monitors that can answer in time: active,
            // reachable, poll deliverable, reply neither dropped nor
            // delayed by the plan (drop/delay decisions are pure functions
            // shared with the injection sites, so predicting them here
            // changes nothing about outcomes — it only avoids pointless
            // deadline waits).
            let mut awaiting = vec![false; n];
            for idx in 0..n {
                if !live.active(idx) || !self.reachable(idx, tick) {
                    continue; // unreachable; aggregate at T_i
                }
                let monitor = MonitorId(idx as u32);
                let poll = ControlFrame::seal(self.epoch, CoordinatorToMonitor::Poll { tick });
                if !to_monitors[idx].send(poll) {
                    continue; // monitor process gone; aggregate at T_i
                }
                awaiting[idx] = !self.faults.drops(FaultPath::PollReply, monitor, tick)
                    && !self.faults.delays(monitor, tick);
            }
            let mut aggregate = 0.0;
            let mut replied = vec![false; n];
            let poll_deadline = Instant::now() + self.tick_deadline;
            while !(0..n).all(|i| !awaiting[i] || replied[i]) {
                let Some(msg) = self.recv_msg(live, from_monitors, poll_deadline)? else {
                    break;
                };
                let MonitorToCoordinator::PollReply {
                    monitor,
                    tick: t,
                    value,
                    forced_sample,
                } = msg
                else {
                    continue;
                };
                let idx = monitor.0 as usize;
                if idx >= n || t != tick || replied[idx] {
                    continue; // stale, foreign or duplicated reply
                }
                if self.faults.drops(FaultPath::PollReply, monitor, tick) {
                    continue; // the network ate this reply
                }
                replied[idx] = true;
                aggregate += value;
                if forced_sample {
                    poll_samples += 1;
                }
            }
            // Degraded aggregation: every monitor that did not answer is
            // counted at its local threshold T_i — the largest value it
            // could hold without having reported a local violation.
            for (idx, &got_reply) in replied.iter().enumerate() {
                if !got_reply {
                    aggregate += self.local_thresholds[idx];
                    degraded = true;
                }
            }
            alerted = aggregate > self.global_threshold;
        } else if live.any_quarantined() {
            degraded = missing_reports > 0;
        }

        // Phase 3: periodic allowance reallocation.
        if tick >= self.next_update_tick {
            self.next_update_tick = tick + self.update_period;
            if self.adaptive_allocation && self.monitors() > 1 {
                self.reallocate(live, from_monitors, to_monitors)?;
            }
        }

        // Phase 4: durability — append the tick outcome, snapshot on
        // schedule.
        let outcome = TickOutcome {
            epoch: self.epoch,
            tick,
            polled,
            alerted,
            local_violations: violations,
        };
        self.checkpoint_tick(live, from_monitors, to_monitors, outcome);

        // Epoch repair: answer every stale-epoch sender with the current
        // epoch so it can rejoin (its next report will be fresh and
        // current-epoch, re-earning active status the normal way).
        for (idx, link) in to_monitors.iter().enumerate().take(n) {
            if std::mem::take(&mut live.needs_epoch[idx]) {
                let repair = CoordinatorToMonitor::NewEpoch { epoch: self.epoch };
                let _ = link.send(ControlFrame::seal(self.epoch, repair));
            }
        }

        // Follower-gate accounting, plus the failover resync: a restored
        // engaged gate is pushed to the freshly spawned (ungated)
        // monitors here if no LeaderState notice beat us to it.
        let mut gated = false;
        if let Some(gate) = self.multitask.as_mut() {
            gate.suppressed += u64::from(suppressed_samples);
            gated = gate.engaged;
            if std::mem::take(&mut gate.needs_sync) && gate.broadcast {
                let interval = gate.engaged.then_some(gate.gated_interval);
                let set = CoordinatorToMonitor::SetGate { interval };
                let frame = ControlFrame::seal(self.epoch, set);
                for link in to_monitors.iter().take(n) {
                    let _ = link.send(frame.clone());
                }
            }
        }
        if suppressed_samples > 0 {
            if let Some(handles) = &self.obs {
                handles.suppressed.add(u64::from(suppressed_samples));
            }
        }

        let summary = CoordinatorToRunner::Summary(TickSummary {
            tick,
            scheduled_samples: scheduled,
            poll_samples,
            local_violations: violations,
            polled,
            alerted,
            missing_reports,
            degraded,
            stale_epoch_frames: live.stale_epoch,
            suppressed_samples,
            gated,
        });
        Ok(to_runner.send(encode(&summary)).is_ok())
    }

    /// Applies a leader violation-likelihood transition to the follower
    /// gate: a calm leader engages the gate (broadcast the coarse
    /// interval), an active leader releases it (broadcast the snap-back).
    /// No-op when this coordinator has no gate configured.
    fn apply_leader_state(&mut self, active: bool, to_monitors: &[MonitorLink]) {
        let Some(gate) = self.multitask.as_mut() else {
            return;
        };
        let engage = !active;
        let flip = engage != gate.engaged;
        let resync = std::mem::take(&mut gate.needs_sync);
        if !flip && !resync {
            return;
        }
        gate.engaged = engage;
        if flip {
            gate.flips += 1;
        }
        if gate.broadcast {
            let interval = engage.then_some(gate.gated_interval);
            let frame = ControlFrame::seal(self.epoch, CoordinatorToMonitor::SetGate { interval });
            for link in to_monitors {
                let _ = link.send(frame.clone());
            }
        }
        if flip {
            if let Some(handles) = &self.obs {
                handles.gate_flips.inc();
            }
        }
    }

    /// Appends `outcome` to the WAL and, on the snapshot schedule,
    /// gathers and appends a full [`CoordinatorSnapshot`]. WAL I/O errors
    /// are swallowed: durability is best-effort and never worth crashing
    /// the primary over (a standby restoring from a short WAL just falls
    /// back to conservative restarts for the missing state).
    fn checkpoint_tick(
        &mut self,
        live: &mut Liveness,
        from_monitors: &Receiver<Bytes>,
        to_monitors: &[MonitorLink],
        outcome: TickOutcome,
    ) {
        let due = match self.checkpoint.as_mut() {
            None => return,
            Some(cp) => {
                {
                    let _timed = self
                        .obs
                        .as_ref()
                        .map(|h| h.spans.span_timed("wal_append", &h.wal_hist));
                    let _ = cp.wal.append(&WalRecord::Tick(outcome));
                }
                let due = outcome.tick >= cp.next;
                if due {
                    cp.next = outcome.tick + cp.every;
                }
                due
            }
        };
        if !due {
            return;
        }
        // The checkpoint span covers the full durability round: gathering
        // sampler snapshots from the fleet plus the WAL write.
        let _timed = self
            .obs
            .as_ref()
            .map(|h| h.spans.span_timed("checkpoint_write", &h.checkpoint_hist));
        let samplers = self.gather_snapshots(live, from_monitors, to_monitors, outcome.tick);
        let snapshot = CoordinatorSnapshot {
            epoch: self.epoch,
            tick: outcome.tick,
            next_update_tick: self.next_update_tick,
            allowances: self.allocator.allowances().to_vec(),
            samplers,
            multitask: self.multitask.as_ref().map(|g| MultitaskSnapshot {
                engaged: g.engaged,
                flips: g.flips,
                suppressed: g.suppressed,
            }),
        };
        if let Some(cp) = self.checkpoint.as_mut() {
            let _ = cp.wal.append_snapshot(&snapshot);
        }
    }

    /// Asks every active, reachable monitor for its sampler state and
    /// collects the replies within one tick deadline. Monitors that
    /// cannot answer get a `None` slot — after a failover they restart
    /// conservatively at `I_d` instead of restoring.
    fn gather_snapshots(
        &self,
        live: &mut Liveness,
        from_monitors: &Receiver<Bytes>,
        to_monitors: &[MonitorLink],
        tick: Tick,
    ) -> Vec<Option<SamplerSnapshot>> {
        let n = self.monitors();
        let mut snaps: Vec<Option<SamplerSnapshot>> = vec![None; n];
        let mut awaiting = vec![false; n];
        for idx in 0..n {
            if !live.active(idx) || !self.reachable(idx, tick) {
                continue;
            }
            let request = ControlFrame::seal(self.epoch, CoordinatorToMonitor::RequestSnapshot);
            awaiting[idx] = to_monitors[idx].send(request);
        }
        let deadline = Instant::now() + self.tick_deadline;
        while (0..n).any(|i| awaiting[i] && snaps[i].is_none()) {
            let Ok(Some(msg)) = self.recv_msg(live, from_monitors, deadline) else {
                break; // deadline or disconnect: checkpoint what we have
            };
            if let MonitorToCoordinator::StateSnapshot { monitor, snapshot } = msg {
                let idx = monitor.0 as usize;
                if idx < n {
                    snaps[idx] = Some(snapshot);
                }
            }
        }
        snaps
    }

    /// One §IV-B updating round: gather period reports, update the
    /// allocator, push new allowances. If any monitor is quarantined or
    /// misses the deadline, the round is skipped and every monitor simply
    /// carries its previous allowance forward — reallocation is an
    /// optimization, never worth stalling or crashing the task over.
    fn reallocate(
        &mut self,
        live: &mut Liveness,
        from_monitors: &Receiver<Bytes>,
        to_monitors: &[MonitorLink],
    ) -> Result<(), ()> {
        let n = self.monitors();
        if live.any_quarantined() {
            return Ok(());
        }
        for tx in to_monitors {
            let request = ControlFrame::seal(self.epoch, CoordinatorToMonitor::RequestReport);
            if !tx.send(request) {
                return Ok(()); // dead monitor: skip the round
            }
        }
        let mut reports: Vec<Option<PeriodReport>> = vec![None; n];
        let mut received = 0usize;
        let deadline = Instant::now() + self.tick_deadline;
        while received < n {
            let Some(msg) = self.recv_msg(live, from_monitors, deadline)? else {
                return Ok(()); // deadline: carry allowances forward
            };
            if let MonitorToCoordinator::Report { monitor, report } = msg {
                let idx = monitor.0 as usize;
                if idx < n && reports[idx].is_none() {
                    reports[idx] = Some(report);
                    received += 1;
                }
            }
        }
        let reports: Vec<PeriodReport> = reports.into_iter().flatten().collect();
        if let Ok(decision) = self.allocator.update(&reports, self.slack_ratio) {
            if decision.reallocated {
                for (tx, &err) in to_monitors.iter().zip(decision.allowances.iter()) {
                    let set = CoordinatorToMonitor::SetAllowance { err };
                    let _ = tx.send(ControlFrame::seal(self.epoch, set));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::Replay;
    use crossbeam::channel::unbounded;
    use std::path::PathBuf;
    use volley_core::allocation::AllocationConfig;

    /// Receives runner frames until the next tick summary, returning it
    /// plus any liveness events seen on the way.
    fn next_summary(runner_rx: &Receiver<Bytes>) -> (TickSummary, Vec<CoordinatorToRunner>) {
        let mut events = Vec::new();
        loop {
            let frame = runner_rx
                .recv_timeout(Duration::from_secs(5))
                .expect("coordinator alive");
            match decode::<CoordinatorToRunner>(&frame).expect("well-formed frame") {
                CoordinatorToRunner::Summary(summary) => return (summary, events),
                event => events.push(event),
            }
        }
    }

    fn new_coordinator(threshold: f64) -> CoordinatorActor {
        let allocator = ErrorAllocator::new(AllocationConfig::default(), 0.01, 1).unwrap();
        CoordinatorActor::new(
            threshold,
            vec![threshold],
            allocator,
            0.2,
            true,
            FailureInjector::lossless(),
        )
    }

    /// Drives a 1-monitor coordinator by hand: send sealed frames,
    /// receive summaries.
    fn harness_with(
        coord: CoordinatorActor,
    ) -> (
        Sender<Bytes>,
        Receiver<Bytes>,
        Receiver<Bytes>,
        std::thread::JoinHandle<()>,
    ) {
        let (mon_tx, mon_rx) = unbounded::<Bytes>();
        let (to_mon_tx, to_mon_rx) = unbounded::<Bytes>();
        let (runner_tx, runner_rx) = unbounded::<Bytes>();
        let handle = std::thread::spawn(move || {
            coord.run(mon_rx, vec![MonitorLink::new(to_mon_tx)], runner_tx)
        });
        (mon_tx, to_mon_rx, runner_rx, handle)
    }

    fn harness(
        threshold: f64,
    ) -> (
        Sender<Bytes>,
        Receiver<Bytes>,
        Receiver<Bytes>,
        std::thread::JoinHandle<()>,
    ) {
        harness_with(new_coordinator(threshold))
    }

    fn seal0(msg: MonitorToCoordinator) -> Bytes {
        MonitorFrame::seal(0, msg)
    }

    #[test]
    fn quiet_tick_produces_summary_without_poll() {
        let (mon_tx, _to_mon, runner_rx, handle) = harness(100.0);
        mon_tx
            .send(seal0(MonitorToCoordinator::TickDone {
                monitor: MonitorId(0),
                tick: 0,
                sampled: true,
                violation: false,
                suppressed: false,
            }))
            .unwrap();
        let (summary, events) = next_summary(&runner_rx);
        assert_eq!(summary.tick, 0);
        assert_eq!(summary.scheduled_samples, 1);
        assert!(!summary.polled);
        assert!(!summary.alerted);
        assert_eq!(summary.missing_reports, 0);
        assert!(!summary.degraded);
        assert_eq!(summary.stale_epoch_frames, 0);
        assert!(events.is_empty());
        drop(mon_tx);
        handle.join().unwrap();
    }

    #[test]
    fn violation_triggers_poll_and_alert() {
        let (mon_tx, to_mon, runner_rx, handle) = harness(100.0);
        mon_tx
            .send(seal0(MonitorToCoordinator::TickDone {
                monitor: MonitorId(0),
                tick: 3,
                sampled: true,
                violation: true,
                suppressed: false,
            }))
            .unwrap();
        // Coordinator must ask for a poll, sealed at its epoch.
        let poll: ControlFrame = decode(&to_mon.recv().unwrap()).unwrap();
        assert_eq!(poll.epoch, 0);
        assert!(matches!(poll.msg, CoordinatorToMonitor::Poll { tick: 3 }));
        // Reply above the threshold.
        mon_tx
            .send(seal0(MonitorToCoordinator::PollReply {
                monitor: MonitorId(0),
                tick: 3,
                value: 250.0,
                forced_sample: false,
            }))
            .unwrap();
        let (summary, _) = next_summary(&runner_rx);
        assert!(summary.polled);
        assert!(summary.alerted);
        assert!(!summary.degraded);
        assert_eq!(summary.local_violations, 1);
        drop(mon_tx);
        handle.join().unwrap();
    }

    #[test]
    fn poll_below_threshold_does_not_alert() {
        let (mon_tx, to_mon, runner_rx, handle) = harness(100.0);
        mon_tx
            .send(seal0(MonitorToCoordinator::TickDone {
                monitor: MonitorId(0),
                tick: 0,
                sampled: true,
                violation: true,
                suppressed: false,
            }))
            .unwrap();
        let _: ControlFrame = decode(&to_mon.recv().unwrap()).unwrap();
        mon_tx
            .send(seal0(MonitorToCoordinator::PollReply {
                monitor: MonitorId(0),
                tick: 0,
                value: 50.0,
                forced_sample: true,
            }))
            .unwrap();
        let (summary, _) = next_summary(&runner_rx);
        assert!(summary.polled);
        assert!(!summary.alerted);
        assert_eq!(summary.poll_samples, 1);
        drop(mon_tx);
        handle.join().unwrap();
    }

    #[test]
    fn dropped_reports_suppress_polls() {
        let (mon_tx, mon_rx) = unbounded::<Bytes>();
        let (to_mon_tx, to_mon_rx) = unbounded::<Bytes>();
        let (runner_tx, runner_rx) = unbounded::<Bytes>();
        let allocator = ErrorAllocator::new(AllocationConfig::default(), 0.01, 1).unwrap();
        let coord = CoordinatorActor::new(
            100.0,
            vec![100.0],
            allocator,
            0.2,
            true,
            FailureInjector::new(1.0, 1), // drop every report
        );
        let handle = std::thread::spawn(move || {
            coord.run(mon_rx, vec![MonitorLink::new(to_mon_tx)], runner_tx)
        });
        mon_tx
            .send(seal0(MonitorToCoordinator::TickDone {
                monitor: MonitorId(0),
                tick: 0,
                sampled: true,
                violation: true,
                suppressed: false,
            }))
            .unwrap();
        let (summary, _) = next_summary(&runner_rx);
        assert!(!summary.polled, "dropped report must suppress the poll");
        assert_eq!(summary.local_violations, 0);
        assert!(to_mon_rx.try_recv().is_err());
        drop(mon_tx);
        handle.join().unwrap();
    }

    #[test]
    fn disconnect_terminates_coordinator() {
        let (mon_tx, _to_mon, _runner_rx, handle) = harness(10.0);
        drop(mon_tx);
        handle.join().unwrap();
    }

    /// A 2-monitor coordinator with a short deadline for fault tests.
    fn degraded_coordinator(quarantine_after: u32) -> CoordinatorActor {
        let allocator = ErrorAllocator::new(AllocationConfig::default(), 0.01, 2).unwrap();
        CoordinatorActor::new(
            100.0,
            vec![50.0, 50.0],
            allocator,
            0.2,
            false,
            FailureInjector::lossless(),
        )
        .with_tick_deadline(Duration::from_millis(30))
        .with_quarantine_after(quarantine_after)
    }

    #[allow(clippy::type_complexity)]
    fn degraded_harness_with(
        coord: CoordinatorActor,
    ) -> (
        Sender<Bytes>,
        Receiver<Bytes>,
        Receiver<Bytes>,
        Receiver<Bytes>,
        std::thread::JoinHandle<()>,
    ) {
        let (mon_tx, mon_rx) = unbounded::<Bytes>();
        let (to_mon0_tx, to_mon0_rx) = unbounded::<Bytes>();
        let (to_mon1_tx, to_mon1_rx) = unbounded::<Bytes>();
        let (runner_tx, runner_rx) = unbounded::<Bytes>();
        let handle = std::thread::spawn(move || {
            coord.run(
                mon_rx,
                vec![MonitorLink::new(to_mon0_tx), MonitorLink::new(to_mon1_tx)],
                runner_tx,
            )
        });
        (mon_tx, to_mon0_rx, to_mon1_rx, runner_rx, handle)
    }

    #[allow(clippy::type_complexity)]
    fn degraded_harness(
        quarantine_after: u32,
    ) -> (
        Sender<Bytes>,
        Receiver<Bytes>,
        Receiver<Bytes>,
        Receiver<Bytes>,
        std::thread::JoinHandle<()>,
    ) {
        degraded_harness_with(degraded_coordinator(quarantine_after))
    }

    fn tick_done(monitor: u32, tick: Tick, violation: bool) -> Bytes {
        seal0(MonitorToCoordinator::TickDone {
            monitor: MonitorId(monitor),
            tick,
            sampled: true,
            violation,
            suppressed: false,
        })
    }

    #[test]
    fn silent_monitor_is_quarantined_then_aggregated_at_threshold() {
        let (mon_tx, to_mon0, _to_mon1, runner_rx, handle) = degraded_harness(2);
        // Monitor 1 never reports. Two rounds of misses quarantine it.
        for tick in 0..2 {
            mon_tx.send(tick_done(0, tick, false)).unwrap();
            let (summary, events) = next_summary(&runner_rx);
            assert_eq!(summary.tick, tick);
            assert_eq!(summary.missing_reports, 1);
            if tick == 1 {
                assert!(matches!(
                    events.as_slice(),
                    [CoordinatorToRunner::MonitorQuarantined {
                        monitor: MonitorId(1),
                        consecutive_missed: 2,
                        ..
                    }]
                ));
            } else {
                assert!(events.is_empty());
            }
        }
        // Quarantined: the next round completes instantly and a local
        // violation polls only monitor 0, with monitor 1 counted at its
        // local threshold T_1 = 50 → 60 + 50 > 100 alerts (degraded).
        mon_tx.send(tick_done(0, 2, true)).unwrap();
        let poll: ControlFrame = decode(&to_mon0.recv().unwrap()).unwrap();
        assert!(matches!(poll.msg, CoordinatorToMonitor::Poll { tick: 2 }));
        mon_tx
            .send(seal0(MonitorToCoordinator::PollReply {
                monitor: MonitorId(0),
                tick: 2,
                value: 60.0,
                forced_sample: false,
            }))
            .unwrap();
        let (summary, _) = next_summary(&runner_rx);
        assert!(summary.polled);
        assert!(summary.degraded, "aggregation substituted T_1");
        assert!(summary.alerted, "60 + T_1(50) > 100");
        drop(mon_tx);
        handle.join().unwrap();
    }

    #[test]
    fn quarantined_monitor_recovers_on_reporting_again() {
        let (mon_tx, _to_mon0, _to_mon1, runner_rx, handle) = degraded_harness(1);
        // One missed round quarantines monitor 1 immediately.
        mon_tx.send(tick_done(0, 0, false)).unwrap();
        let (_, events) = next_summary(&runner_rx);
        assert!(matches!(
            events.as_slice(),
            [CoordinatorToRunner::MonitorQuarantined { .. }]
        ));
        // Next tick both report. Monitor 1's frame is enqueued first
        // (channel FIFO), so the round sees its life sign before the
        // active set is satisfied: recovery event, full strength again.
        mon_tx.send(tick_done(1, 1, false)).unwrap();
        mon_tx.send(tick_done(0, 1, false)).unwrap();
        let (summary, events) = next_summary(&runner_rx);
        assert_eq!(summary.missing_reports, 0);
        assert!(!summary.degraded);
        assert!(matches!(
            events.as_slice(),
            [CoordinatorToRunner::MonitorRecovered {
                monitor: MonitorId(1),
                tick: 1,
            }]
        ));
        drop(mon_tx);
        handle.join().unwrap();
    }

    #[test]
    fn revived_notice_makes_the_round_await_the_monitor() {
        let (mon_tx, _to_mon0, _to_mon1, runner_rx, handle) = degraded_harness(1);
        mon_tx.send(tick_done(0, 0, false)).unwrap();
        let (_, events) = next_summary(&runner_rx);
        assert!(matches!(
            events.as_slice(),
            [CoordinatorToRunner::MonitorQuarantined { .. }]
        ));
        // The supervisor announces the restart *before* any tick-1 frame.
        mon_tx
            .send(seal0(MonitorToCoordinator::Revived {
                monitor: MonitorId(1),
            }))
            .unwrap();
        // Even with the active monitor's frame first, the round now waits
        // for monitor 1 instead of closing without it.
        mon_tx.send(tick_done(0, 1, false)).unwrap();
        mon_tx.send(tick_done(1, 1, false)).unwrap();
        let (summary, events) = next_summary(&runner_rx);
        assert_eq!(summary.missing_reports, 0);
        assert!(matches!(
            events.as_slice(),
            [CoordinatorToRunner::MonitorRecovered {
                monitor: MonitorId(1),
                tick: 1,
            }]
        ));
        drop(mon_tx);
        handle.join().unwrap();
    }

    #[test]
    fn duplicate_and_stale_frames_are_discarded() {
        let (mon_tx, _to_mon0, _to_mon1, runner_rx, handle) = degraded_harness(3);
        mon_tx.send(tick_done(0, 0, false)).unwrap();
        mon_tx.send(tick_done(0, 0, false)).unwrap(); // duplicate
        mon_tx.send(tick_done(1, 0, false)).unwrap();
        let (summary, _) = next_summary(&runner_rx);
        assert_eq!(summary.scheduled_samples, 2, "duplicate not double-counted");
        // A stale frame for tick 0 must not satisfy tick 1's collection.
        mon_tx.send(tick_done(0, 0, true)).unwrap(); // stale (late) frame
        mon_tx.send(tick_done(0, 1, false)).unwrap();
        mon_tx.send(tick_done(1, 1, false)).unwrap();
        let (summary, _) = next_summary(&runner_rx);
        assert_eq!(summary.tick, 1);
        assert_eq!(summary.local_violations, 0, "stale violation ignored");
        drop(mon_tx);
        handle.join().unwrap();
    }

    #[test]
    fn missed_poll_reply_degrades_instead_of_hanging() {
        let (mon_tx, to_mon0, _to_mon1, runner_rx, handle) = degraded_harness(5);
        // Both report; monitor 0 raises a violation; monitor 1 never
        // answers the poll.
        mon_tx.send(tick_done(0, 0, true)).unwrap();
        mon_tx.send(tick_done(1, 0, false)).unwrap();
        let _: ControlFrame = decode(&to_mon0.recv().unwrap()).unwrap();
        mon_tx
            .send(seal0(MonitorToCoordinator::PollReply {
                monitor: MonitorId(0),
                tick: 0,
                value: 10.0,
                forced_sample: false,
            }))
            .unwrap();
        let (summary, _) = next_summary(&runner_rx);
        assert!(summary.polled);
        assert!(summary.degraded, "monitor 1's reply timed out");
        assert!(!summary.alerted, "10 + T_1(50) <= 100");
        drop(mon_tx);
        handle.join().unwrap();
    }

    #[test]
    fn stale_epoch_frames_are_rejected_counted_and_repaired() {
        let (mon_tx, to_mon, runner_rx, handle) = harness_with(
            new_coordinator(100.0)
                .with_epoch(2)
                .with_tick_deadline(Duration::from_millis(30)),
        );
        // A frame from the deposed epoch-1 world: rejected, and its
        // violation must NOT trigger a poll.
        mon_tx
            .send(MonitorFrame::seal(
                1,
                MonitorToCoordinator::TickDone {
                    monitor: MonitorId(0),
                    tick: 0,
                    sampled: true,
                    violation: true,
                    suppressed: false,
                },
            ))
            .unwrap();
        // The current-epoch report closes the round.
        mon_tx
            .send(MonitorFrame::seal(
                2,
                MonitorToCoordinator::TickDone {
                    monitor: MonitorId(0),
                    tick: 0,
                    sampled: true,
                    violation: false,
                    suppressed: false,
                },
            ))
            .unwrap();
        let (summary, _) = next_summary(&runner_rx);
        assert_eq!(summary.stale_epoch_frames, 1);
        assert!(!summary.polled, "stale violation must not poll");
        // Epoch repair: the sender is told the current epoch.
        let repair: ControlFrame = decode(&to_mon.recv().unwrap()).unwrap();
        assert_eq!(repair.epoch, 2);
        assert!(matches!(
            repair.msg,
            CoordinatorToMonitor::NewEpoch { epoch: 2 }
        ));
        drop(mon_tx);
        handle.join().unwrap();
    }

    #[test]
    fn stale_delayed_frame_does_not_resurrect_a_quarantined_monitor() {
        // Unit-level check of the re-admission rule: recv_msg marks a
        // quarantined monitor reviving only on *fresh* evidence.
        let coord = degraded_coordinator(1);
        let mut live = Liveness::new(2);
        live.quarantined[1] = true;
        live.last_tick = Some(5);
        let (tx, rx) = unbounded::<Bytes>();
        // A delayed frame for the long-closed tick 3 finally arrives.
        tx.send(tick_done(1, 3, false)).unwrap();
        let deadline = Instant::now() + Duration::from_millis(50);
        let msg = coord.recv_msg(&mut live, &rx, deadline).unwrap();
        assert!(msg.is_some(), "frame is delivered (round logic drops it)");
        assert!(
            !live.reviving[1],
            "a delayed frame from a closed tick must not resurrect"
        );
        // A genuinely fresh report does.
        tx.send(tick_done(1, 6, false)).unwrap();
        let deadline = Instant::now() + Duration::from_millis(50);
        coord.recv_msg(&mut live, &rx, deadline).unwrap();
        assert!(live.reviving[1], "a fresh report re-admits the monitor");
    }

    #[test]
    fn partitioned_monitor_is_not_awaited_but_counts_missing() {
        // Monitor 1 is partitioned for ticks 0..100. The round must not
        // burn its (long) deadline waiting for frames that cannot arrive.
        let plan = FaultPlan::new(7).with_partition(&[MonitorId(1)], 0, 100);
        let coord = degraded_coordinator(2)
            .with_fault_plan(plan)
            .with_tick_deadline(Duration::from_millis(500));
        let (mon_tx, _to_mon0, _to_mon1, runner_rx, handle) = degraded_harness_with(coord);
        let started = Instant::now();
        mon_tx.send(tick_done(0, 0, false)).unwrap();
        let (summary, _) = next_summary(&runner_rx);
        assert!(
            started.elapsed() < Duration::from_millis(250),
            "round must close without waiting for the partitioned monitor"
        );
        assert_eq!(
            summary.missing_reports, 1,
            "partitioned still counts missed"
        );
        // A second miss quarantines it — degraded aggregation takes over.
        mon_tx.send(tick_done(0, 1, false)).unwrap();
        let (_, events) = next_summary(&runner_rx);
        assert!(matches!(
            events.as_slice(),
            [CoordinatorToRunner::MonitorQuarantined {
                monitor: MonitorId(1),
                ..
            }]
        ));
        drop(mon_tx);
        handle.join().unwrap();
    }

    #[test]
    fn injected_coordinator_crash_silences_the_coordinator() {
        let plan = FaultPlan::new(7).with_coordinator_crash(1);
        let coord = new_coordinator(100.0)
            .with_fault_plan(plan)
            .with_tick_deadline(Duration::from_millis(30));
        let (mon_tx, _to_mon, runner_rx, handle) = harness_with(coord);
        mon_tx.send(tick_done(0, 0, false)).unwrap();
        let (summary, _) = next_summary(&runner_rx);
        assert_eq!(summary.tick, 0);
        // Tick 1 hits the crash: no summary, the thread exits while the
        // monitor channel is still alive — exactly what the runner's
        // failover path observes as a disconnect.
        mon_tx.send(tick_done(0, 1, false)).unwrap();
        handle.join().unwrap();
        assert!(
            runner_rx.try_recv().is_err(),
            "crashed coordinator must not emit a summary for the crash tick"
        );
    }

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("volley-coordinator-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.wal", std::process::id()))
    }

    #[test]
    fn checkpointing_records_ticks_and_gathered_snapshots() {
        let path = temp_wal("checkpointing-records");
        let wal = Wal::create(&path).unwrap();
        let coord = new_coordinator(100.0)
            .with_checkpoint(wal, 1)
            .with_tick_deadline(Duration::from_millis(100));
        let (mon_tx, to_mon, runner_rx, handle) = harness_with(coord);
        let snapshot = {
            use volley_core::{AdaptationConfig, AdaptiveSampler};
            let mut sampler = AdaptiveSampler::new(AdaptationConfig::default(), 100.0);
            sampler.observe(0, 10.0);
            sampler.to_snapshot()
        };
        for tick in 0..2 {
            mon_tx.send(tick_done(0, tick, false)).unwrap();
            // Snapshot cadence 1: every round asks for sampler state.
            let request: ControlFrame = decode(&to_mon.recv().unwrap()).unwrap();
            assert!(matches!(request.msg, CoordinatorToMonitor::RequestSnapshot));
            mon_tx
                .send(seal0(MonitorToCoordinator::StateSnapshot {
                    monitor: MonitorId(0),
                    snapshot,
                }))
                .unwrap();
            let (summary, _) = next_summary(&runner_rx);
            assert_eq!(summary.tick, tick);
        }
        drop(mon_tx);
        handle.join().unwrap();
        let replay: Replay = Wal::replay(&path).unwrap();
        assert!(!replay.truncated);
        let restored = replay.snapshot.expect("snapshot persisted");
        assert_eq!(restored.tick, 1);
        assert_eq!(restored.epoch, 0);
        assert_eq!(restored.samplers, vec![Some(snapshot)]);
        assert_eq!(restored.allowances.len(), 1);
        assert!(replay.tail.is_empty(), "snapshot is the newest record");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn leader_state_engages_and_releases_the_follower_gate() {
        let coord = new_coordinator(100.0)
            .with_multitask(8)
            .with_tick_deadline(Duration::from_millis(100));
        let (mon_tx, to_mon, runner_rx, handle) = harness_with(coord);
        // Calm leader ahead of tick 0: the gate engages.
        mon_tx
            .send(seal0(MonitorToCoordinator::LeaderState {
                tick: 0,
                active: false,
            }))
            .unwrap();
        mon_tx.send(tick_done(0, 0, false)).unwrap();
        let (summary, _) = next_summary(&runner_rx);
        assert!(summary.gated, "calm leader engages the gate");
        assert_eq!(summary.suppressed_samples, 0);
        let set: ControlFrame = decode(&to_mon.recv().unwrap()).unwrap();
        assert!(matches!(
            set.msg,
            CoordinatorToMonitor::SetGate { interval: Some(8) }
        ));
        // Leader fires ahead of tick 1: snap-back broadcast, and the
        // suppressed flag reported for the tick still counts.
        mon_tx
            .send(seal0(MonitorToCoordinator::LeaderState {
                tick: 1,
                active: true,
            }))
            .unwrap();
        mon_tx
            .send(seal0(MonitorToCoordinator::TickDone {
                monitor: MonitorId(0),
                tick: 1,
                sampled: false,
                violation: false,
                suppressed: true,
            }))
            .unwrap();
        let (summary, _) = next_summary(&runner_rx);
        assert!(!summary.gated, "active leader releases the gate");
        assert_eq!(summary.suppressed_samples, 1);
        let set: ControlFrame = decode(&to_mon.recv().unwrap()).unwrap();
        assert!(matches!(
            set.msg,
            CoordinatorToMonitor::SetGate { interval: None }
        ));
        drop(mon_tx);
        handle.join().unwrap();
    }

    #[test]
    fn restored_gate_resyncs_monitors_and_persists_through_checkpoints() {
        let path = temp_wal("gate-resync");
        let wal = Wal::create(&path).unwrap();
        let restored = MultitaskSnapshot {
            engaged: true,
            flips: 3,
            suppressed: 9,
        };
        let coord = new_coordinator(100.0)
            .with_multitask(6)
            .with_multitask_resume(&restored)
            .with_checkpoint(wal, 1)
            .with_tick_deadline(Duration::from_millis(100));
        let (mon_tx, to_mon, runner_rx, handle) = harness_with(coord);
        mon_tx.send(tick_done(0, 0, false)).unwrap();
        // Checkpoint cadence 1: the round gathers a snapshot first…
        let request: ControlFrame = decode(&to_mon.recv().unwrap()).unwrap();
        assert!(matches!(request.msg, CoordinatorToMonitor::RequestSnapshot));
        let (summary, _) = next_summary(&runner_rx);
        assert!(summary.gated, "restored gate stays engaged");
        // …then re-broadcasts the restored gate to the fresh monitors.
        let set: ControlFrame = decode(&to_mon.recv().unwrap()).unwrap();
        assert!(matches!(
            set.msg,
            CoordinatorToMonitor::SetGate { interval: Some(6) }
        ));
        drop(mon_tx);
        handle.join().unwrap();
        let replay: Replay = Wal::replay(&path).unwrap();
        let snap = replay.snapshot.expect("snapshot persisted");
        assert_eq!(snap.multitask, Some(restored), "gate state checkpointed");
        std::fs::remove_file(&path).ok();
    }
}
