//! Swappable channel endpoints for monitor inboxes.
//!
//! The runner and the coordinator both send frames to every monitor. When
//! the runner restarts a crashed or stalled monitor it must atomically
//! redirect *both* senders to the fresh actor's inbox; [`MonitorLink`]
//! provides that indirection: a cloneable handle whose underlying
//! [`Sender`] can be replaced at runtime, with clones observing the swap.

use std::sync::{Arc, Mutex};

use bytes::Bytes;
use crossbeam::channel::Sender;

/// A cloneable, swappable handle to one monitor's inbox.
#[derive(Debug, Clone)]
pub struct MonitorLink {
    inner: Arc<Mutex<Sender<Bytes>>>,
}

impl MonitorLink {
    /// Wraps a monitor-inbox sender.
    pub fn new(sender: Sender<Bytes>) -> Self {
        MonitorLink {
            inner: Arc::new(Mutex::new(sender)),
        }
    }

    /// Sends one frame; `false` means the monitor's inbox is gone
    /// (its thread exited and the receiver was dropped).
    pub fn send(&self, frame: Bytes) -> bool {
        let guard = self.inner.lock().expect("link lock never poisoned");
        guard.send(frame).is_ok()
    }

    /// Redirects this link (and every clone of it) to a new inbox;
    /// dropping the previous sender disconnects the old actor, letting a
    /// stalled thread drain out and exit.
    pub fn replace(&self, sender: Sender<Bytes>) {
        let mut guard = self.inner.lock().expect("link lock never poisoned");
        *guard = sender;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn send_reaches_receiver() {
        let (tx, rx) = unbounded::<Bytes>();
        let link = MonitorLink::new(tx);
        assert!(link.send(Bytes::from_static(b"a")));
        assert_eq!(&*rx.recv().unwrap(), b"a");
    }

    #[test]
    fn replace_redirects_all_clones() {
        let (tx1, rx1) = unbounded::<Bytes>();
        let (tx2, rx2) = unbounded::<Bytes>();
        let link = MonitorLink::new(tx1);
        let clone = link.clone();
        link.replace(tx2);
        assert!(clone.send(Bytes::from_static(b"b")), "clone sees the swap");
        assert_eq!(&*rx2.recv().unwrap(), b"b");
        // The old inbox is disconnected once its sender is dropped.
        assert!(rx1.try_recv().is_err());
    }

    #[test]
    fn send_reports_dead_inbox() {
        let (tx, rx) = unbounded::<Bytes>();
        let link = MonitorLink::new(tx);
        drop(rx);
        assert!(!link.send(Bytes::from_static(b"c")));
    }
}
