//! Swappable channel endpoints for monitor inboxes.
//!
//! The runner and the coordinator both send frames to every monitor. When
//! the runner restarts a crashed or stalled monitor it must atomically
//! redirect *both* senders to the fresh actor's inbox; [`MonitorLink`]
//! provides that indirection: a cloneable handle whose underlying
//! [`Sender`] can be replaced at runtime, with clones observing the swap.
//!
//! A link can also be *tagged* ([`MonitorLink::tagged`]): instead of an
//! actor inbox it feeds a shared `(monitor, frame)` channel, which is how
//! the networked coordinator ([`crate::net`]) funnels every monitor's
//! outbound traffic into one socket event loop without the coordinator
//! actor knowing the transport changed.

use std::sync::{Arc, Mutex};

use bytes::Bytes;
use crossbeam::channel::Sender;

/// Where a link's frames go: straight into an actor inbox, or tagged with
/// the monitor index into a shared multiplexer channel.
#[derive(Debug)]
enum LinkTarget {
    Channel(Sender<Bytes>),
    Tagged {
        monitor: u32,
        out: Sender<(u32, Bytes)>,
    },
}

/// A cloneable, swappable handle to one monitor's inbox.
#[derive(Debug, Clone)]
pub struct MonitorLink {
    inner: Arc<Mutex<LinkTarget>>,
}

impl MonitorLink {
    /// Wraps a monitor-inbox sender.
    pub fn new(sender: Sender<Bytes>) -> Self {
        MonitorLink {
            inner: Arc::new(Mutex::new(LinkTarget::Channel(sender))),
        }
    }

    /// Wraps a shared multiplexer sender: every frame sent through this
    /// link arrives as `(monitor, frame)` on `out`, preserving per-link
    /// FIFO order. Used by the socket transport, where one event loop
    /// serves every monitor connection.
    pub fn tagged(monitor: u32, out: Sender<(u32, Bytes)>) -> Self {
        MonitorLink {
            inner: Arc::new(Mutex::new(LinkTarget::Tagged { monitor, out })),
        }
    }

    /// Sends one frame; `false` means the monitor's inbox is gone
    /// (its thread exited and the receiver was dropped).
    pub fn send(&self, frame: Bytes) -> bool {
        let guard = self.inner.lock().expect("link lock never poisoned");
        match &*guard {
            LinkTarget::Channel(sender) => sender.send(frame).is_ok(),
            LinkTarget::Tagged { monitor, out } => out.send((*monitor, frame)).is_ok(),
        }
    }

    /// Redirects this link (and every clone of it) to a new inbox;
    /// dropping the previous sender disconnects the old actor, letting a
    /// stalled thread drain out and exit.
    pub fn replace(&self, sender: Sender<Bytes>) {
        let mut guard = self.inner.lock().expect("link lock never poisoned");
        *guard = LinkTarget::Channel(sender);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn send_reaches_receiver() {
        let (tx, rx) = unbounded::<Bytes>();
        let link = MonitorLink::new(tx);
        assert!(link.send(Bytes::from_static(b"a")));
        assert_eq!(&*rx.recv().unwrap(), b"a");
    }

    #[test]
    fn replace_redirects_all_clones() {
        let (tx1, rx1) = unbounded::<Bytes>();
        let (tx2, rx2) = unbounded::<Bytes>();
        let link = MonitorLink::new(tx1);
        let clone = link.clone();
        link.replace(tx2);
        assert!(clone.send(Bytes::from_static(b"b")), "clone sees the swap");
        assert_eq!(&*rx2.recv().unwrap(), b"b");
        // The old inbox is disconnected once its sender is dropped.
        assert!(rx1.try_recv().is_err());
    }

    #[test]
    fn send_reports_dead_inbox() {
        let (tx, rx) = unbounded::<Bytes>();
        let link = MonitorLink::new(tx);
        drop(rx);
        assert!(!link.send(Bytes::from_static(b"c")));
    }

    #[test]
    fn tagged_link_stamps_the_monitor_index() {
        let (tx, rx) = unbounded::<(u32, Bytes)>();
        let a = MonitorLink::tagged(3, tx.clone());
        let b = MonitorLink::tagged(7, tx);
        assert!(a.send(Bytes::from_static(b"x")));
        assert!(b.send(Bytes::from_static(b"y")));
        assert_eq!(rx.recv().unwrap(), (3, Bytes::from_static(b"x")));
        assert_eq!(rx.recv().unwrap(), (7, Bytes::from_static(b"y")));
    }

    #[test]
    fn tagged_link_reports_dead_multiplexer() {
        let (tx, rx) = unbounded::<(u32, Bytes)>();
        let link = MonitorLink::tagged(0, tx);
        drop(rx);
        assert!(!link.send(Bytes::from_static(b"z")));
    }
}
