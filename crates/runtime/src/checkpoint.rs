//! Coordinator durability: a CRC-framed write-ahead log of tick
//! outcomes with periodic snapshots of the adaptation state.
//!
//! A coordinator crash must not discard what the task has *learned* —
//! per-monitor δ statistics, grown sampling intervals and the §IV-B
//! allowance assignment. The coordinator therefore appends one
//! [`TickOutcome`] record per completed tick and, every checkpoint
//! interval, a full [`CoordinatorSnapshot`] gathered from the monitors.
//! A standby taking over replays the log, restores each monitor from the
//! latest snapshot and falls back to the paper's conservative
//! default-interval restart only for state newer than that horizon.
//!
//! ## On-disk format
//!
//! The log is a flat sequence of records, each framed as
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: `len` bytes of JSON]
//! ```
//!
//! where `crc` is the CRC-32 (IEEE) of the payload. Recovery reads
//! records until the first frame that is short, oversized, fails its CRC
//! or fails to parse — the **truncated-tail rule**: everything before
//! the bad frame is trusted, everything at and after it is discarded.
//! This makes a torn final write (the common crash artifact) and trailing
//! corruption harmless, at the price of losing the records behind an
//! early corruption — which is exactly the conservative fallback the
//! recovery semantics already handle.
//!
//! Decoding is pure ([`decode_records`] takes a byte slice) so the
//! never-panic property is directly proptestable without touching disk.
//!
//! ## Compaction
//!
//! Only the latest snapshot and the tick records behind it matter for
//! recovery. When the record count passes the compaction threshold the
//! next snapshot append rewrites the log as just that snapshot (via a
//! temp file and an atomic rename), bounding log growth.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use volley_core::snapshot::SamplerSnapshot;
use volley_core::time::Tick;
use volley_core::vfs::{CircuitBreaker, StdFs, Vfs, VfsFile};

/// Upper bound on a record payload. A bit-flipped length field would
/// otherwise make recovery attempt a multi-gigabyte read.
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// Default number of records after which an appended snapshot compacts
/// the log.
pub const DEFAULT_COMPACT_AFTER: u64 = 512;

/// Default capacity of the in-memory checkpoint ring a degraded WAL
/// falls back to.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// Bytes of framing overhead per record (`len` + `crc`).
const FRAME_OVERHEAD: usize = 8;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven; the table is built at compile time
// so the hot append path is a byte-per-iteration table lookup.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC32_TABLE[idx];
    }
    !crc
}

// ---------------------------------------------------------------------
// Record types
// ---------------------------------------------------------------------

/// Per-tick outcome appended to the WAL after the tick completes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickOutcome {
    /// Coordinator epoch that produced this record.
    pub epoch: u64,
    /// The completed tick.
    pub tick: Tick,
    /// Whether the tick escalated to a global poll.
    pub polled: bool,
    /// Whether the tick raised a state alert.
    pub alerted: bool,
    /// Local violation reports received this tick.
    pub local_violations: u32,
}

/// Full coordinator adaptation state at a checkpoint: everything a
/// standby needs to resume without re-learning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoordinatorSnapshot {
    /// Coordinator epoch that gathered this snapshot.
    pub epoch: u64,
    /// Tick at which the snapshot was gathered.
    pub tick: Tick,
    /// Next §IV-B allowance-update tick.
    pub next_update_tick: Tick,
    /// Per-monitor error allowances in effect.
    pub allowances: Vec<f64>,
    /// Per-monitor sampler snapshots; `None` for monitors that did not
    /// answer the snapshot request in time (those restart conservatively
    /// on recovery).
    pub samplers: Vec<Option<SamplerSnapshot>>,
    /// Multi-task follower-gate state (§II.B suppression policy); `None`
    /// when the coordinator runs without a gate — and when replaying logs
    /// written before this field existed.
    #[serde(default)]
    pub multitask: Option<MultitaskSnapshot>,
}

/// Follower-gate state persisted with each checkpoint so a standby
/// resumes suppression exactly where the deposed primary left it —
/// without this, a failover would silently drop the gate and followers
/// would burn full adaptive sampling until the next leader transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultitaskSnapshot {
    /// Whether the gate was engaged (leader calm, followers coarsened).
    pub engaged: bool,
    /// Lifetime engage/release transitions.
    pub flips: u64,
    /// Lifetime follower samples suppressed across the fleet.
    pub suppressed: u64,
}

/// One WAL record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// A periodic full checkpoint.
    Snapshot(CoordinatorSnapshot),
    /// A per-tick outcome.
    Tick(TickOutcome),
}

// ---------------------------------------------------------------------
// Pure encode / decode
// ---------------------------------------------------------------------

/// Encodes one record into its framed on-disk form.
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let payload = serde_json::to_vec(record).expect("WAL records always serialize");
    let mut framed = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&crc32(&payload).to_le_bytes());
    framed.extend_from_slice(&payload);
    framed
}

/// Result of replaying a WAL byte stream under the truncated-tail rule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Replay {
    /// The latest intact snapshot, if any.
    pub snapshot: Option<CoordinatorSnapshot>,
    /// Tick outcomes recorded *after* that snapshot (the state newer than
    /// the checkpoint horizon — recovered only conservatively).
    pub tail: Vec<TickOutcome>,
    /// Number of bytes of the stream that decoded cleanly.
    pub valid_len: usize,
    /// Whether bytes beyond `valid_len` were discarded (torn write or
    /// corruption).
    pub truncated: bool,
    /// Number of records that decoded cleanly.
    pub records: u64,
}

/// Decodes a WAL byte stream, stopping at the first short, oversized,
/// CRC-failing or unparsable frame. Never panics, for any input.
pub fn decode_records(bytes: &[u8]) -> Replay {
    let mut replay = Replay::default();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if rest.len() < FRAME_OVERHEAD {
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_RECORD_LEN {
            break;
        }
        let len = len as usize;
        let Some(payload) = rest.get(FRAME_OVERHEAD..FRAME_OVERHEAD + len) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        let Ok(record) = serde_json::from_slice::<WalRecord>(payload) else {
            break;
        };
        match record {
            WalRecord::Snapshot(snapshot) => {
                replay.snapshot = Some(snapshot);
                replay.tail.clear();
            }
            WalRecord::Tick(outcome) => replay.tail.push(outcome),
        }
        offset += FRAME_OVERHEAD + len;
        replay.valid_len = offset;
        replay.records += 1;
    }
    replay.truncated = replay.valid_len < bytes.len();
    replay
}

// ---------------------------------------------------------------------
// Sync policy, degradation stats
// ---------------------------------------------------------------------

/// Group-fsync policy for WAL appends.
///
/// The historical behavior — never fsync an append, only compactions —
/// is [`WalSyncPolicy::Never`]; the default trades one fsync per
/// checkpoint interval for snapshot durability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalSyncPolicy {
    /// Fsync after every `n` appended records (group commit).
    EveryN(u64),
    /// Fsync only when the appended record is a snapshot.
    #[default]
    OnSnapshot,
    /// Never fsync appends (compaction still syncs its temp file).
    Never,
}

impl FromStr for WalSyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "never" => Ok(WalSyncPolicy::Never),
            "on-snapshot" => Ok(WalSyncPolicy::OnSnapshot),
            "every" | "every-n" => Ok(WalSyncPolicy::EveryN(1)),
            other => match other.strip_prefix("every-") {
                Some(n) => n
                    .parse::<u64>()
                    .map_err(|_| format!("bad --wal-sync value: {other}"))
                    .map(|n| WalSyncPolicy::EveryN(n.max(1))),
                None => Err(format!(
                    "bad --wal-sync value: {other} (want every-N|on-snapshot|never)"
                )),
            },
        }
    }
}

/// What happened to an appended record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// The record was written to the log file (and fsynced when the sync
    /// policy deemed a sync due).
    Persisted,
    /// The WAL is degraded: the record was retained only in the bounded
    /// in-memory checkpoint ring and will be drained to disk if the sink
    /// re-arms.
    Buffered,
}

/// Shared degradation counters for one WAL, readable from any thread
/// (the log itself lives on the coordinator thread; the runner reads
/// these for obs series and the end-of-run report).
#[derive(Debug, Default)]
pub struct WalStats {
    /// Records accepted (persisted or ring-buffered).
    pub appends: AtomicU64,
    /// Records written to the log file.
    pub persisted: AtomicU64,
    /// Append-path write failures (fed to the circuit breaker).
    pub write_failures: AtomicU64,
    /// Fsyncs that reported failure instead of being silently dropped.
    pub sync_failures: AtomicU64,
    /// Times the circuit breaker tripped open (degraded-mode entries).
    pub trips: AtomicU64,
    /// Times a probe succeeded and the sink re-armed.
    pub rearms: AtomicU64,
    /// Records currently held in the in-memory ring (gauge).
    pub ring_buffered: AtomicU64,
    /// Records evicted from the full ring — permanently shed.
    pub ring_dropped: AtomicU64,
    /// 1 while the breaker is open (gauge).
    pub degraded: AtomicU64,
}

// ---------------------------------------------------------------------
// The on-disk log
// ---------------------------------------------------------------------

/// Append-only write-ahead log of [`WalRecord`]s.
///
/// All file I/O goes through a [`Vfs`], so chaos runs can inject ENOSPC
/// storms, EIO and torn writes underneath it. On sustained append
/// failure a per-sink [`CircuitBreaker`] trips the log into degraded
/// mode: records are retained in a bounded in-memory ring, probes with
/// deterministic backoff test the disk, and the first successful probe
/// drains the ring back into the file (re-arm). A torn tail left by a
/// failed write is repaired by truncating back to the last
/// known-good byte offset before the next disk write.
#[derive(Debug)]
pub struct Wal {
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
    file: Box<dyn VfsFile>,
    /// Records in the current (possibly compacted) file.
    records_in_file: u64,
    /// Records ever appended through this handle — the index axis for
    /// injected corruption.
    appended: u64,
    compact_after: u64,
    /// Record indices (on the `appended` axis) whose payload is
    /// bit-flipped after the CRC is computed: deterministic
    /// WAL-corruption injection for chaos runs.
    corruptions: Vec<u64>,
    last_snapshot: Option<CoordinatorSnapshot>,
    sync_policy: WalSyncPolicy,
    /// Records persisted since the last fsync (for `EveryN`).
    unsynced: u64,
    /// Bytes of the file known to hold intact frames.
    valid_len: u64,
    /// True when a failed write may have left partial bytes after
    /// `valid_len`; repaired by truncation before the next write.
    dirty_tail: bool,
    breaker: CircuitBreaker,
    /// Degraded-mode fallback: framed records awaiting a successful
    /// probe, oldest first.
    ring: VecDeque<Vec<u8>>,
    ring_capacity: usize,
    stats: Arc<WalStats>,
}

impl Wal {
    /// Creates (or truncates) the log at `path` on the real filesystem.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<Self> {
        Wal::create_on(Arc::new(StdFs), path)
    }

    /// Creates (or truncates) the log at `path` on an arbitrary
    /// [`Vfs`] — the fault-injection entry point.
    pub fn create_on(vfs: Arc<dyn Vfs>, path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                vfs.create_dir_all(dir)?;
            }
        }
        // Truncate, then reopen in append mode: append-mode writes always
        // land at end-of-file, which keeps torn-tail truncation sound.
        drop(vfs.create(&path)?);
        let file = vfs.open_append(&path)?;
        Ok(Wal {
            vfs,
            path,
            file,
            records_in_file: 0,
            appended: 0,
            compact_after: DEFAULT_COMPACT_AFTER,
            corruptions: Vec::new(),
            last_snapshot: None,
            sync_policy: WalSyncPolicy::default(),
            unsynced: 0,
            valid_len: 0,
            dirty_tail: false,
            breaker: CircuitBreaker::default(),
            ring: VecDeque::new(),
            ring_capacity: DEFAULT_RING_CAPACITY,
            stats: Arc::new(WalStats::default()),
        })
    }

    /// Sets the compaction threshold: once the file holds more than
    /// `records` records, the next snapshot append compacts the log.
    pub fn with_compaction(mut self, records: u64) -> Self {
        self.compact_after = records.max(1);
        self
    }

    /// Schedules deterministic corruption: the `indices`-th appended
    /// records (0-based, counted across compactions) are written with one
    /// payload byte flipped *after* the CRC is computed, so replay
    /// detects the mismatch and truncates there.
    pub fn with_corruption(mut self, indices: Vec<u64>) -> Self {
        self.corruptions = indices;
        self
    }

    /// Sets the group-fsync policy for appends.
    pub fn with_sync_policy(mut self, policy: WalSyncPolicy) -> Self {
        self.sync_policy = policy;
        self
    }

    /// Sets the capacity of the degraded-mode in-memory record ring.
    pub fn with_ring_capacity(mut self, records: usize) -> Self {
        self.ring_capacity = records.max(1);
        self
    }

    /// Replaces the circuit breaker (tests tune trip threshold/backoff).
    pub fn with_breaker(mut self, breaker: CircuitBreaker) -> Self {
        self.breaker = breaker;
        self
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records currently in the file.
    pub fn records(&self) -> u64 {
        self.records_in_file
    }

    /// True while the circuit breaker is open and appends fall back to
    /// the in-memory ring.
    pub fn degraded(&self) -> bool {
        self.breaker.is_open()
    }

    /// Shared degradation counters for this log.
    pub fn stats(&self) -> Arc<WalStats> {
        Arc::clone(&self.stats)
    }

    /// Appends one record.
    ///
    /// In degraded mode the record lands in the bounded in-memory ring
    /// and the call reports [`AppendOutcome::Buffered`]; an `Err` means
    /// the disk write (or a due fsync) failed *now* — the record is still
    /// retained in the ring, so callers may treat errors as advisory.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<AppendOutcome> {
        let (tick, is_snapshot) = match record {
            WalRecord::Snapshot(s) => (s.tick, true),
            WalRecord::Tick(o) => (o.tick, false),
        };
        self.vfs.set_tick(tick);
        let mut framed = encode_record(record);
        if self.corruptions.contains(&self.appended) && framed.len() > FRAME_OVERHEAD {
            let idx = FRAME_OVERHEAD + (framed.len() - FRAME_OVERHEAD) / 2;
            framed[idx] ^= 0x40;
        }
        self.appended += 1;
        self.stats.appends.fetch_add(1, Ordering::Relaxed);
        if let WalRecord::Snapshot(snapshot) = record {
            self.last_snapshot = Some(snapshot.clone());
        }

        if !self.breaker.should_attempt() {
            self.buffer_degraded(framed);
            return Ok(AppendOutcome::Buffered);
        }
        if let Err(e) = self.persist_writes(&framed) {
            self.stats.write_failures.fetch_add(1, Ordering::Relaxed);
            self.note_failure();
            // The record is retained in memory: a later successful probe
            // drains it to disk in order.
            self.buffer_degraded(framed);
            return Err(e);
        }
        if let Err(e) = self.maybe_sync(is_snapshot) {
            // The frame reached the OS but not stable storage — feed the
            // breaker without ring-buffering (no duplication on re-arm).
            self.stats.sync_failures.fetch_add(1, Ordering::Relaxed);
            self.note_failure();
            return Err(e);
        }
        if self.breaker.record_success() {
            self.stats.rearms.fetch_add(1, Ordering::Relaxed);
            self.stats.degraded.store(0, Ordering::Relaxed);
        }
        Ok(AppendOutcome::Persisted)
    }

    /// Feeds one failure to the breaker and mirrors trip/degraded state
    /// into the shared stats.
    fn note_failure(&mut self) {
        if self.breaker.record_failure() {
            self.stats.trips.fetch_add(1, Ordering::Relaxed);
        }
        if self.breaker.is_open() {
            self.stats.degraded.store(1, Ordering::Relaxed);
        }
    }

    /// Pushes a framed record into the degraded-mode ring, evicting the
    /// oldest record when full.
    fn buffer_degraded(&mut self, framed: Vec<u8>) {
        if self.ring.len() >= self.ring_capacity {
            self.ring.pop_front();
            self.stats.ring_dropped.fetch_add(1, Ordering::Relaxed);
        }
        self.ring.push_back(framed);
        self.stats
            .ring_buffered
            .store(self.ring.len() as u64, Ordering::Relaxed);
    }

    /// Writes any ring backlog plus `framed` to the file, repairing a
    /// torn tail first.
    fn persist_writes(&mut self, framed: &[u8]) -> io::Result<()> {
        if self.dirty_tail {
            // A previous failed write may have left partial bytes; the
            // file is in append mode, so truncating to the last intact
            // offset makes the next write land exactly there.
            self.file.truncate(self.valid_len)?;
            self.dirty_tail = false;
        }
        while let Some(front) = self.ring.front() {
            let bytes = front.clone();
            self.write_frame(&bytes)?;
            self.ring.pop_front();
            self.stats
                .ring_buffered
                .store(self.ring.len() as u64, Ordering::Relaxed);
        }
        self.write_frame(framed)
    }

    /// Fsyncs when the group-commit policy says a sync is due.
    fn maybe_sync(&mut self, is_snapshot: bool) -> io::Result<()> {
        let sync_due = match self.sync_policy {
            WalSyncPolicy::Never => false,
            WalSyncPolicy::OnSnapshot => is_snapshot,
            WalSyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
        };
        if sync_due {
            self.file.sync_all()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Writes one framed record, updating the intact-bytes watermark; a
    /// failure marks the tail dirty for truncation-repair.
    fn write_frame(&mut self, framed: &[u8]) -> io::Result<()> {
        match self.file.write_all(framed) {
            Ok(()) => {
                self.valid_len += framed.len() as u64;
                self.records_in_file += 1;
                self.unsynced += 1;
                self.stats.persisted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.dirty_tail = true;
                Err(e)
            }
        }
    }

    /// Appends a snapshot and compacts the log down to just that
    /// snapshot when the file has outgrown the compaction threshold.
    pub fn append_snapshot(&mut self, snapshot: &CoordinatorSnapshot) -> io::Result<()> {
        let outcome = self.append(&WalRecord::Snapshot(snapshot.clone()))?;
        if outcome == AppendOutcome::Persisted && self.records_in_file > self.compact_after {
            self.compact()?;
        }
        Ok(())
    }

    /// Rewrites the log as just the latest snapshot (temp file + atomic
    /// rename), dropping every record the snapshot supersedes.
    fn compact(&mut self) -> io::Result<()> {
        let Some(snapshot) = self.last_snapshot.clone() else {
            return Ok(());
        };
        let framed = encode_record(&WalRecord::Snapshot(snapshot));
        let tmp = self.path.with_extension("wal.tmp");
        let mut out = self.vfs.create(&tmp)?;
        out.write_all(&framed)?;
        out.sync_all()?;
        drop(out);
        self.vfs.rename(&tmp, &self.path)?;
        self.file = self.vfs.open_append(&self.path)?;
        self.records_in_file = 1;
        self.valid_len = framed.len() as u64;
        self.dirty_tail = false;
        self.unsynced = 0;
        Ok(())
    }

    /// Replays the log at `path` under the truncated-tail rule. A
    /// missing file replays as empty (a cold start).
    pub fn replay(path: impl AsRef<Path>) -> io::Result<Replay> {
        let mut bytes = Vec::new();
        match File::open(path.as_ref()) {
            Ok(mut file) => {
                file.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Replay::default()),
            Err(e) => return Err(e),
        }
        Ok(decode_records(&bytes))
    }

    /// Starts a fresh log at `path` seeded with `snapshot` (if any) —
    /// the takeover path: the standby compacts whatever it could replay
    /// into a clean log, clearing any corrupt tail in the process.
    pub fn compact_to(
        path: impl Into<PathBuf>,
        snapshot: Option<&CoordinatorSnapshot>,
    ) -> io::Result<Self> {
        Wal::compact_to_on(Arc::new(StdFs), path, snapshot)
    }

    /// [`Wal::compact_to`] on an arbitrary [`Vfs`].
    pub fn compact_to_on(
        vfs: Arc<dyn Vfs>,
        path: impl Into<PathBuf>,
        snapshot: Option<&CoordinatorSnapshot>,
    ) -> io::Result<Self> {
        let mut wal = Wal::create_on(vfs, path)?;
        if let Some(snapshot) = snapshot {
            wal.append(&WalRecord::Snapshot(snapshot.clone()))?;
        }
        Ok(wal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use volley_core::{AdaptationConfig, AdaptiveSampler};

    fn sampler_snapshot() -> SamplerSnapshot {
        let mut sampler = AdaptiveSampler::new(AdaptationConfig::default(), 100.0);
        sampler.observe(0, 10.0);
        sampler.observe(1, 12.0);
        sampler.to_snapshot()
    }

    fn snapshot(epoch: u64, tick: Tick) -> CoordinatorSnapshot {
        CoordinatorSnapshot {
            epoch,
            tick,
            next_update_tick: tick + 50,
            allowances: vec![0.005, 0.005],
            samplers: vec![Some(sampler_snapshot()), None],
            multitask: Some(MultitaskSnapshot {
                engaged: tick.is_multiple_of(2),
                flips: tick,
                suppressed: tick * 3,
            }),
        }
    }

    /// A snapshot written before the multitask field existed must still
    /// replay (forward compatibility of the WAL format).
    #[test]
    fn pre_multitask_snapshot_decodes_with_none() {
        let legacy = br#"{"Snapshot":{"epoch":1,"tick":7,"next_update_tick":57,"allowances":[0.01],"samplers":[null]}}"#;
        let mut framed = Vec::new();
        framed.extend_from_slice(&(legacy.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(legacy).to_le_bytes());
        framed.extend_from_slice(legacy);
        let replay = decode_records(&framed);
        assert_eq!(replay.records, 1);
        let snap = replay.snapshot.expect("snapshot decodes");
        assert_eq!(snap.tick, 7);
        assert_eq!(snap.multitask, None);
    }

    fn outcome(tick: Tick) -> TickOutcome {
        TickOutcome {
            epoch: 0,
            tick,
            polled: tick.is_multiple_of(2),
            alerted: false,
            local_violations: (tick % 3) as u32,
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("volley-checkpoint-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.wal", std::process::id()))
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let records = vec![
            WalRecord::Tick(outcome(1)),
            WalRecord::Snapshot(snapshot(0, 2)),
            WalRecord::Tick(outcome(3)),
            WalRecord::Tick(outcome(4)),
        ];
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
        }
        let replay = decode_records(&bytes);
        assert_eq!(replay.records, 4);
        assert!(!replay.truncated);
        assert_eq!(replay.valid_len, bytes.len());
        assert_eq!(replay.snapshot, Some(snapshot(0, 2)));
        assert_eq!(replay.tail, vec![outcome(3), outcome(4)]);
    }

    #[test]
    fn later_snapshot_supersedes_earlier_tail() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_record(&WalRecord::Snapshot(snapshot(0, 1))));
        bytes.extend_from_slice(&encode_record(&WalRecord::Tick(outcome(2))));
        bytes.extend_from_slice(&encode_record(&WalRecord::Snapshot(snapshot(0, 3))));
        let replay = decode_records(&bytes);
        assert_eq!(replay.snapshot.unwrap().tick, 3);
        assert!(replay.tail.is_empty(), "tail restarts at each snapshot");
    }

    #[test]
    fn torn_final_write_truncates_cleanly() {
        let mut bytes = encode_record(&WalRecord::Tick(outcome(1)));
        let whole = bytes.len();
        bytes.extend_from_slice(&encode_record(&WalRecord::Tick(outcome(2)))[..10]);
        let replay = decode_records(&bytes);
        assert_eq!(replay.records, 1);
        assert!(replay.truncated);
        assert_eq!(replay.valid_len, whole);
        assert_eq!(replay.tail, vec![outcome(1)]);
    }

    #[test]
    fn bit_flip_stops_replay_at_the_flip() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_record(&WalRecord::Tick(outcome(1))));
        let first = bytes.len();
        bytes.extend_from_slice(&encode_record(&WalRecord::Tick(outcome(2))));
        bytes.extend_from_slice(&encode_record(&WalRecord::Tick(outcome(3))));
        // Flip a payload byte of the middle record.
        bytes[first + FRAME_OVERHEAD + 3] ^= 0x01;
        let replay = decode_records(&bytes);
        assert_eq!(replay.records, 1);
        assert!(replay.truncated);
        assert_eq!(replay.tail, vec![outcome(1)]);
    }

    #[test]
    fn oversized_length_field_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_RECORD_LEN + 1).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let replay = decode_records(&bytes);
        assert_eq!(replay.records, 0);
        assert!(replay.truncated);
    }

    #[test]
    fn wal_append_replay_round_trip() {
        let path = temp_path("round-trip");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(&WalRecord::Tick(outcome(1))).unwrap();
        wal.append_snapshot(&snapshot(0, 2)).unwrap();
        wal.append(&WalRecord::Tick(outcome(3))).unwrap();
        drop(wal);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records, 3);
        assert_eq!(replay.snapshot, Some(snapshot(0, 2)));
        assert_eq!(replay.tail, vec![outcome(3)]);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_replays_empty() {
        let replay = Wal::replay(temp_path("does-not-exist-ever")).unwrap();
        assert_eq!(replay, Replay::default());
    }

    #[test]
    fn compaction_bounds_the_log() {
        let path = temp_path("compaction");
        let mut wal = Wal::create(&path).unwrap().with_compaction(4);
        for t in 0..20 {
            wal.append(&WalRecord::Tick(outcome(t))).unwrap();
            if t % 5 == 4 {
                wal.append_snapshot(&snapshot(0, t)).unwrap();
            }
        }
        assert!(
            wal.records() <= 6,
            "log must stay bounded, has {} records",
            wal.records()
        );
        drop(wal);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.snapshot.unwrap().tick, 19);
        assert!(!replay.truncated);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_corruption_truncates_at_the_record() {
        let path = temp_path("corruption");
        let mut wal = Wal::create(&path).unwrap().with_corruption(vec![2]);
        for t in 0..5 {
            wal.append(&WalRecord::Tick(outcome(t))).unwrap();
        }
        drop(wal);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records, 2, "replay stops at the corrupted record");
        assert!(replay.truncated);
        assert_eq!(replay.tail, vec![outcome(0), outcome(1)]);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_to_clears_a_corrupt_tail() {
        let src = temp_path("compact-src");
        let mut wal = Wal::create(&src).unwrap().with_corruption(vec![3]);
        wal.append_snapshot(&snapshot(0, 10)).unwrap();
        for t in 11..15 {
            wal.append(&WalRecord::Tick(outcome(t))).unwrap();
        }
        drop(wal);
        let replay = Wal::replay(&src).unwrap();
        assert!(replay.truncated);
        let dst = temp_path("compact-dst");
        let fresh = Wal::compact_to(&dst, replay.snapshot.as_ref()).unwrap();
        assert_eq!(fresh.records(), 1);
        drop(fresh);
        let clean = Wal::replay(&dst).unwrap();
        assert!(!clean.truncated);
        assert_eq!(clean.snapshot, replay.snapshot);
        fs::remove_file(&src).ok();
        fs::remove_file(&dst).ok();
    }

    #[test]
    fn wal_sheds_to_ring_under_enospc_and_drains_on_rearm() {
        let path = temp_path("ring-rearm");
        let vfs = Arc::new(volley_core::vfs::FaultFs::new(
            volley_core::vfs::IoFaultPlan::new(9).with_enospc_window(5, 5),
        ));
        let mut wal = Wal::create_on(vfs, &path)
            .unwrap()
            .with_sync_policy(WalSyncPolicy::EveryN(1))
            .with_breaker(CircuitBreaker::with_backoff(2, 1, 4));
        for t in 0..20 {
            let _ = wal.append(&WalRecord::Tick(outcome(t)));
        }
        let stats = wal.stats();
        assert!(stats.trips.load(Ordering::Relaxed) >= 1, "breaker tripped");
        assert!(stats.rearms.load(Ordering::Relaxed) >= 1, "sink re-armed");
        assert!(!wal.degraded(), "fault cleared, breaker closed");
        assert_eq!(stats.ring_buffered.load(Ordering::Relaxed), 0);
        assert_eq!(stats.ring_dropped.load(Ordering::Relaxed), 0);
        drop(wal);
        let replay = Wal::replay(&path).unwrap();
        assert!(!replay.truncated);
        assert_eq!(replay.records, 20, "ring drained every shed record");
        let ticks: Vec<Tick> = replay.tail.iter().map(|o| o.tick).collect();
        assert_eq!(ticks, (0..20).collect::<Vec<_>>(), "order preserved");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn wal_ring_is_bounded() {
        let path = temp_path("ring-bounded");
        let vfs = Arc::new(volley_core::vfs::FaultFs::new(
            volley_core::vfs::IoFaultPlan::new(9).with_enospc_window(0, 0),
        ));
        let mut wal = Wal::create_on(vfs, &path)
            .unwrap()
            .with_breaker(CircuitBreaker::with_backoff(1, 4, 4))
            .with_ring_capacity(8);
        for t in 0..40 {
            let _ = wal.append(&WalRecord::Tick(outcome(t)));
        }
        assert!(wal.degraded());
        let stats = wal.stats();
        assert_eq!(stats.ring_buffered.load(Ordering::Relaxed), 8);
        assert_eq!(stats.ring_dropped.load(Ordering::Relaxed), 32);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_failures_are_observed_not_swallowed() {
        let path = temp_path("sync-fail");
        let vfs = Arc::new(volley_core::vfs::FaultFs::new(
            volley_core::vfs::IoFaultPlan::new(4).with_sync_errors(1.0),
        ));
        let mut wal = Wal::create_on(vfs, &path)
            .unwrap()
            .with_sync_policy(WalSyncPolicy::EveryN(2));
        assert!(wal.append(&WalRecord::Tick(outcome(0))).is_ok());
        assert!(wal.append(&WalRecord::Tick(outcome(1))).is_err());
        assert_eq!(wal.stats().sync_failures.load(Ordering::Relaxed), 1);
        // The frames still reached the OS: nothing was ring-buffered.
        assert_eq!(wal.stats().ring_buffered.load(Ordering::Relaxed), 0);
        drop(wal);
        assert_eq!(Wal::replay(&path).unwrap().records, 2);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn wal_sync_policy_parses() {
        assert_eq!("never".parse::<WalSyncPolicy>(), Ok(WalSyncPolicy::Never));
        assert_eq!(
            "on-snapshot".parse::<WalSyncPolicy>(),
            Ok(WalSyncPolicy::OnSnapshot)
        );
        assert_eq!(
            "every-8".parse::<WalSyncPolicy>(),
            Ok(WalSyncPolicy::EveryN(8))
        );
        assert_eq!(
            "every-n".parse::<WalSyncPolicy>(),
            Ok(WalSyncPolicy::EveryN(1))
        );
        assert!("sometimes".parse::<WalSyncPolicy>().is_err());
        assert!("every-x".parse::<WalSyncPolicy>().is_err());
    }

    #[test]
    fn decode_never_panics_on_arbitrary_prefixes() {
        let mut bytes = Vec::new();
        for t in 0..3 {
            bytes.extend_from_slice(&encode_record(&WalRecord::Tick(outcome(t))));
        }
        for cut in 0..bytes.len() {
            let replay = decode_records(&bytes[..cut]);
            assert!(replay.records <= 3);
        }
    }
}
