//! Coordinator durability: a CRC-framed write-ahead log of tick
//! outcomes with periodic snapshots of the adaptation state.
//!
//! A coordinator crash must not discard what the task has *learned* —
//! per-monitor δ statistics, grown sampling intervals and the §IV-B
//! allowance assignment. The coordinator therefore appends one
//! [`TickOutcome`] record per completed tick and, every checkpoint
//! interval, a full [`CoordinatorSnapshot`] gathered from the monitors.
//! A standby taking over replays the log, restores each monitor from the
//! latest snapshot and falls back to the paper's conservative
//! default-interval restart only for state newer than that horizon.
//!
//! ## On-disk format
//!
//! The log is a flat sequence of records, each framed as
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: `len` bytes of JSON]
//! ```
//!
//! where `crc` is the CRC-32 (IEEE) of the payload. Recovery reads
//! records until the first frame that is short, oversized, fails its CRC
//! or fails to parse — the **truncated-tail rule**: everything before
//! the bad frame is trusted, everything at and after it is discarded.
//! This makes a torn final write (the common crash artifact) and trailing
//! corruption harmless, at the price of losing the records behind an
//! early corruption — which is exactly the conservative fallback the
//! recovery semantics already handle.
//!
//! Decoding is pure ([`decode_records`] takes a byte slice) so the
//! never-panic property is directly proptestable without touching disk.
//!
//! ## Compaction
//!
//! Only the latest snapshot and the tick records behind it matter for
//! recovery. When the record count passes the compaction threshold the
//! next snapshot append rewrites the log as just that snapshot (via a
//! temp file and an atomic rename), bounding log growth.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use volley_core::snapshot::SamplerSnapshot;
use volley_core::time::Tick;

/// Upper bound on a record payload. A bit-flipped length field would
/// otherwise make recovery attempt a multi-gigabyte read.
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// Default number of records after which an appended snapshot compacts
/// the log.
pub const DEFAULT_COMPACT_AFTER: u64 = 512;

/// Bytes of framing overhead per record (`len` + `crc`).
const FRAME_OVERHEAD: usize = 8;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven; the table is built at compile time
// so the hot append path is a byte-per-iteration table lookup.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC32_TABLE[idx];
    }
    !crc
}

// ---------------------------------------------------------------------
// Record types
// ---------------------------------------------------------------------

/// Per-tick outcome appended to the WAL after the tick completes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickOutcome {
    /// Coordinator epoch that produced this record.
    pub epoch: u64,
    /// The completed tick.
    pub tick: Tick,
    /// Whether the tick escalated to a global poll.
    pub polled: bool,
    /// Whether the tick raised a state alert.
    pub alerted: bool,
    /// Local violation reports received this tick.
    pub local_violations: u32,
}

/// Full coordinator adaptation state at a checkpoint: everything a
/// standby needs to resume without re-learning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoordinatorSnapshot {
    /// Coordinator epoch that gathered this snapshot.
    pub epoch: u64,
    /// Tick at which the snapshot was gathered.
    pub tick: Tick,
    /// Next §IV-B allowance-update tick.
    pub next_update_tick: Tick,
    /// Per-monitor error allowances in effect.
    pub allowances: Vec<f64>,
    /// Per-monitor sampler snapshots; `None` for monitors that did not
    /// answer the snapshot request in time (those restart conservatively
    /// on recovery).
    pub samplers: Vec<Option<SamplerSnapshot>>,
}

/// One WAL record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// A periodic full checkpoint.
    Snapshot(CoordinatorSnapshot),
    /// A per-tick outcome.
    Tick(TickOutcome),
}

// ---------------------------------------------------------------------
// Pure encode / decode
// ---------------------------------------------------------------------

/// Encodes one record into its framed on-disk form.
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let payload = serde_json::to_vec(record).expect("WAL records always serialize");
    let mut framed = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&crc32(&payload).to_le_bytes());
    framed.extend_from_slice(&payload);
    framed
}

/// Result of replaying a WAL byte stream under the truncated-tail rule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Replay {
    /// The latest intact snapshot, if any.
    pub snapshot: Option<CoordinatorSnapshot>,
    /// Tick outcomes recorded *after* that snapshot (the state newer than
    /// the checkpoint horizon — recovered only conservatively).
    pub tail: Vec<TickOutcome>,
    /// Number of bytes of the stream that decoded cleanly.
    pub valid_len: usize,
    /// Whether bytes beyond `valid_len` were discarded (torn write or
    /// corruption).
    pub truncated: bool,
    /// Number of records that decoded cleanly.
    pub records: u64,
}

/// Decodes a WAL byte stream, stopping at the first short, oversized,
/// CRC-failing or unparsable frame. Never panics, for any input.
pub fn decode_records(bytes: &[u8]) -> Replay {
    let mut replay = Replay::default();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if rest.len() < FRAME_OVERHEAD {
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_RECORD_LEN {
            break;
        }
        let len = len as usize;
        let Some(payload) = rest.get(FRAME_OVERHEAD..FRAME_OVERHEAD + len) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        let Ok(record) = serde_json::from_slice::<WalRecord>(payload) else {
            break;
        };
        match record {
            WalRecord::Snapshot(snapshot) => {
                replay.snapshot = Some(snapshot);
                replay.tail.clear();
            }
            WalRecord::Tick(outcome) => replay.tail.push(outcome),
        }
        offset += FRAME_OVERHEAD + len;
        replay.valid_len = offset;
        replay.records += 1;
    }
    replay.truncated = replay.valid_len < bytes.len();
    replay
}

// ---------------------------------------------------------------------
// The on-disk log
// ---------------------------------------------------------------------

/// Append-only write-ahead log of [`WalRecord`]s.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Records in the current (possibly compacted) file.
    records_in_file: u64,
    /// Records ever appended through this handle — the index axis for
    /// injected corruption.
    appended: u64,
    compact_after: u64,
    /// Record indices (on the `appended` axis) whose payload is
    /// bit-flipped after the CRC is computed: deterministic
    /// WAL-corruption injection for chaos runs.
    corruptions: Vec<u64>,
    last_snapshot: Option<CoordinatorSnapshot>,
}

impl Wal {
    /// Creates (or truncates) the log at `path`.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(Wal {
            path,
            file,
            records_in_file: 0,
            appended: 0,
            compact_after: DEFAULT_COMPACT_AFTER,
            corruptions: Vec::new(),
            last_snapshot: None,
        })
    }

    /// Sets the compaction threshold: once the file holds more than
    /// `records` records, the next snapshot append compacts the log.
    pub fn with_compaction(mut self, records: u64) -> Self {
        self.compact_after = records.max(1);
        self
    }

    /// Schedules deterministic corruption: the `indices`-th appended
    /// records (0-based, counted across compactions) are written with one
    /// payload byte flipped *after* the CRC is computed, so replay
    /// detects the mismatch and truncates there.
    pub fn with_corruption(mut self, indices: Vec<u64>) -> Self {
        self.corruptions = indices;
        self
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records currently in the file.
    pub fn records(&self) -> u64 {
        self.records_in_file
    }

    /// Appends one record.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        let mut framed = encode_record(record);
        if self.corruptions.contains(&self.appended) && framed.len() > FRAME_OVERHEAD {
            let idx = FRAME_OVERHEAD + (framed.len() - FRAME_OVERHEAD) / 2;
            framed[idx] ^= 0x40;
        }
        self.file.write_all(&framed)?;
        self.file.flush()?;
        self.appended += 1;
        self.records_in_file += 1;
        if let WalRecord::Snapshot(snapshot) = record {
            self.last_snapshot = Some(snapshot.clone());
        }
        Ok(())
    }

    /// Appends a snapshot and compacts the log down to just that
    /// snapshot when the file has outgrown the compaction threshold.
    pub fn append_snapshot(&mut self, snapshot: &CoordinatorSnapshot) -> io::Result<()> {
        self.append(&WalRecord::Snapshot(snapshot.clone()))?;
        if self.records_in_file > self.compact_after {
            self.compact()?;
        }
        Ok(())
    }

    /// Rewrites the log as just the latest snapshot (temp file + atomic
    /// rename), dropping every record the snapshot supersedes.
    fn compact(&mut self) -> io::Result<()> {
        let Some(snapshot) = self.last_snapshot.clone() else {
            return Ok(());
        };
        let tmp = self.path.with_extension("wal.tmp");
        let mut out = File::create(&tmp)?;
        out.write_all(&encode_record(&WalRecord::Snapshot(snapshot)))?;
        out.sync_all()?;
        drop(out);
        fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.records_in_file = 1;
        Ok(())
    }

    /// Replays the log at `path` under the truncated-tail rule. A
    /// missing file replays as empty (a cold start).
    pub fn replay(path: impl AsRef<Path>) -> io::Result<Replay> {
        let mut bytes = Vec::new();
        match File::open(path.as_ref()) {
            Ok(mut file) => {
                file.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Replay::default()),
            Err(e) => return Err(e),
        }
        Ok(decode_records(&bytes))
    }

    /// Starts a fresh log at `path` seeded with `snapshot` (if any) —
    /// the takeover path: the standby compacts whatever it could replay
    /// into a clean log, clearing any corrupt tail in the process.
    pub fn compact_to(
        path: impl Into<PathBuf>,
        snapshot: Option<&CoordinatorSnapshot>,
    ) -> io::Result<Self> {
        let mut wal = Wal::create(path)?;
        if let Some(snapshot) = snapshot {
            wal.append(&WalRecord::Snapshot(snapshot.clone()))?;
        }
        Ok(wal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volley_core::{AdaptationConfig, AdaptiveSampler};

    fn sampler_snapshot() -> SamplerSnapshot {
        let mut sampler = AdaptiveSampler::new(AdaptationConfig::default(), 100.0);
        sampler.observe(0, 10.0);
        sampler.observe(1, 12.0);
        sampler.to_snapshot()
    }

    fn snapshot(epoch: u64, tick: Tick) -> CoordinatorSnapshot {
        CoordinatorSnapshot {
            epoch,
            tick,
            next_update_tick: tick + 50,
            allowances: vec![0.005, 0.005],
            samplers: vec![Some(sampler_snapshot()), None],
        }
    }

    fn outcome(tick: Tick) -> TickOutcome {
        TickOutcome {
            epoch: 0,
            tick,
            polled: tick.is_multiple_of(2),
            alerted: false,
            local_violations: (tick % 3) as u32,
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("volley-checkpoint-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.wal", std::process::id()))
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let records = vec![
            WalRecord::Tick(outcome(1)),
            WalRecord::Snapshot(snapshot(0, 2)),
            WalRecord::Tick(outcome(3)),
            WalRecord::Tick(outcome(4)),
        ];
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
        }
        let replay = decode_records(&bytes);
        assert_eq!(replay.records, 4);
        assert!(!replay.truncated);
        assert_eq!(replay.valid_len, bytes.len());
        assert_eq!(replay.snapshot, Some(snapshot(0, 2)));
        assert_eq!(replay.tail, vec![outcome(3), outcome(4)]);
    }

    #[test]
    fn later_snapshot_supersedes_earlier_tail() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_record(&WalRecord::Snapshot(snapshot(0, 1))));
        bytes.extend_from_slice(&encode_record(&WalRecord::Tick(outcome(2))));
        bytes.extend_from_slice(&encode_record(&WalRecord::Snapshot(snapshot(0, 3))));
        let replay = decode_records(&bytes);
        assert_eq!(replay.snapshot.unwrap().tick, 3);
        assert!(replay.tail.is_empty(), "tail restarts at each snapshot");
    }

    #[test]
    fn torn_final_write_truncates_cleanly() {
        let mut bytes = encode_record(&WalRecord::Tick(outcome(1)));
        let whole = bytes.len();
        bytes.extend_from_slice(&encode_record(&WalRecord::Tick(outcome(2)))[..10]);
        let replay = decode_records(&bytes);
        assert_eq!(replay.records, 1);
        assert!(replay.truncated);
        assert_eq!(replay.valid_len, whole);
        assert_eq!(replay.tail, vec![outcome(1)]);
    }

    #[test]
    fn bit_flip_stops_replay_at_the_flip() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_record(&WalRecord::Tick(outcome(1))));
        let first = bytes.len();
        bytes.extend_from_slice(&encode_record(&WalRecord::Tick(outcome(2))));
        bytes.extend_from_slice(&encode_record(&WalRecord::Tick(outcome(3))));
        // Flip a payload byte of the middle record.
        bytes[first + FRAME_OVERHEAD + 3] ^= 0x01;
        let replay = decode_records(&bytes);
        assert_eq!(replay.records, 1);
        assert!(replay.truncated);
        assert_eq!(replay.tail, vec![outcome(1)]);
    }

    #[test]
    fn oversized_length_field_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_RECORD_LEN + 1).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let replay = decode_records(&bytes);
        assert_eq!(replay.records, 0);
        assert!(replay.truncated);
    }

    #[test]
    fn wal_append_replay_round_trip() {
        let path = temp_path("round-trip");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(&WalRecord::Tick(outcome(1))).unwrap();
        wal.append_snapshot(&snapshot(0, 2)).unwrap();
        wal.append(&WalRecord::Tick(outcome(3))).unwrap();
        drop(wal);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records, 3);
        assert_eq!(replay.snapshot, Some(snapshot(0, 2)));
        assert_eq!(replay.tail, vec![outcome(3)]);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_replays_empty() {
        let replay = Wal::replay(temp_path("does-not-exist-ever")).unwrap();
        assert_eq!(replay, Replay::default());
    }

    #[test]
    fn compaction_bounds_the_log() {
        let path = temp_path("compaction");
        let mut wal = Wal::create(&path).unwrap().with_compaction(4);
        for t in 0..20 {
            wal.append(&WalRecord::Tick(outcome(t))).unwrap();
            if t % 5 == 4 {
                wal.append_snapshot(&snapshot(0, t)).unwrap();
            }
        }
        assert!(
            wal.records() <= 6,
            "log must stay bounded, has {} records",
            wal.records()
        );
        drop(wal);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.snapshot.unwrap().tick, 19);
        assert!(!replay.truncated);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_corruption_truncates_at_the_record() {
        let path = temp_path("corruption");
        let mut wal = Wal::create(&path).unwrap().with_corruption(vec![2]);
        for t in 0..5 {
            wal.append(&WalRecord::Tick(outcome(t))).unwrap();
        }
        drop(wal);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records, 2, "replay stops at the corrupted record");
        assert!(replay.truncated);
        assert_eq!(replay.tail, vec![outcome(0), outcome(1)]);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_to_clears_a_corrupt_tail() {
        let src = temp_path("compact-src");
        let mut wal = Wal::create(&src).unwrap().with_corruption(vec![3]);
        wal.append_snapshot(&snapshot(0, 10)).unwrap();
        for t in 11..15 {
            wal.append(&WalRecord::Tick(outcome(t))).unwrap();
        }
        drop(wal);
        let replay = Wal::replay(&src).unwrap();
        assert!(replay.truncated);
        let dst = temp_path("compact-dst");
        let fresh = Wal::compact_to(&dst, replay.snapshot.as_ref()).unwrap();
        assert_eq!(fresh.records(), 1);
        drop(fresh);
        let clean = Wal::replay(&dst).unwrap();
        assert!(!clean.truncated);
        assert_eq!(clean.snapshot, replay.snapshot);
        fs::remove_file(&src).ok();
        fs::remove_file(&dst).ok();
    }

    #[test]
    fn decode_never_panics_on_arbitrary_prefixes() {
        let mut bytes = Vec::new();
        for t in 0..3 {
            bytes.extend_from_slice(&encode_record(&WalRecord::Tick(outcome(t))));
        }
        for cut in 0..bytes.len() {
            let replay = decode_records(&bytes[..cut]);
            assert!(replay.records <= 3);
        }
    }
}
