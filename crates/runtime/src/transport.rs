//! Wire transport: the protocol over real sockets.
//!
//! The actors speak newline-delimited JSON frames
//! ([`crate::message::encode`]); this module carries those frames
//! over any `Read`/`Write` pair — in particular TCP — so a monitor can
//! live in a different process or on a different machine from its
//! coordinator, exactly as in the paper's deployment (monitors in each
//! server's Dom0, a coordinator per five servers).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use bytes::Bytes;

use crate::message::{decode, encode, CoordinatorToMonitor};
use crate::monitor::MonitorActor;

/// Writes one frame (already newline-terminated by
/// [`crate::message::encode`]) to the wire.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_frame<W: Write>(writer: &mut W, frame: &Bytes) -> std::io::Result<()> {
    writer.write_all(frame)?;
    writer.flush()
}

/// Reads one newline-delimited frame from the wire; `Ok(None)` signals a
/// clean end of stream.
///
/// # Errors
///
/// Propagates reader failures.
pub fn read_frame<R: BufRead>(reader: &mut R) -> std::io::Result<Option<Bytes>> {
    let mut buffer = Vec::new();
    let read = reader.read_until(b'\n', &mut buffer)?;
    if read == 0 {
        return Ok(None);
    }
    Ok(Some(Bytes::from(buffer)))
}

/// Serves one monitor over a TCP connection — reading coordinator
/// frames, handling them with the actor, writing replies — until the
/// peer closes the connection or sends `Shutdown`. Malformed frames are
/// skipped, as a production server would.
///
/// # Errors
///
/// Propagates socket failures.
pub fn serve_monitor_tcp(mut actor: MonitorActor, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    while let Some(frame) = read_frame(&mut reader)? {
        let Ok(msg) = decode::<CoordinatorToMonitor>(&frame) else {
            continue;
        };
        let (reply, terminate) = actor.handle(msg);
        if let Some(reply) = reply {
            write_frame(&mut writer, &encode(&reply))?;
        }
        if terminate {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    use volley_core::task::MonitorId;
    use volley_core::{AdaptationConfig, AdaptiveSampler};

    use crate::message::{MonitorToCoordinator, TickData};

    fn actor(threshold: f64) -> MonitorActor {
        let cfg = AdaptationConfig::builder()
            .error_allowance(0.05)
            .patience(2)
            .warmup_samples(2)
            .max_interval(4)
            .build()
            .unwrap();
        MonitorActor::new(MonitorId(0), AdaptiveSampler::new(cfg, threshold))
    }

    #[test]
    fn frame_round_trip_over_buffers() {
        let frame = encode(&CoordinatorToMonitor::Poll { tick: 9 });
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let mut reader = std::io::BufReader::new(wire.as_slice());
        let back = read_frame(&mut reader).unwrap().expect("one frame");
        assert_eq!(back, frame);
        assert!(
            read_frame(&mut reader).unwrap().is_none(),
            "stream ends cleanly"
        );
    }

    #[test]
    fn monitor_serves_over_tcp_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            serve_monitor_tcp(actor(5.0), stream).expect("serve succeeds");
        });

        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;

        // Tick with a violating value.
        write_frame(
            &mut writer,
            &encode(&CoordinatorToMonitor::Tick(TickData {
                tick: 0,
                value: 9.0,
            })),
        )
        .expect("send tick");
        let frame = read_frame(&mut reader).expect("io").expect("reply");
        let msg: MonitorToCoordinator = decode(&frame).expect("decodes");
        assert!(matches!(
            msg,
            MonitorToCoordinator::TickDone {
                violation: true,
                sampled: true,
                ..
            }
        ));

        // Poll returns the current value.
        write_frame(
            &mut writer,
            &encode(&CoordinatorToMonitor::Poll { tick: 0 }),
        )
        .expect("send poll");
        let frame = read_frame(&mut reader).expect("io").expect("reply");
        let msg: MonitorToCoordinator = decode(&frame).expect("decodes");
        match msg {
            MonitorToCoordinator::PollReply {
                value,
                forced_sample,
                ..
            } => {
                assert_eq!(value, 9.0);
                assert!(!forced_sample, "already sampled this tick");
            }
            other => panic!("unexpected reply {other:?}"),
        }

        // Garbage is skipped without killing the connection.
        write_frame(&mut writer, &Bytes::from_static(b"garbage\n")).expect("send garbage");
        write_frame(
            &mut writer,
            &encode(&CoordinatorToMonitor::Tick(TickData {
                tick: 1,
                value: 1.0,
            })),
        )
        .expect("send tick");
        let frame = read_frame(&mut reader).expect("io").expect("reply");
        let msg: MonitorToCoordinator = decode(&frame).expect("decodes");
        assert!(matches!(
            msg,
            MonitorToCoordinator::TickDone {
                violation: false,
                ..
            }
        ));

        // Shutdown terminates the server loop.
        write_frame(&mut writer, &encode(&CoordinatorToMonitor::Shutdown)).expect("send shutdown");
        server.join().expect("server thread exits");
    }

    #[test]
    fn peer_disconnect_ends_service() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            serve_monitor_tcp(actor(5.0), stream).expect("serve tolerates disconnect");
        });
        let stream = TcpStream::connect(addr).expect("connect");
        drop(stream); // immediate disconnect
        server.join().expect("server exits cleanly");
    }
}
