//! Wire transport: the protocol over real sockets.
//!
//! The actors speak newline-delimited JSON frames
//! ([`crate::message::encode`]); this module carries those frames
//! over any `Read`/`Write` pair — in particular TCP — so a monitor can
//! live in a different process or on a different machine from its
//! coordinator, exactly as in the paper's deployment (monitors in each
//! server's Dom0, a coordinator per five servers).
//!
//! The wire is treated as hostile: frames are capped at a maximum size
//! (a corrupt or malicious peer cannot make [`read_frame`] buffer without
//! bound), a stream that ends mid-frame is a decode error rather than a
//! silently accepted partial message, socket reads and writes can carry
//! timeouts, and [`connect_with_retry`] reconnects with bounded
//! exponential backoff.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use bytes::Bytes;

use volley_core::VolleyError;

use crate::message::{decode, encode, CoordinatorToMonitor};
use crate::monitor::MonitorActor;

/// Default cap on a single wire frame. Protocol messages are tens to a
/// few hundred bytes; 64 KiB leaves room for large period reports while
/// bounding what a misbehaving peer can make us buffer.
pub const DEFAULT_MAX_FRAME_SIZE: usize = 64 * 1024;

/// Socket-level hardening knobs for [`serve_monitor_tcp_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportConfig {
    /// Maximum accepted frame size in bytes.
    pub max_frame_size: usize,
    /// Read timeout applied to the socket (`None` = block forever).
    /// An idle-but-healthy coordinator sends nothing between ticks, so
    /// only set this below the expected tick period if a dead peer must
    /// be detected by the monitor side too.
    pub read_timeout: Option<Duration>,
    /// Write timeout applied to the socket (`None` = block forever).
    pub write_timeout: Option<Duration>,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            max_frame_size: DEFAULT_MAX_FRAME_SIZE,
            read_timeout: None,
            write_timeout: None,
        }
    }
}

/// Writes one frame (already newline-terminated by
/// [`crate::message::encode`]) to the wire.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_frame<W: Write>(writer: &mut W, frame: &Bytes) -> std::io::Result<()> {
    writer.write_all(frame)?;
    writer.flush()
}

/// Reads one newline-delimited frame from the wire, capped at
/// [`DEFAULT_MAX_FRAME_SIZE`]; `Ok(None)` signals a clean end of stream.
///
/// # Errors
///
/// Propagates reader failures. Returns an
/// [`InvalidData`](std::io::ErrorKind::InvalidData) error wrapping
/// [`VolleyError::FrameTooLarge`] for an oversized frame, or one for a
/// stream that ends mid-frame (bytes after the last newline).
pub fn read_frame<R: BufRead>(reader: &mut R) -> std::io::Result<Option<Bytes>> {
    read_frame_limited(reader, DEFAULT_MAX_FRAME_SIZE)
}

/// [`read_frame`] with an explicit frame-size cap.
///
/// # Errors
///
/// As [`read_frame`], with `max_size` as the cap.
pub fn read_frame_limited<R: BufRead>(
    reader: &mut R,
    max_size: usize,
) -> std::io::Result<Option<Bytes>> {
    let mut buffer = Vec::new();
    // Read at most one byte past the cap: enough to distinguish "exactly
    // at the limit" from "over it" without unbounded buffering.
    let mut limited = reader.take(max_size as u64 + 1);
    let read = limited.read_until(b'\n', &mut buffer)?;
    if read == 0 {
        return Ok(None);
    }
    if buffer.last() != Some(&b'\n') {
        if buffer.len() > max_size {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                VolleyError::FrameTooLarge {
                    size: buffer.len(),
                    max_size,
                },
            ));
        }
        // EOF in the middle of a frame: a crashed peer's half-written
        // message, never a message.
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("stream ended mid-frame after {} bytes", buffer.len()),
        ));
    }
    Ok(Some(Bytes::from(buffer)))
}

/// Connects to `addr`, retrying with exponential backoff: attempt *k*
/// (0-based) sleeps `base_backoff × 2^k` after failing, up to `attempts`
/// total tries.
///
/// # Errors
///
/// Returns the final attempt's error once the budget is exhausted (or an
/// [`InvalidInput`](std::io::ErrorKind::InvalidInput) error for
/// `attempts == 0`).
pub fn connect_with_retry<A: ToSocketAddrs>(
    addr: A,
    attempts: u32,
    base_backoff: Duration,
) -> std::io::Result<TcpStream> {
    let mut last_err = std::io::Error::new(
        std::io::ErrorKind::InvalidInput,
        "connect_with_retry needs at least one attempt",
    );
    for attempt in 0..attempts {
        match TcpStream::connect(&addr) {
            Ok(stream) => return Ok(stream),
            Err(err) => last_err = err,
        }
        if attempt + 1 < attempts {
            std::thread::sleep(base_backoff * 2u32.saturating_pow(attempt));
        }
    }
    Err(last_err)
}

/// Serves one monitor over a TCP connection — reading coordinator
/// frames, handling them with the actor, writing replies — until the
/// peer closes the connection or sends `Shutdown`. Malformed frames are
/// skipped, as a production server would; oversized or truncated frames
/// are connection-fatal. Uses the default [`TransportConfig`].
///
/// # Errors
///
/// Propagates socket failures.
pub fn serve_monitor_tcp(actor: MonitorActor, stream: TcpStream) -> std::io::Result<()> {
    serve_monitor_tcp_with(actor, stream, TransportConfig::default())
}

/// [`serve_monitor_tcp`] with explicit transport hardening knobs.
///
/// # Errors
///
/// Propagates socket failures, including reads or writes exceeding the
/// configured timeouts.
pub fn serve_monitor_tcp_with(
    mut actor: MonitorActor,
    stream: TcpStream,
    config: TransportConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(config.read_timeout)?;
    stream.set_write_timeout(config.write_timeout)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    while let Some(frame) = read_frame_limited(&mut reader, config.max_frame_size)? {
        let Ok(msg) = decode::<CoordinatorToMonitor>(&frame) else {
            continue;
        };
        let (reply, terminate) = actor.handle(msg);
        if let Some(reply) = reply {
            write_frame(&mut writer, &encode(&reply))?;
        }
        if terminate {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    use volley_core::task::MonitorId;
    use volley_core::{AdaptationConfig, AdaptiveSampler};

    use crate::message::{MonitorToCoordinator, TickData};

    fn actor(threshold: f64) -> MonitorActor {
        let cfg = AdaptationConfig::builder()
            .error_allowance(0.05)
            .patience(2)
            .warmup_samples(2)
            .max_interval(4)
            .build()
            .unwrap();
        MonitorActor::new(MonitorId(0), AdaptiveSampler::new(cfg, threshold))
    }

    #[test]
    fn frame_round_trip_over_buffers() {
        let frame = encode(&CoordinatorToMonitor::Poll { tick: 9 });
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let mut reader = std::io::BufReader::new(wire.as_slice());
        let back = read_frame(&mut reader).unwrap().expect("one frame");
        assert_eq!(back, frame);
        assert!(
            read_frame(&mut reader).unwrap().is_none(),
            "stream ends cleanly"
        );
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let wire = vec![b'x'; 100]; // no newline within the cap
        let mut reader = std::io::BufReader::new(wire.as_slice());
        let err = read_frame_limited(&mut reader, 64).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("65"), "reports the observed size");
    }

    #[test]
    fn frame_exactly_at_the_cap_is_accepted() {
        let mut wire = vec![b'x'; 63];
        wire.push(b'\n');
        let mut reader = std::io::BufReader::new(wire.as_slice());
        let frame = read_frame_limited(&mut reader, 64).unwrap().unwrap();
        assert_eq!(frame.len(), 64);
    }

    #[test]
    fn truncated_final_frame_is_an_error() {
        let wire = b"{\"tick\":1".to_vec(); // peer died mid-write
        let mut reader = std::io::BufReader::new(wire.as_slice());
        let err = read_frame(&mut reader).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("mid-frame"));
    }

    #[test]
    fn connect_with_retry_reaches_a_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        let stream = connect_with_retry(addr, 3, Duration::from_millis(1)).expect("connects");
        drop(stream);
    }

    #[test]
    fn connect_with_retry_gives_up_after_budget() {
        // Port 1 is privileged and never assigned to test listeners, so
        // loopback refuses the connection immediately.
        let addr = "127.0.0.1:1";
        let err = connect_with_retry(addr, 2, Duration::from_millis(1)).unwrap_err();
        assert_ne!(err.kind(), std::io::ErrorKind::InvalidInput);
        let err = connect_with_retry(addr, 0, Duration::from_millis(1)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn monitor_serves_over_tcp_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            serve_monitor_tcp(actor(5.0), stream).expect("serve succeeds");
        });

        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;

        // Tick with a violating value.
        write_frame(
            &mut writer,
            &encode(&CoordinatorToMonitor::Tick(TickData {
                tick: 0,
                value: 9.0,
            })),
        )
        .expect("send tick");
        let frame = read_frame(&mut reader).expect("io").expect("reply");
        let msg: MonitorToCoordinator = decode(&frame).expect("decodes");
        assert!(matches!(
            msg,
            MonitorToCoordinator::TickDone {
                violation: true,
                sampled: true,
                ..
            }
        ));

        // Poll returns the current value.
        write_frame(
            &mut writer,
            &encode(&CoordinatorToMonitor::Poll { tick: 0 }),
        )
        .expect("send poll");
        let frame = read_frame(&mut reader).expect("io").expect("reply");
        let msg: MonitorToCoordinator = decode(&frame).expect("decodes");
        match msg {
            MonitorToCoordinator::PollReply {
                value,
                forced_sample,
                ..
            } => {
                assert_eq!(value, 9.0);
                assert!(!forced_sample, "already sampled this tick");
            }
            other => panic!("unexpected reply {other:?}"),
        }

        // Garbage is skipped without killing the connection.
        write_frame(&mut writer, &Bytes::from_static(b"garbage\n")).expect("send garbage");
        write_frame(
            &mut writer,
            &encode(&CoordinatorToMonitor::Tick(TickData {
                tick: 1,
                value: 1.0,
            })),
        )
        .expect("send tick");
        let frame = read_frame(&mut reader).expect("io").expect("reply");
        let msg: MonitorToCoordinator = decode(&frame).expect("decodes");
        assert!(matches!(
            msg,
            MonitorToCoordinator::TickDone {
                violation: false,
                ..
            }
        ));

        // Shutdown terminates the server loop.
        write_frame(&mut writer, &encode(&CoordinatorToMonitor::Shutdown)).expect("send shutdown");
        server.join().expect("server thread exits");
    }

    #[test]
    fn oversized_frame_kills_the_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let config = TransportConfig {
                max_frame_size: 128,
                ..TransportConfig::default()
            };
            serve_monitor_tcp_with(actor(5.0), stream, config)
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut bomb = vec![b'a'; 4096];
        bomb.push(b'\n');
        stream.write_all(&bomb).expect("send oversized frame");
        let err = server.join().expect("server thread exits").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn peer_disconnect_ends_service() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            serve_monitor_tcp(actor(5.0), stream).expect("serve tolerates disconnect");
        });
        let stream = TcpStream::connect(addr).expect("connect");
        drop(stream); // immediate disconnect
        server.join().expect("server exits cleanly");
    }
}
