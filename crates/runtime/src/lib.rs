//! # volley-runtime
//!
//! A message-passing implementation of Volley's distributed prototype
//! (§V-A): **agents** supply monitoring data, **monitors** run the
//! violation-likelihood adaptation locally and report local violations,
//! and a **coordinator** processes those reports, runs global polls, and
//! periodically reallocates the task-level error allowance.
//!
//! Unlike [`volley_core::DistributedTask`] — a single-threaded,
//! step-driven reference implementation — this crate actually runs every
//! monitor and the coordinator on its own OS thread, communicating
//! exclusively through channels, exactly as the components would across
//! machines. A [`TaskRunner`] drives simulated time in lock-step (the
//! stand-in for the paper's NTP-synchronized wall clocks) and feeds each
//! monitor its agent's ground-truth values.
//!
//! The protocol per tick:
//!
//! 1. the runner sends [`TickData`](message::TickData) to every monitor;
//! 2. each monitor decides locally whether its sampling schedule fires,
//!    runs adaptation if so, and reports a
//!    [`message::MonitorToCoordinator::TickDone`] (with any
//!    local violation) to the coordinator;
//! 3. on any local violation the coordinator issues a *global poll*: every
//!    monitor returns its current value
//!    ([`message::MonitorToCoordinator::PollReply`]), paying a
//!    forced sampling operation if it had not sampled this tick;
//! 4. the coordinator checks `Σ v_i > T`, emits the tick summary back to
//!    the runner, and — every updating period — collects period reports
//!    and reallocates error allowance (§IV-B).
//!
//! # Fault tolerance
//!
//! The runtime assumes monitors can fail and the network can misbehave:
//!
//! - every coordinator collection phase is bounded by a **tick deadline**
//!   ([`TaskRunner::with_tick_deadline`]) instead of blocking forever;
//! - a monitor missing consecutive deadlines is **quarantined**
//!   ([`TaskRunner::with_quarantine_after`]): the coordinator stops
//!   waiting for it and aggregates it at its local threshold `T_i`
//!   (**degraded mode** — conservative, so degraded aggregation can raise
//!   false alerts but never suppresses one another monitor could prove);
//! - the runner's **supervisor** restarts quarantined monitors with a
//!   fresh sampler ([`TaskRunner::with_supervision`]), and the
//!   coordinator welcomes them back the moment they report on time;
//! - allowance reallocation **skips any round with missing reports** and
//!   carries the previous allowances forward.
//!
//! Faults themselves are injectable: the deterministic
//! [`failure::FaultPlan`] drops, delays and duplicates protocol messages
//! and schedules monitor crashes and stalls, purely as a function of
//! `(seed, monitor, tick)`, so a run under a given plan is exactly
//! reproducible. The legacy [`failure::FailureInjector`] (ordered,
//! stateful loss on the violation-report path only) remains for the
//! original accuracy experiments.
//!
//! ```
//! use volley_core::task::TaskSpec;
//! use volley_runtime::TaskRunner;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = TaskSpec::builder(100.0).monitors(2).error_allowance(0.02).build()?;
//! // Two quiet value streams; 500 ticks.
//! let traces = vec![vec![10.0; 500], vec![20.0; 500]];
//! let report = TaskRunner::new(&spec)?.run(&traces)?;
//! assert_eq!(report.alerts, 0);
//! assert!(report.total_samples < 1000); // adaptation saved cost
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod coordinator;
pub mod failure;
pub mod fleet;
pub mod link;
pub mod message;
pub mod monitor;
pub mod multitask;
pub mod net;
pub mod runner;
pub mod transport;

pub use checkpoint::{
    AppendOutcome, CoordinatorSnapshot, Replay, TickOutcome, Wal, WalRecord, WalStats,
    WalSyncPolicy,
};
pub use coordinator::CoordinatorActor;
pub use failure::{FailureInjector, FaultPath, FaultPlan};
pub use fleet::{FleetRunner, FleetSummary, FleetTask};
pub use link::MonitorLink;
pub use message::CoordinatorToRunner;
pub use monitor::MonitorActor;
pub use multitask::{MultiTask, MultiTaskConfig, MultiTaskOutcome, MultiTaskRunner, PlanGate};
pub use net::{
    run_agent, AgentConfig, AgentReport, BackoffConfig, NetAddr, NetCoordinator, NetFaultPlan,
    NetRunOutcome, NetStats,
};
pub use runner::{DegradationReport, MultitaskReport, RuntimeReport, TaskRunner};
pub use volley_store::SampleRecorder;
