//! Wire messages of the monitor/coordinator protocol.
//!
//! Every message is `Serialize`/`Deserialize` and framed losslessly by
//! [`encode`]/[`decode`], so the in-process channel transport could be
//! swapped for a socket without touching the actors. The encoding is
//! line-delimited JSON over a [`bytes::Bytes`] buffer — chosen for
//! debuggability (the paper's prototype likewise shipped human-readable
//! reports between bash-driven monitors and coordinators).

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use volley_core::adaptation::PeriodReport;
use volley_core::task::MonitorId;
use volley_core::time::Tick;

/// Data an agent hands its monitor for one tick: the ground-truth value
/// of the monitored variable.
///
/// The monitor only *looks at* the value when its sampling schedule (or a
/// global poll) says so — delivering it every tick models the fact that
/// the agent-side state exists whether or not anyone pays to sample it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickData {
    /// The tick being processed.
    pub tick: Tick,
    /// Ground-truth value of the monitored variable at this tick.
    pub value: f64,
}

/// Messages from a monitor to its coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MonitorToCoordinator {
    /// End-of-tick report: whether this monitor sampled, and whether the
    /// sampled value violated the local threshold.
    TickDone {
        /// Reporting monitor.
        monitor: MonitorId,
        /// The tick this report concludes.
        tick: Tick,
        /// Whether the monitor performed a scheduled sampling operation.
        sampled: bool,
        /// Whether a sampled value exceeded the local threshold. Always
        /// `false` when `sampled` is `false`.
        violation: bool,
    },
    /// Response to a global poll: the monitor's current value.
    PollReply {
        /// Replying monitor.
        monitor: MonitorId,
        /// The polled tick.
        tick: Tick,
        /// The monitor's current value (freshly sampled if necessary).
        value: f64,
        /// Whether answering required a forced sampling operation.
        forced_sample: bool,
    },
    /// Per-updating-period averages for allowance reallocation (§IV-B).
    Report {
        /// Reporting monitor.
        monitor: MonitorId,
        /// The period aggregates.
        report: PeriodReport,
    },
    /// Supervisor notice (sent by the *runner*, which shares the
    /// monitor→coordinator channel): `monitor` was restarted and will
    /// report again — await it instead of skipping it as quarantined.
    /// Because the channel is FIFO, the notice always precedes the
    /// restarted monitor's first report.
    Revived {
        /// The restarted monitor.
        monitor: MonitorId,
    },
}

/// Messages from the coordinator (or runner) to a monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CoordinatorToMonitor {
    /// Process one tick of agent data.
    Tick(TickData),
    /// Answer a global poll for `tick`.
    Poll {
        /// The tick to report the current value for.
        tick: Tick,
    },
    /// Drain and send the updating-period report.
    RequestReport,
    /// Adopt a new error allowance.
    SetAllowance {
        /// The new allowance for this monitor.
        err: f64,
    },
    /// Terminate the monitor thread.
    Shutdown,
}

/// Per-tick summary the coordinator returns to the runner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickSummary {
    /// The concluded tick.
    pub tick: Tick,
    /// Scheduled sampling operations this tick.
    pub scheduled_samples: u32,
    /// Forced (poll-induced) sampling operations this tick.
    pub poll_samples: u32,
    /// Local violations reported (post message-loss).
    pub local_violations: u32,
    /// Whether a global poll ran.
    pub polled: bool,
    /// Whether the poll found `Σ v_i > T`.
    pub alerted: bool,
    /// Monitors whose tick report missed the collection deadline (or that
    /// were already quarantined) this tick.
    pub missing_reports: u32,
    /// Whether any aggregation this tick substituted a missing monitor's
    /// local threshold `T_i` for its value (degraded mode).
    pub degraded: bool,
}

/// Frames the coordinator sends the runner: the per-tick summary plus
/// liveness events about individual monitors, which the runner's
/// supervisor uses to restart dead ones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CoordinatorToRunner {
    /// A tick concluded.
    Summary(TickSummary),
    /// A monitor missed enough consecutive tick deadlines to be
    /// quarantined: the coordinator stops waiting for it and aggregates
    /// it at its local threshold until it reappears.
    MonitorQuarantined {
        /// The quarantined monitor.
        monitor: MonitorId,
        /// The tick at which quarantine began.
        tick: Tick,
        /// Consecutive deadlines missed at that point.
        consecutive_missed: u32,
    },
    /// A quarantined monitor reported on time again.
    MonitorRecovered {
        /// The recovered monitor.
        monitor: MonitorId,
        /// The tick at which it reported again.
        tick: Tick,
    },
}

/// Encodes a message as one JSON line in a [`Bytes`] buffer.
///
/// # Panics
///
/// Never panics for the message types of this module (they contain no
/// non-serializable values).
pub fn encode<M: Serialize>(message: &M) -> Bytes {
    let mut buf = serde_json::to_vec(message).expect("protocol messages serialize");
    buf.push(b'\n');
    Bytes::from(buf)
}

/// Decodes a message produced by [`encode`].
///
/// # Errors
///
/// Returns a JSON error for malformed frames.
pub fn decode<M: for<'de> Deserialize<'de>>(frame: &Bytes) -> Result<M, serde_json::Error> {
    serde_json::from_slice(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use volley_core::Interval;

    #[test]
    fn encode_decode_round_trip() {
        let msg = MonitorToCoordinator::TickDone {
            monitor: MonitorId(3),
            tick: 99,
            sampled: true,
            violation: true,
        };
        let frame = encode(&msg);
        assert_eq!(frame.last(), Some(&b'\n'));
        let back: MonitorToCoordinator = decode(&frame).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn poll_reply_round_trip() {
        let msg = MonitorToCoordinator::PollReply {
            monitor: MonitorId(0),
            tick: 5,
            value: 1.25,
            forced_sample: false,
        };
        let back: MonitorToCoordinator = decode(&encode(&msg)).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn report_round_trip() {
        let msg = MonitorToCoordinator::Report {
            monitor: MonitorId(7),
            report: PeriodReport {
                observations: 10,
                avg_beta_current: 0.01,
                avg_beta_grown: 0.02,
                avg_potential_reduction: 0.5,
                interval: Interval::new_clamped(3),
                at_max_interval: false,
                cost_curve: vec![1.0, 0.8, 0.5, 0.4, 0.3, 0.25, 0.2, 0.15],
            },
        };
        let back: MonitorToCoordinator = decode(&encode(&msg)).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn revived_round_trip() {
        let msg = MonitorToCoordinator::Revived {
            monitor: MonitorId(2),
        };
        let back: MonitorToCoordinator = decode(&encode(&msg)).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn coordinator_messages_round_trip() {
        for msg in [
            CoordinatorToMonitor::Tick(TickData {
                tick: 1,
                value: 2.0,
            }),
            CoordinatorToMonitor::Poll { tick: 1 },
            CoordinatorToMonitor::RequestReport,
            CoordinatorToMonitor::SetAllowance { err: 0.004 },
            CoordinatorToMonitor::Shutdown,
        ] {
            let back: CoordinatorToMonitor = decode(&encode(&msg)).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        let garbage = Bytes::from_static(b"not json\n");
        assert!(decode::<TickSummary>(&garbage).is_err());
    }

    #[test]
    fn runner_frames_round_trip() {
        for msg in [
            CoordinatorToRunner::Summary(TickSummary {
                tick: 12,
                scheduled_samples: 3,
                poll_samples: 1,
                local_violations: 2,
                polled: true,
                alerted: false,
                missing_reports: 1,
                degraded: true,
            }),
            CoordinatorToRunner::MonitorQuarantined {
                monitor: MonitorId(4),
                tick: 100,
                consecutive_missed: 3,
            },
            CoordinatorToRunner::MonitorRecovered {
                monitor: MonitorId(4),
                tick: 150,
            },
        ] {
            let back: CoordinatorToRunner = decode(&encode(&msg)).unwrap();
            assert_eq!(back, msg);
        }
    }
}
