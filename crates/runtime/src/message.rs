//! Wire messages of the monitor/coordinator protocol.
//!
//! Every message is `Serialize`/`Deserialize` and framed losslessly by
//! [`encode`]/[`decode`], so the in-process channel transport could be
//! swapped for a socket without touching the actors. The encoding is
//! line-delimited JSON over a [`bytes::Bytes`] buffer — chosen for
//! debuggability (the paper's prototype likewise shipped human-readable
//! reports between bash-driven monitors and coordinators).

//! ## Epoch fencing
//!
//! With a warm-standby coordinator, frames from a deposed coordinator
//! (or replies addressed to it) must not be mistaken for current
//! traffic — a partitioned former coordinator double-counting reports or
//! double-commanding monitors is the classic split-brain failure. Every
//! monitor↔coordinator frame therefore travels inside an epoch-stamped
//! envelope ([`MonitorFrame`], [`ControlFrame`]); a takeover bumps the
//! epoch and both sides reject frames from older epochs (see
//! [`crate::coordinator`] and [`crate::monitor`] for the exact rules).

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use volley_core::adaptation::PeriodReport;
use volley_core::snapshot::SamplerSnapshot;
use volley_core::task::MonitorId;
use volley_core::time::Tick;

/// Data an agent hands its monitor for one tick: the ground-truth value
/// of the monitored variable.
///
/// The monitor only *looks at* the value when its sampling schedule (or a
/// global poll) says so — delivering it every tick models the fact that
/// the agent-side state exists whether or not anyone pays to sample it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickData {
    /// The tick being processed.
    pub tick: Tick,
    /// Ground-truth value of the monitored variable at this tick.
    pub value: f64,
}

/// Messages from a monitor to its coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MonitorToCoordinator {
    /// End-of-tick report: whether this monitor sampled, and whether the
    /// sampled value violated the local threshold.
    TickDone {
        /// Reporting monitor.
        monitor: MonitorId,
        /// The tick this report concludes.
        tick: Tick,
        /// Whether the monitor performed a scheduled sampling operation.
        sampled: bool,
        /// Whether a sampled value exceeded the local threshold. Always
        /// `false` when `sampled` is `false`.
        violation: bool,
        /// Whether the adaptive schedule was due to sample this tick but a
        /// multi-task gate ([`CoordinatorToMonitor::SetGate`]) held the
        /// sample back. Defaults to `false` so pre-gate frames decode.
        #[serde(default)]
        suppressed: bool,
    },
    /// Response to a global poll: the monitor's current value.
    PollReply {
        /// Replying monitor.
        monitor: MonitorId,
        /// The polled tick.
        tick: Tick,
        /// The monitor's current value (freshly sampled if necessary).
        value: f64,
        /// Whether answering required a forced sampling operation.
        forced_sample: bool,
    },
    /// Per-updating-period averages for allowance reallocation (§IV-B).
    Report {
        /// Reporting monitor.
        monitor: MonitorId,
        /// The period aggregates.
        report: PeriodReport,
    },
    /// Supervisor notice (sent by the *runner*, which shares the
    /// monitor→coordinator channel): `monitor` was restarted and will
    /// report again — await it instead of skipping it as quarantined.
    /// Because the channel is FIFO, the notice always precedes the
    /// restarted monitor's first report.
    Revived {
        /// The restarted monitor.
        monitor: MonitorId,
    },
    /// Reply to [`CoordinatorToMonitor::RequestSnapshot`]: the monitor's
    /// full adaptation state, for the coordinator's checkpoint.
    StateSnapshot {
        /// Reporting monitor.
        monitor: MonitorId,
        /// The sampler state.
        snapshot: SamplerSnapshot,
    },
    /// Multi-task control notice (sent by the *runner*, which shares the
    /// monitor→coordinator channel, like [`Self::Revived`]): the state of
    /// this task's precondition (leader) task. A follower coordinator
    /// engages its suppression gate while the leader is calm and releases
    /// it the moment the leader's violation likelihood is high (§II.B).
    /// FIFO ordering guarantees the notice is consumed before the tick it
    /// precedes.
    LeaderState {
        /// The tick this notice precedes.
        tick: Tick,
        /// Whether the leader task's violation likelihood is currently
        /// high (a recent leader violation within the lag window).
        active: bool,
    },
}

/// Messages from the coordinator (or runner) to a monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CoordinatorToMonitor {
    /// Process one tick of agent data.
    Tick(TickData),
    /// Answer a global poll for `tick`.
    Poll {
        /// The tick to report the current value for.
        tick: Tick,
    },
    /// Drain and send the updating-period report.
    RequestReport,
    /// Adopt a new error allowance.
    SetAllowance {
        /// The new allowance for this monitor.
        err: f64,
    },
    /// Adopt a new (strictly higher) coordinator epoch after a failover.
    /// A monitor only ever *raises* its epoch, and only on this message —
    /// data frames at a higher epoch do not implicitly re-fence it.
    NewEpoch {
        /// The new coordinator epoch.
        epoch: u64,
    },
    /// Send the full sampler state for checkpointing
    /// ([`MonitorToCoordinator::StateSnapshot`]).
    RequestSnapshot,
    /// Replace the sampler with checkpointed state (failover recovery:
    /// the standby restores the monitor's learned interval and δ
    /// statistics).
    RestoreState {
        /// The state to restore.
        snapshot: SamplerSnapshot,
    },
    /// Discard the sampler and restart at the default interval — the
    /// paper's conservative `I_d` restart, used when no checkpointed
    /// state exists for this monitor.
    ResetSampler,
    /// Engage or release the multi-task suppression gate (§II.B).
    /// `Some(i)` stretches the monitor's effective sampling interval to
    /// at least `i` ticks while its task's leader is calm; `None`
    /// releases the gate, snapping the monitor back to its adaptive
    /// schedule on the next tick.
    SetGate {
        /// Minimum ticks between samples while gated; `None` = ungated.
        interval: Option<u32>,
    },
    /// Terminate the monitor thread.
    Shutdown,
}

/// Epoch-stamped envelope for every monitor→coordinator frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorFrame {
    /// The coordinator epoch the sender believes is current.
    pub epoch: u64,
    /// The payload.
    pub msg: MonitorToCoordinator,
}

impl MonitorFrame {
    /// Encodes `msg` sealed at `epoch`.
    pub fn seal(epoch: u64, msg: MonitorToCoordinator) -> Bytes {
        encode(&MonitorFrame { epoch, msg })
    }
}

/// Epoch-stamped envelope for every coordinator→monitor frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlFrame {
    /// The sending coordinator's epoch.
    pub epoch: u64,
    /// The payload.
    pub msg: CoordinatorToMonitor,
}

impl ControlFrame {
    /// Encodes `msg` sealed at `epoch`.
    pub fn seal(epoch: u64, msg: CoordinatorToMonitor) -> Bytes {
        encode(&ControlFrame { epoch, msg })
    }
}

/// Per-tick summary the coordinator returns to the runner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickSummary {
    /// The concluded tick.
    pub tick: Tick,
    /// Scheduled sampling operations this tick.
    pub scheduled_samples: u32,
    /// Forced (poll-induced) sampling operations this tick.
    pub poll_samples: u32,
    /// Local violations reported (post message-loss).
    pub local_violations: u32,
    /// Whether a global poll ran.
    pub polled: bool,
    /// Whether the poll found `Σ v_i > T`.
    pub alerted: bool,
    /// Monitors whose tick report missed the collection deadline (or that
    /// were already quarantined) this tick.
    pub missing_reports: u32,
    /// Whether any aggregation this tick substituted a missing monitor's
    /// local threshold `T_i` for its value (degraded mode).
    pub degraded: bool,
    /// Frames rejected this tick because they carried a stale coordinator
    /// epoch (traffic addressed to a deposed coordinator).
    pub stale_epoch_frames: u32,
    /// Scheduled samples held back this tick by the multi-task
    /// suppression gate (§II.B). Defaults keep pre-gate frames decoding.
    #[serde(default)]
    pub suppressed_samples: u32,
    /// Whether the suppression gate was engaged when this tick closed.
    #[serde(default)]
    pub gated: bool,
}

/// Frames the coordinator sends the runner: the per-tick summary plus
/// liveness events about individual monitors, which the runner's
/// supervisor uses to restart dead ones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CoordinatorToRunner {
    /// A tick concluded.
    Summary(TickSummary),
    /// A monitor missed enough consecutive tick deadlines to be
    /// quarantined: the coordinator stops waiting for it and aggregates
    /// it at its local threshold until it reappears.
    MonitorQuarantined {
        /// The quarantined monitor.
        monitor: MonitorId,
        /// The tick at which quarantine began.
        tick: Tick,
        /// Consecutive deadlines missed at that point.
        consecutive_missed: u32,
    },
    /// A quarantined monitor reported on time again.
    MonitorRecovered {
        /// The recovered monitor.
        monitor: MonitorId,
        /// The tick at which it reported again.
        tick: Tick,
    },
}

/// Encodes a message as one JSON line in a [`Bytes`] buffer.
///
/// # Panics
///
/// Never panics for the message types of this module (they contain no
/// non-serializable values).
pub fn encode<M: Serialize>(message: &M) -> Bytes {
    let mut buf = serde_json::to_vec(message).expect("protocol messages serialize");
    buf.push(b'\n');
    Bytes::from(buf)
}

/// Decodes a message produced by [`encode`].
///
/// # Errors
///
/// Returns a JSON error for malformed frames.
pub fn decode<M: for<'de> Deserialize<'de>>(frame: &Bytes) -> Result<M, serde_json::Error> {
    serde_json::from_slice(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use volley_core::Interval;

    #[test]
    fn encode_decode_round_trip() {
        let msg = MonitorToCoordinator::TickDone {
            monitor: MonitorId(3),
            tick: 99,
            sampled: true,
            violation: true,
            suppressed: false,
        };
        let frame = encode(&msg);
        assert_eq!(frame.last(), Some(&b'\n'));
        let back: MonitorToCoordinator = decode(&frame).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn poll_reply_round_trip() {
        let msg = MonitorToCoordinator::PollReply {
            monitor: MonitorId(0),
            tick: 5,
            value: 1.25,
            forced_sample: false,
        };
        let back: MonitorToCoordinator = decode(&encode(&msg)).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn report_round_trip() {
        let msg = MonitorToCoordinator::Report {
            monitor: MonitorId(7),
            report: PeriodReport {
                observations: 10,
                avg_beta_current: 0.01,
                avg_beta_grown: 0.02,
                avg_potential_reduction: 0.5,
                interval: Interval::new_clamped(3),
                at_max_interval: false,
                cost_curve: vec![1.0, 0.8, 0.5, 0.4, 0.3, 0.25, 0.2, 0.15],
            },
        };
        let back: MonitorToCoordinator = decode(&encode(&msg)).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn revived_round_trip() {
        let msg = MonitorToCoordinator::Revived {
            monitor: MonitorId(2),
        };
        let back: MonitorToCoordinator = decode(&encode(&msg)).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn leader_state_round_trip() {
        let msg = MonitorToCoordinator::LeaderState {
            tick: 17,
            active: true,
        };
        let back: MonitorToCoordinator = decode(&encode(&msg)).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn tick_done_without_suppressed_field_decodes_as_unsuppressed() {
        // Frames encoded before the multi-task gate existed lack the
        // `suppressed` field; the default keeps them decodable.
        let legacy = Bytes::from_static(
            b"{\"TickDone\":{\"monitor\":1,\"tick\":4,\"sampled\":true,\"violation\":false}}\n",
        );
        let back: MonitorToCoordinator = decode(&legacy).unwrap();
        assert_eq!(
            back,
            MonitorToCoordinator::TickDone {
                monitor: MonitorId(1),
                tick: 4,
                sampled: true,
                violation: false,
                suppressed: false,
            }
        );
    }

    fn sampler_snapshot() -> SamplerSnapshot {
        use volley_core::{AdaptationConfig, AdaptiveSampler};
        let mut sampler = AdaptiveSampler::new(AdaptationConfig::default(), 75.0);
        sampler.observe(0, 10.0);
        sampler.observe(1, 11.5);
        sampler.to_snapshot()
    }

    #[test]
    fn coordinator_messages_round_trip() {
        for msg in [
            CoordinatorToMonitor::Tick(TickData {
                tick: 1,
                value: 2.0,
            }),
            CoordinatorToMonitor::Poll { tick: 1 },
            CoordinatorToMonitor::RequestReport,
            CoordinatorToMonitor::SetAllowance { err: 0.004 },
            CoordinatorToMonitor::NewEpoch { epoch: 3 },
            CoordinatorToMonitor::RequestSnapshot,
            CoordinatorToMonitor::RestoreState {
                snapshot: sampler_snapshot(),
            },
            CoordinatorToMonitor::ResetSampler,
            CoordinatorToMonitor::SetGate { interval: Some(8) },
            CoordinatorToMonitor::SetGate { interval: None },
            CoordinatorToMonitor::Shutdown,
        ] {
            let back: CoordinatorToMonitor = decode(&encode(&msg)).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn state_snapshot_round_trip() {
        let msg = MonitorToCoordinator::StateSnapshot {
            monitor: MonitorId(1),
            snapshot: sampler_snapshot(),
        };
        let back: MonitorToCoordinator = decode(&encode(&msg)).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn sealed_envelopes_round_trip_with_epoch() {
        let frame = MonitorFrame::seal(
            7,
            MonitorToCoordinator::TickDone {
                monitor: MonitorId(2),
                tick: 10,
                sampled: true,
                violation: false,
                suppressed: false,
            },
        );
        let back: MonitorFrame = decode(&frame).unwrap();
        assert_eq!(back.epoch, 7);
        assert!(matches!(
            back.msg,
            MonitorToCoordinator::TickDone { tick: 10, .. }
        ));

        let frame = ControlFrame::seal(2, CoordinatorToMonitor::Poll { tick: 4 });
        let back: ControlFrame = decode(&frame).unwrap();
        assert_eq!(back.epoch, 2);
        assert_eq!(back.msg, CoordinatorToMonitor::Poll { tick: 4 });
    }

    #[test]
    fn decode_rejects_garbage() {
        let garbage = Bytes::from_static(b"not json\n");
        assert!(decode::<TickSummary>(&garbage).is_err());
    }

    #[test]
    fn runner_frames_round_trip() {
        for msg in [
            CoordinatorToRunner::Summary(TickSummary {
                tick: 12,
                scheduled_samples: 3,
                poll_samples: 1,
                local_violations: 2,
                polled: true,
                alerted: false,
                missing_reports: 1,
                degraded: true,
                stale_epoch_frames: 2,
                suppressed_samples: 0,
                gated: false,
            }),
            CoordinatorToRunner::MonitorQuarantined {
                monitor: MonitorId(4),
                tick: 100,
                consecutive_missed: 3,
            },
            CoordinatorToRunner::MonitorRecovered {
                monitor: MonitorId(4),
                tick: 150,
            },
        ] {
            let back: CoordinatorToRunner = decode(&encode(&msg)).unwrap();
            assert_eq!(back, msg);
        }
    }
}
