//! Running many monitoring tasks concurrently.
//!
//! A datacenter runs "a large number of monitoring tasks" (§I) at once;
//! [`FleetRunner`] executes a batch of independent distributed tasks in
//! parallel — each with its own monitor threads and coordinator — and
//! collects their reports in submission order. Tasks are isolated: a
//! task's channels, failure injection and allowance budget never touch
//! another's.

use volley_core::coordinator::CoordinationScheme;
use volley_core::task::TaskSpec;
use volley_core::VolleyError;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::coordinator::DEFAULT_TICK_DEADLINE;
use crate::failure::{FailureInjector, FaultPlan};
use crate::runner::{RuntimeReport, TaskRunner};

/// One task submission for a fleet run.
#[derive(Debug)]
pub struct FleetTask {
    /// The task specification.
    pub spec: TaskSpec,
    /// Per-monitor ground-truth traces (`traces[i][t]`).
    pub traces: Vec<Vec<f64>>,
    /// Allowance-allocation scheme.
    pub scheme: CoordinationScheme,
    /// Violation-report loss injection.
    pub failure: FailureInjector,
    /// Deterministic fault plan (crashes, stalls, drops, delays,
    /// duplication) for this task's run.
    pub fault_plan: FaultPlan,
    /// Tick deadline for this task's coordinator.
    pub tick_deadline: Duration,
    /// Whether a warm standby coordinator is armed for this task.
    pub standby: bool,
    /// Checkpoint WAL path and snapshot cadence for this task, if any.
    pub wal: Option<(std::path::PathBuf, u64)>,
    /// Recording sink for this task's samples/alerts/interval changes.
    /// Tag shared recorders with
    /// [`SampleRecorder::for_task`] so tasks stay
    /// distinguishable in one store.
    pub recorder: Option<volley_store::SampleRecorder>,
}

impl FleetTask {
    /// Creates a submission with the default (adaptive) scheme, a
    /// lossless report path and no injected faults.
    pub fn from_spec(spec: TaskSpec, traces: Vec<Vec<f64>>) -> Self {
        FleetTask {
            spec,
            traces,
            scheme: CoordinationScheme::Adaptive,
            failure: FailureInjector::lossless(),
            fault_plan: FaultPlan::default(),
            tick_deadline: DEFAULT_TICK_DEADLINE,
            standby: false,
            wal: None,
            recorder: None,
        }
    }

    /// Installs a fault plan (and usually a much shorter tick deadline)
    /// for this submission.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan, tick_deadline: Duration) -> Self {
        self.fault_plan = plan;
        self.tick_deadline = tick_deadline;
        self
    }

    /// Arms a warm standby coordinator, optionally durable: with a WAL
    /// path and snapshot cadence the standby restores checkpointed
    /// adaptation state at failover instead of conservative `I_d`
    /// restarts. Each task needs its own WAL path.
    #[must_use]
    pub fn with_standby(mut self, wal: Option<(std::path::PathBuf, u64)>) -> Self {
        self.standby = true;
        self.wal = wal;
        self
    }

    /// Attaches a recording sink for this submission (see
    /// [`TaskRunner::with_recorder`]).
    #[must_use]
    pub fn with_recorder(mut self, recorder: volley_store::SampleRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }
}

/// Aggregate statistics over a fleet run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FleetSummary {
    /// Tasks executed.
    pub tasks: usize,
    /// Total sampling operations across all tasks.
    pub total_samples: u64,
    /// Baseline (periodic) sampling operations across all tasks.
    pub baseline_samples: u64,
    /// Total alerts raised.
    pub alerts: u64,
    /// Total global polls.
    pub polls: u64,
}

impl FleetSummary {
    /// Fleet-wide sampling-cost ratio versus periodic.
    pub fn cost_ratio(&self) -> f64 {
        if self.baseline_samples == 0 {
            1.0
        } else {
            self.total_samples as f64 / self.baseline_samples as f64
        }
    }
}

/// Executes batches of independent monitoring tasks in parallel.
#[derive(Debug, Default)]
pub struct FleetRunner {
    /// Worker-thread cap; `None` runs every task on its own thread.
    threads: Option<usize>,
}

impl FleetRunner {
    /// Creates a fleet runner that gives every task its own thread group.
    pub fn new() -> Self {
        FleetRunner::default()
    }

    /// Caps the fleet at `threads` concurrently-running tasks (clamped to
    /// at least 1): workers pull submissions off a shared queue, so a
    /// million-task fleet no longer needs a million OS threads. Reports
    /// stay in submission order and are bit-identical for every cap —
    /// tasks are isolated, so the cap changes scheduling only.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Runs all submissions concurrently (up to the
    /// [`with_threads`](Self::with_threads) cap, default one thread group
    /// per task) and returns their reports in submission order plus a
    /// fleet summary.
    ///
    /// # Errors
    ///
    /// Returns the first task error encountered (tasks that already
    /// completed are discarded — submissions are expected to be
    /// pre-validated via [`TaskSpec`] construction).
    pub fn run(
        &self,
        tasks: Vec<FleetTask>,
    ) -> Result<(Vec<RuntimeReport>, FleetSummary), VolleyError> {
        let results: Vec<Mutex<Option<Result<RuntimeReport, VolleyError>>>> =
            (0..tasks.len()).map(|_| Mutex::new(None)).collect();
        let workers = self
            .threads
            .unwrap_or(tasks.len())
            .clamp(1, tasks.len().max(1));
        if !tasks.is_empty() {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tasks = &tasks;
                    let results = &results;
                    let next = &next;
                    scope.spawn(move || loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= tasks.len() {
                            break;
                        }
                        let task = &tasks[index];
                        let outcome = (|| {
                            let mut runner = TaskRunner::new(&task.spec)?
                                .with_scheme(task.scheme)
                                .with_failure(task.failure.clone())
                                .with_fault_plan(task.fault_plan.clone())
                                .with_tick_deadline(task.tick_deadline)
                                .with_standby(task.standby);
                            if let Some((path, every)) = &task.wal {
                                runner = runner.with_wal(path, *every);
                            }
                            if let Some(recorder) = &task.recorder {
                                runner = runner.with_recorder(recorder.clone());
                            }
                            runner.run(&task.traces)
                        })();
                        *results[index].lock().expect("result slot lock") = Some(outcome);
                    });
                }
            });
        }
        let mut reports = Vec::with_capacity(tasks.len());
        let mut summary = FleetSummary::default();
        for (result, task) in results.into_iter().zip(&tasks) {
            let report = result
                .into_inner()
                .expect("result slot lock")
                .expect("every slot filled")?;
            summary.tasks += 1;
            summary.total_samples += report.total_samples;
            summary.baseline_samples += report.ticks * task.spec.monitors().len() as u64;
            summary.alerts += report.alerts;
            summary.polls += report.polls;
            reports.push(report);
        }
        Ok((reports, summary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(monitors: usize, threshold: f64) -> TaskSpec {
        TaskSpec::builder(threshold)
            .monitors(monitors)
            .error_allowance(0.02)
            .max_interval(8)
            .patience(3)
            .warmup_samples(3)
            .build()
            .unwrap()
    }

    fn quiet_traces(monitors: usize, ticks: usize, base: f64) -> Vec<Vec<f64>> {
        (0..monitors)
            .map(|m| vec![base + m as f64; ticks])
            .collect()
    }

    #[test]
    fn empty_fleet_is_trivial() {
        let (reports, summary) = FleetRunner::new().run(Vec::new()).unwrap();
        assert!(reports.is_empty());
        assert_eq!(summary.tasks, 0);
        assert_eq!(summary.cost_ratio(), 1.0);
    }

    #[test]
    fn fleet_matches_individual_runs() {
        let make_tasks = || {
            vec![
                FleetTask::from_spec(spec(2, 500.0), quiet_traces(2, 400, 5.0)),
                FleetTask::from_spec(spec(3, 900.0), quiet_traces(3, 400, 10.0)),
                FleetTask::from_spec(spec(1, 50.0), {
                    let mut t = quiet_traces(1, 400, 5.0);
                    // A sustained violation spanning more than the max
                    // interval (8), so at least one sample must land on it.
                    t[0][120..140].fill(75.0);
                    t
                }),
            ]
        };
        let (fleet_reports, summary) = FleetRunner::new().run(make_tasks()).unwrap();
        assert_eq!(fleet_reports.len(), 3);
        assert_eq!(summary.tasks, 3);
        // Individually-run tasks must produce identical reports.
        for task in make_tasks() {
            let solo = TaskRunner::new(&task.spec)
                .unwrap()
                .run(&task.traces)
                .unwrap();
            let matching = fleet_reports.contains(&solo);
            assert!(matching, "no fleet report matches the solo run");
        }
        assert!(summary.alerts >= 1);
        assert_eq!(summary.baseline_samples, (2 + 3 + 1) * 400);
        assert!(summary.cost_ratio() < 1.0);
    }

    #[test]
    fn fleet_propagates_task_errors() {
        // A task whose trace count mismatches its monitor count fails.
        let bad = FleetTask::from_spec(spec(2, 100.0), quiet_traces(1, 50, 1.0));
        let err = FleetRunner::new().run(vec![bad]).unwrap_err();
        assert!(matches!(err, VolleyError::ValueCountMismatch { .. }));
    }

    #[test]
    fn faulty_task_completes_without_contaminating_the_fleet() {
        use volley_core::task::MonitorId;
        let healthy = FleetTask::from_spec(spec(2, 500.0), quiet_traces(2, 100, 5.0));
        let faulty = FleetTask::from_spec(spec(2, 500.0), quiet_traces(2, 100, 5.0)).with_faults(
            FaultPlan::new(3).with_crash(MonitorId(0), 10),
            Duration::from_millis(25),
        );
        let (reports, summary) = FleetRunner::new().run(vec![healthy, faulty]).unwrap();
        assert_eq!(summary.tasks, 2);
        assert_eq!(reports[0].quarantines, 0, "healthy task unaffected");
        assert_eq!(reports[1].quarantines, 1);
        assert_eq!(reports[1].restarts, 1);
        assert_eq!(reports[1].ticks, 100, "faulty task still completes");
    }

    #[test]
    fn standby_task_survives_a_coordinator_crash_in_the_fleet() {
        let dir = std::env::temp_dir().join("volley-fleet-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("standby-{}.wal", std::process::id()));
        let healthy = FleetTask::from_spec(spec(2, 500.0), quiet_traces(2, 80, 5.0));
        let durable = FleetTask::from_spec(spec(2, 500.0), quiet_traces(2, 80, 5.0))
            .with_faults(
                FaultPlan::new(3).with_coordinator_crash(40),
                Duration::from_millis(50),
            )
            .with_standby(Some((path.clone(), 10)));
        let (reports, summary) = FleetRunner::new().run(vec![healthy, durable]).unwrap();
        assert_eq!(summary.tasks, 2);
        assert_eq!(reports[0].coordinator_failovers, 0);
        assert_eq!(reports[1].coordinator_failovers, 1);
        assert_eq!(reports[1].checkpoint_restores, 2);
        assert_eq!(reports[1].ticks, 80, "failed-over task still completes");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bounded_pool_matches_unbounded_for_every_cap() {
        let make_tasks = || {
            (0..6)
                .map(|i| FleetTask::from_spec(spec(2, 800.0 + i as f64), quiet_traces(2, 150, 2.0)))
                .collect::<Vec<_>>()
        };
        let (unbounded, baseline) = FleetRunner::new().run(make_tasks()).unwrap();
        for threads in [1, 2, 8] {
            let (bounded, summary) = FleetRunner::new()
                .with_threads(threads)
                .run(make_tasks())
                .unwrap();
            assert_eq!(unbounded, bounded, "threads={threads} changed reports");
            assert_eq!(baseline, summary, "threads={threads} changed summary");
        }
    }

    #[test]
    fn large_fleet_completes() {
        let tasks: Vec<FleetTask> = (0..12)
            .map(|i| FleetTask::from_spec(spec(2, 1000.0 + i as f64), quiet_traces(2, 200, 1.0)))
            .collect();
        let (reports, summary) = FleetRunner::new().run(tasks).unwrap();
        assert_eq!(reports.len(), 12);
        assert_eq!(summary.tasks, 12);
        assert_eq!(summary.alerts, 0);
    }
}
