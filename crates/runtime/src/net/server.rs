//! The networked coordinator: a readiness-driven nonblocking event loop
//! multiplexing every agent socket, plus a lockstep driver that mirrors
//! [`crate::runner::TaskRunner`] tick for tick.
//!
//! ## Architecture
//!
//! Three threads cooperate:
//!
//! 1. the **coordinator actor** ([`crate::coordinator::CoordinatorActor`])
//!    runs unmodified — it still reads one inbound channel and writes
//!    per-monitor [`MonitorLink`]s; it cannot tell the transport changed.
//! 2. the **event loop** (this module) owns the listener and every agent
//!    socket. Inbound: raw bytes → [`FrameBuffer`] reassembly → raw
//!    `MonitorFrame` lines forwarded verbatim into the coordinator's
//!    inbox. Outbound: the coordinator's tagged link traffic is routed by
//!    monitor id to the owning connection's bounded queue, spliced into
//!    [`ServerFrame::Ctl`](super::wire::ServerFrame) envelopes, and
//!    written in ~64 KiB batches with partial-write carry-over.
//! 3. the **driver** ([`NetCoordinator::run`]) paces ticks and folds
//!    [`TickSummary`](crate::message::TickSummary)s into a
//!    [`RuntimeReport`] with the runner's exact aggregation, which is
//!    what makes bit-for-bit report parity testable.
//!
//! ## Robustness policy
//!
//! - *Slow peers*: each connection's outbound queue is capped
//!   ([`NetCoordinator::with_queue_cap`]). Overflow drops the frame and
//!   counts a backpressure stall — the monitor then misses its tick
//!   deadline and the existing quarantine/degraded-mode path takes over.
//!   Memory stays bounded no matter how slow a peer is.
//! - *Half-open connections*: sockets silent longer than the idle
//!   timeout are closed; a live agent re-dials and re-handshakes.
//! - *Reconnect storms*: a [`NetFaultPlan`](super::faults::NetFaultPlan)
//!   severs a fraction of agents at storm ticks; accept + hello
//!   re-registration is O(1) per connection, so a storm is absorbed
//!   without disturbing other connections.

use std::collections::HashSet;
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use serde::Serialize;

use volley_core::allocation::{AllocationConfig, ErrorAllocator};
use volley_core::task::TaskSpec;
use volley_core::VolleyError;
use volley_obs::{names, Obs};
use volley_serve::ServePublisher;

use crate::coordinator::{CoordinatorActor, DEFAULT_QUARANTINE_AFTER, DEFAULT_TICK_DEADLINE};
use crate::failure::{FailureInjector, FaultPlan};
use crate::link::MonitorLink;
use crate::message::{decode, ControlFrame, CoordinatorToMonitor, CoordinatorToRunner, TickData};
use crate::runner::RuntimeReport;
use crate::transport::TransportConfig;

use super::codec::FrameBuffer;
use super::faults::NetFaultPlan;
use super::wire::{ctl_line, welcome_line, AgentHello};

/// Where the coordinator listens (and agents dial).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetAddr {
    /// A TCP host:port, e.g. `127.0.0.1:7707`.
    Tcp(String),
    /// A Unix domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl fmt::Display for NetAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetAddr::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            NetAddr::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

impl NetAddr {
    /// Dials the address (blocking connect).
    pub(crate) fn connect(&self) -> std::io::Result<Socket> {
        match self {
            NetAddr::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Ok(Socket::Tcp(stream))
            }
            #[cfg(unix)]
            NetAddr::Unix(path) => Ok(Socket::Unix(UnixStream::connect(path)?)),
        }
    }
}

/// A connected stream, TCP or Unix, with uniform socket-option access.
#[derive(Debug)]
pub(crate) enum Socket {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Socket {
    pub(crate) fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Socket::Tcp(s) => s.set_nonblocking(on),
            #[cfg(unix)]
            Socket::Unix(s) => s.set_nonblocking(on),
        }
    }

    pub(crate) fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Socket::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Socket::Unix(s) => s.set_read_timeout(dur),
        }
    }

    pub(crate) fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Socket::Tcp(s) => s.set_write_timeout(dur),
            #[cfg(unix)]
            Socket::Unix(s) => s.set_write_timeout(dur),
        }
    }
}

impl Read for Socket {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Socket::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Socket::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Socket {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Socket::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Socket::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Socket::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Socket::Unix(s) => s.flush(),
        }
    }
}

/// The bound listener, TCP or Unix.
#[derive(Debug)]
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn bind(addr: &NetAddr) -> std::io::Result<Listener> {
        match addr {
            NetAddr::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Tcp(listener))
            }
            #[cfg(unix)]
            NetAddr::Unix(path) => {
                // A previous run's socket file would fail the bind.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Unix(listener, path.clone()))
            }
        }
    }

    fn accept(&self) -> std::io::Result<Socket> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Socket::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Socket::Unix(s)),
        }
    }

    fn local_addr(&self) -> Option<SocketAddr> {
        match self {
            Listener::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            Listener::Unix(..) => None,
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Socket-layer totals for one networked run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct NetStats {
    /// Connections accepted (first dials and re-dials).
    pub connections_accepted: u64,
    /// Hellos from an agent id already seen — i.e. reconnects absorbed.
    pub reconnects: u64,
    /// Monitor frames forwarded to the coordinator.
    pub frames_in: u64,
    /// Server frames fully handed to a connection's write batch.
    pub frames_out: u64,
    /// Frames or hellos that failed to parse (connection dropped).
    pub malformed_frames: u64,
    /// Outbound frames dropped because a peer's queue was full.
    pub backpressure_drops: u64,
    /// Outbound frames dropped because no live connection hosted the
    /// destination monitor.
    pub unrouted_drops: u64,
    /// Connections force-closed by the fault plan (reconnect storms).
    pub kicked: u64,
    /// Connections closed for exceeding the idle timeout (half-open
    /// peer protection).
    pub idle_closed: u64,
    /// High-water mark of any single connection's outbound queue.
    pub max_queue_depth: u64,
}

/// Result of a networked run: the runner-compatible report plus
/// socket-layer statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetRunOutcome {
    /// Aggregates identical in meaning (and, fault-free, in value) to
    /// [`crate::runner::TaskRunner::run`]'s report.
    pub report: RuntimeReport,
    /// Socket-layer totals.
    pub net: NetStats,
}

/// State shared between the driver and the event loop.
#[derive(Debug)]
struct NetShared {
    stop: AtomicBool,
    /// Per-monitor "an agent has ever claimed this monitor" flags, for
    /// fleet-assembly.
    seen: Vec<AtomicBool>,
    seen_count: AtomicUsize,
    /// Live connection count (teardown waits for 0).
    open: AtomicUsize,
    /// Agent ids with at least one hello, for fault targeting.
    agents: Mutex<HashSet<u32>>,
    /// Agent ids whose connections the event loop must sever (storms).
    kick: Mutex<Vec<u32>>,
    connections_accepted: AtomicU64,
    reconnects: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    malformed_frames: AtomicU64,
    backpressure_drops: AtomicU64,
    unrouted_drops: AtomicU64,
    kicked: AtomicU64,
    idle_closed: AtomicU64,
    max_queue_depth: AtomicU64,
}

impl NetShared {
    fn new(n: usize) -> Self {
        NetShared {
            stop: AtomicBool::new(false),
            seen: (0..n).map(|_| AtomicBool::new(false)).collect(),
            seen_count: AtomicUsize::new(0),
            open: AtomicUsize::new(0),
            agents: Mutex::new(HashSet::new()),
            kick: Mutex::new(Vec::new()),
            connections_accepted: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            malformed_frames: AtomicU64::new(0),
            backpressure_drops: AtomicU64::new(0),
            unrouted_drops: AtomicU64::new(0),
            kicked: AtomicU64::new(0),
            idle_closed: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
        }
    }

    fn stats(&self) -> NetStats {
        NetStats {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            malformed_frames: self.malformed_frames.load(Ordering::Relaxed),
            backpressure_drops: self.backpressure_drops.load(Ordering::Relaxed),
            unrouted_drops: self.unrouted_drops.load(Ordering::Relaxed),
            kicked: self.kicked.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// One agent connection's state machine.
struct Conn {
    socket: Socket,
    frames: FrameBuffer,
    /// `None` until a valid hello arrives.
    agent: Option<u32>,
    /// Monitors registered by this connection's hello.
    monitors: Vec<u32>,
    /// Bounded outbound frame queue (capped at `queue_cap`).
    outq: std::collections::VecDeque<Bytes>,
    /// Current write batch and how much of it is already on the wire.
    wbuf: Vec<u8>,
    wpos: usize,
    last_read: Instant,
    closed: bool,
}

/// How big a write batch grows before it must drain (bytes).
const WRITE_BATCH: usize = 64 * 1024;
/// Read chunk size per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// A socket-serving coordinator bound to a listener and ready to run.
#[derive(Debug)]
pub struct NetCoordinator {
    spec: TaskSpec,
    listener: Listener,
    tick_deadline: Duration,
    quarantine_after: u32,
    queue_cap: usize,
    idle_timeout: Duration,
    /// Sleep inserted before each tick — zero (default) runs ticks
    /// back-to-back; tests injecting process faults use it to widen the
    /// windows they race against.
    tick_interval: Duration,
    wait_timeout: Duration,
    transport: TransportConfig,
    faults: NetFaultPlan,
    obs: Obs,
    serve: Option<ServePublisher>,
}

impl NetCoordinator {
    /// Binds the listener; agents may start dialing immediately (their
    /// hellos are absorbed once [`run`](Self::run) starts the loop).
    ///
    /// # Errors
    ///
    /// [`VolleyError::InvalidConfig`] when the bind fails.
    pub fn bind(spec: TaskSpec, addr: &NetAddr) -> Result<Self, VolleyError> {
        let listener = Listener::bind(addr).map_err(|e| VolleyError::InvalidConfig {
            parameter: "net",
            reason: format!("bind {addr}: {e}"),
        })?;
        Ok(NetCoordinator {
            spec,
            listener,
            tick_deadline: DEFAULT_TICK_DEADLINE,
            quarantine_after: DEFAULT_QUARANTINE_AFTER,
            queue_cap: 1024,
            idle_timeout: Duration::from_secs(30),
            tick_interval: Duration::ZERO,
            wait_timeout: Duration::from_secs(30),
            transport: TransportConfig::default(),
            faults: NetFaultPlan::new(0),
            obs: Obs::new(false),
            serve: None,
        })
    }

    /// The bound TCP address (for port-0 binds in tests); `None` for
    /// Unix listeners.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listener.local_addr()
    }

    /// Sets how long the coordinator waits for tick reports before
    /// degrading (see [`CoordinatorActor::with_tick_deadline`]).
    pub fn with_tick_deadline(mut self, deadline: Duration) -> Self {
        self.tick_deadline = deadline;
        self
    }

    /// Sets consecutive missed deadlines before quarantine.
    pub fn with_quarantine_after(mut self, misses: u32) -> Self {
        self.quarantine_after = misses.max(1);
        self
    }

    /// Caps each connection's outbound frame queue. Overflow drops
    /// frames (counted) and lets deadline machinery degrade the peer.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap.max(1);
        self
    }

    /// Closes connections silent for this long (half-open protection).
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Inserts a sleep before each tick (default zero).
    pub fn with_tick_interval(mut self, interval: Duration) -> Self {
        self.tick_interval = interval;
        self
    }

    /// How long to wait for the full fleet to register before failing.
    pub fn with_wait_timeout(mut self, timeout: Duration) -> Self {
        self.wait_timeout = timeout;
        self
    }

    /// Frame-size cap and socket timeouts.
    pub fn with_transport(mut self, transport: TransportConfig) -> Self {
        self.transport = transport;
        self
    }

    /// Installs a socket-level fault plan (reconnect storms).
    pub fn with_faults(mut self, faults: NetFaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches an observability hub for net gauges/counters and the
    /// coordinator's own metrics.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = obs.clone();
        self
    }

    /// Attaches a live serving-plane publisher: alert events and the
    /// current tick flow into its bounded ring without ever blocking
    /// the tick loop.
    #[must_use]
    pub fn with_serve_publisher(mut self, publisher: ServePublisher) -> Self {
        self.serve = Some(publisher);
        self
    }

    /// Runs the task over the fleet: waits for every monitor to be
    /// claimed by a connected agent, drives `traces` tick by tick, and
    /// shuts the fleet down.
    ///
    /// # Errors
    ///
    /// [`VolleyError::ValueCountMismatch`] when `traces` does not have
    /// one trace per monitor; [`VolleyError::InvalidConfig`] when the
    /// fleet fails to assemble in time; [`VolleyError::RuntimeDisconnected`]
    /// when the coordinator actor dies mid-run.
    pub fn run(self, traces: &[Vec<f64>]) -> Result<NetRunOutcome, VolleyError> {
        let n = self.spec.monitors().len();
        if traces.len() != n {
            return Err(VolleyError::ValueCountMismatch {
                got: traces.len(),
                expected: n,
            });
        }
        let ticks = traces.iter().map(|t| t.len()).min().unwrap_or(0) as u64;
        let global_err = self.spec.adaptation().error_allowance();

        // Plumbing: monitor frames in, tagged control frames out,
        // summaries to this driver.
        let (to_coord_tx, from_monitors) = unbounded::<Bytes>();
        let (net_out_tx, net_out_rx) = unbounded::<(u32, Bytes)>();
        let (summary_tx, summary_rx) = unbounded::<Bytes>();
        let links: Vec<MonitorLink> = (0..n as u32)
            .map(|m| MonitorLink::tagged(m, net_out_tx.clone()))
            .collect();

        // The coordinator actor, with the runner's exact construction so
        // aggregation semantics are shared.
        let allocator = ErrorAllocator::new(AllocationConfig::default(), global_err, n)?;
        let local_thresholds: Vec<f64> = self
            .spec
            .monitors()
            .iter()
            .map(|m| m.local_threshold)
            .collect();
        let coordinator = CoordinatorActor::new(
            self.spec.global_threshold(),
            local_thresholds,
            allocator,
            self.spec.adaptation().slack_ratio(),
            true,
            FailureInjector::lossless(),
        )
        .with_fault_plan(FaultPlan::default())
        .with_tick_deadline(self.tick_deadline)
        .with_quarantine_after(self.quarantine_after)
        .with_epoch(0)
        .with_obs(&self.obs);
        let coord_links = links.clone();
        let coord_handle =
            thread::spawn(move || coordinator.run(from_monitors, coord_links, summary_tx));

        // The event loop owns the listener, every socket, and the only
        // sender into the coordinator's inbox.
        let shared = Arc::new(NetShared::new(n));
        let loop_shared = Arc::clone(&shared);
        let listener = self.listener;
        let queue_cap = self.queue_cap;
        let idle_timeout = self.idle_timeout;
        let max_frame = self.transport.max_frame_size;
        let loop_handle = thread::spawn(move || {
            event_loop(
                listener,
                &loop_shared,
                &net_out_rx,
                &to_coord_tx,
                queue_cap,
                idle_timeout,
                max_frame,
            );
        });

        let drive = || -> Result<RuntimeReport, VolleyError> {
            // Fleet assembly: every monitor must be claimed before tick 0,
            // or the first deadline would instantly degrade the stragglers.
            let assemble_by = Instant::now() + self.wait_timeout;
            while shared.seen_count.load(Ordering::Acquire) < n {
                if Instant::now() > assemble_by {
                    return Err(VolleyError::InvalidConfig {
                        parameter: "net",
                        reason: format!(
                            "fleet incomplete: {}/{n} monitors registered within {:?}",
                            shared.seen_count.load(Ordering::Acquire),
                            self.wait_timeout
                        ),
                    });
                }
                thread::sleep(Duration::from_millis(2));
            }

            let registry = self.obs.registry();
            let conn_gauge = registry.gauge(names::NET_CONNECTIONS);
            let queue_gauge = registry.gauge(names::NET_QUEUE_DEPTH);
            let reconnects_total = registry.counter(names::NET_RECONNECTS_TOTAL);
            let stalls_total = registry.counter(names::NET_BACKPRESSURE_STALLS_TOTAL);
            let mut obs_reconnects = 0u64;
            let mut obs_stalls = 0u64;

            let mut report = RuntimeReport::default();
            for tick in 0..ticks {
                if self.faults.storm_at(tick) {
                    let victims: Vec<u32> = {
                        let agents = shared.agents.lock().expect("agents lock");
                        agents
                            .iter()
                            .copied()
                            .filter(|&a| self.faults.severs(tick, a))
                            .collect()
                    };
                    if !victims.is_empty() {
                        shared.kick.lock().expect("kick lock").extend(victims);
                    }
                }
                if self.tick_interval > Duration::ZERO {
                    thread::sleep(self.tick_interval);
                }
                for (i, link) in links.iter().enumerate() {
                    let data = TickData {
                        tick,
                        value: traces[i][tick as usize],
                    };
                    let _ = link.send(ControlFrame::seal(0, CoordinatorToMonitor::Tick(data)));
                }
                // Consume liveness events until this tick's summary
                // arrives — the runner's loop, minus supervision (agents
                // restart themselves; the coordinator only re-admits).
                let summary = loop {
                    let Ok(frame) = summary_rx.recv() else {
                        return Err(VolleyError::RuntimeDisconnected {
                            component: "coordinator",
                        });
                    };
                    match decode::<CoordinatorToRunner>(&frame) {
                        Ok(CoordinatorToRunner::Summary(summary)) => break summary,
                        Ok(CoordinatorToRunner::MonitorQuarantined { .. }) => {
                            report.quarantines += 1;
                        }
                        Ok(CoordinatorToRunner::MonitorRecovered { .. }) => {
                            report.recoveries += 1;
                        }
                        Err(_) => {}
                    }
                };
                report.ticks += 1;
                report.scheduled_samples += u64::from(summary.scheduled_samples);
                report.poll_samples += u64::from(summary.poll_samples);
                report.local_violation_reports += u64::from(summary.local_violations);
                report.missed_tick_reports += u64::from(summary.missing_reports);
                report.stale_epoch_frames += u64::from(summary.stale_epoch_frames);
                if summary.polled {
                    report.polls += 1;
                    if summary.degraded {
                        report.degraded_polls += 1;
                    }
                }
                if summary.alerted {
                    report.alerts += 1;
                    report.alert_ticks.push(summary.tick);
                    if summary.degraded {
                        report.degraded_alerts += 1;
                    }
                    if let Some(serve) = &self.serve {
                        serve.alert(summary.tick, summary.degraded);
                    }
                }
                if let Some(serve) = &self.serve {
                    serve.set_tick(tick);
                }
                if self.obs.enabled() {
                    let stats = shared.stats();
                    conn_gauge.set(shared.open.load(Ordering::Relaxed) as f64);
                    queue_gauge.set(stats.max_queue_depth as f64);
                    reconnects_total.add(stats.reconnects - obs_reconnects);
                    obs_reconnects = stats.reconnects;
                    stalls_total.add(stats.backpressure_drops - obs_stalls);
                    obs_stalls = stats.backpressure_drops;
                }
            }
            report.total_samples = report.scheduled_samples + report.poll_samples;
            Ok(report)
        };
        let outcome = drive();

        // Teardown: keep resending Shutdown until every agent drains off
        // (reconnecting agents that missed the first copy get another),
        // then stop the loop — dropping the coordinator inbox sender —
        // and join everything.
        let drain_by = Instant::now() + Duration::from_secs(5);
        while shared.open.load(Ordering::Acquire) > 0 && Instant::now() < drain_by {
            for link in &links {
                let _ = link.send(ControlFrame::seal(0, CoordinatorToMonitor::Shutdown));
            }
            thread::sleep(Duration::from_millis(50));
        }
        shared.stop.store(true, Ordering::Release);
        loop_handle.join().expect("event loop exits cleanly");
        drop(links);
        drop(net_out_tx);
        // Drain any trailing summaries so the coordinator never blocks on
        // a full channel (it can't — unbounded — but the recv side must
        // outlive it regardless), then join it.
        while summary_rx.try_recv().is_ok() {}
        coord_handle
            .join()
            .expect("coordinator thread exits cleanly");

        outcome.map(|report| NetRunOutcome {
            report,
            net: shared.stats(),
        })
    }
}

/// Routes one outbound `(monitor, frame)` into the owning connection's
/// queue, enforcing the cap.
fn route_frame(
    conns: &mut [Option<Conn>],
    route: &[Option<usize>],
    shared: &NetShared,
    queue_cap: usize,
    monitor: u32,
    frame: &Bytes,
) {
    let Some(slot) = route.get(monitor as usize).copied().flatten() else {
        shared.unrouted_drops.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let Some(conn) = conns[slot].as_mut() else {
        shared.unrouted_drops.fetch_add(1, Ordering::Relaxed);
        return;
    };
    if conn.closed {
        shared.unrouted_drops.fetch_add(1, Ordering::Relaxed);
        return;
    }
    if conn.outq.len() >= queue_cap {
        shared.backpressure_drops.fetch_add(1, Ordering::Relaxed);
        return;
    }
    conn.outq.push_back(ctl_line(monitor, frame));
    shared
        .max_queue_depth
        .fetch_max(conn.outq.len() as u64, Ordering::Relaxed);
}

/// The event loop: accept, read/reassemble/forward, route, batch-write,
/// enforce liveness — all nonblocking, single-threaded.
#[allow(clippy::too_many_lines)]
fn event_loop(
    listener: Listener,
    shared: &NetShared,
    net_out_rx: &Receiver<(u32, Bytes)>,
    to_coord: &Sender<Bytes>,
    queue_cap: usize,
    idle_timeout: Duration,
    max_frame: usize,
) {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut route: Vec<Option<usize>> = vec![None; shared.seen.len()];
    let mut chunk = vec![0u8; READ_CHUNK];

    while !shared.stop.load(Ordering::Acquire) {
        let mut progress = false;

        // 1. Sever stormed agents.
        {
            let victims: Vec<u32> = shared.kick.lock().expect("kick lock").drain(..).collect();
            for victim in victims {
                for conn in conns.iter_mut().flatten() {
                    if conn.agent == Some(victim) && !conn.closed {
                        conn.closed = true;
                        shared.kicked.fetch_add(1, Ordering::Relaxed);
                        progress = true;
                    }
                }
            }
        }

        // 2. Route coordinator traffic to per-connection queues.
        while let Ok((monitor, frame)) = net_out_rx.try_recv() {
            route_frame(&mut conns, &route, shared, queue_cap, monitor, &frame);
            progress = true;
        }

        // 3. Accept new connections.
        loop {
            match listener.accept() {
                Ok(socket) => {
                    if socket.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let conn = Conn {
                        socket,
                        frames: FrameBuffer::new(max_frame),
                        agent: None,
                        monitors: Vec::new(),
                        outq: std::collections::VecDeque::new(),
                        wbuf: Vec::new(),
                        wpos: 0,
                        last_read: Instant::now(),
                        closed: false,
                    };
                    let slot = conns.iter().position(Option::is_none);
                    match slot {
                        Some(slot) => conns[slot] = Some(conn),
                        None => conns.push(Some(conn)),
                    }
                    shared.open.fetch_add(1, Ordering::AcqRel);
                    shared.connections_accepted.fetch_add(1, Ordering::Relaxed);
                    progress = true;
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }

        // 4. Read, reassemble, register/forward.
        let now = Instant::now();
        for (slot, entry) in conns.iter_mut().enumerate() {
            let Some(conn) = entry.as_mut() else {
                continue;
            };
            if conn.closed {
                continue;
            }
            loop {
                match conn.socket.read(&mut chunk) {
                    Ok(0) => {
                        conn.closed = true;
                        break;
                    }
                    Ok(k) => {
                        conn.frames.extend(&chunk[..k]);
                        conn.last_read = now;
                        progress = true;
                        if k < chunk.len() {
                            break; // kernel buffer drained
                        }
                    }
                    Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                    Err(err) if err.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.closed = true;
                        break;
                    }
                }
            }
            loop {
                let line = match conn.frames.next_frame() {
                    Ok(Some(line)) => line,
                    Ok(None) => break,
                    Err(_) => {
                        // Oversized frame: protocol violation, drop peer.
                        shared.malformed_frames.fetch_add(1, Ordering::Relaxed);
                        conn.closed = true;
                        break;
                    }
                };
                if conn.agent.is_none() {
                    // First line must be the hello.
                    let Ok(hello) = decode::<AgentHello>(&line) else {
                        shared.malformed_frames.fetch_add(1, Ordering::Relaxed);
                        conn.closed = true;
                        break;
                    };
                    conn.agent = Some(hello.agent);
                    for &monitor in &hello.monitors {
                        if let Some(entry) = route.get_mut(monitor as usize) {
                            // Later hellos win: a reconnecting agent's new
                            // socket takes over its monitors' routes.
                            *entry = Some(slot);
                            conn.monitors.push(monitor);
                            if !shared.seen[monitor as usize].swap(true, Ordering::AcqRel) {
                                shared.seen_count.fetch_add(1, Ordering::AcqRel);
                            }
                        }
                    }
                    let known = {
                        let mut agents = shared.agents.lock().expect("agents lock");
                        !agents.insert(hello.agent)
                    };
                    if known {
                        shared.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    // The welcome bypasses the cap: it must reach even a
                    // briefly-backlogged reconnecting peer.
                    conn.outq.push_front(welcome_line(0));
                } else {
                    // Post-hello: raw monitor frames, forwarded verbatim.
                    if to_coord.send(line).is_err() {
                        // Coordinator gone: only during teardown.
                        break;
                    }
                    shared.frames_in.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // 5. Batched writes with partial-write carry-over.
        for conn in conns.iter_mut().flatten() {
            if conn.closed {
                continue;
            }
            loop {
                if conn.wpos == conn.wbuf.len() {
                    conn.wbuf.clear();
                    conn.wpos = 0;
                    while conn.wbuf.len() < WRITE_BATCH {
                        let Some(frame) = conn.outq.pop_front() else {
                            break;
                        };
                        conn.wbuf.extend_from_slice(&frame);
                        shared.frames_out.fetch_add(1, Ordering::Relaxed);
                    }
                    if conn.wbuf.is_empty() {
                        break; // nothing to send
                    }
                }
                match conn.socket.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        conn.closed = true;
                        break;
                    }
                    Ok(k) => {
                        conn.wpos += k;
                        progress = true;
                    }
                    Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                    Err(err) if err.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.closed = true;
                        break;
                    }
                }
            }
        }

        // 6. Liveness: close half-open peers.
        if idle_timeout > Duration::ZERO {
            for conn in conns.iter_mut().flatten() {
                if !conn.closed && now.duration_since(conn.last_read) > idle_timeout {
                    conn.closed = true;
                    shared.idle_closed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // 7. Reap closed connections and their routes.
        for (slot, entry) in conns.iter_mut().enumerate() {
            let reap = entry.as_ref().is_some_and(|c| c.closed);
            if reap {
                let conn = entry.take().expect("checked");
                for monitor in conn.monitors {
                    if route[monitor as usize] == Some(slot) {
                        route[monitor as usize] = None;
                    }
                }
                shared.open.fetch_sub(1, Ordering::AcqRel);
                progress = true;
            }
        }

        // 8. Idle: park briefly on the outbound channel instead of
        // spinning; a routed frame wakes the loop immediately.
        if !progress {
            match net_out_rx.recv_timeout(Duration::from_millis(1)) {
                Ok((monitor, frame)) => {
                    route_frame(&mut conns, &route, shared, queue_cap, monitor, &frame);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }
    // Listener drop unlinks a Unix socket path.
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n: usize) -> TaskSpec {
        TaskSpec::builder(100.0 * n as f64)
            .monitors(n)
            .error_allowance(0.01)
            .build()
            .unwrap()
    }

    #[test]
    fn bounded_queue_backpressure_and_unrouted_drops() {
        use std::collections::VecDeque;

        // A real connected pair so the Conn has a live socket; no bytes
        // ever flow — this exercises the routing layer only.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();

        let shared = NetShared::new(2);
        let mut conns = vec![Some(Conn {
            socket: Socket::Tcp(server),
            frames: FrameBuffer::new(1024),
            agent: Some(0),
            monitors: vec![0],
            outq: VecDeque::new(),
            wbuf: Vec::new(),
            wpos: 0,
            last_read: Instant::now(),
            closed: false,
        })];
        let route = vec![Some(0usize), None];
        let frame = Bytes::from_static(b"{\"epoch\":0,\"msg\":\"Shutdown\"}\n");

        route_frame(&mut conns, &route, &shared, 2, 0, &frame);
        route_frame(&mut conns, &route, &shared, 2, 0, &frame);
        // Cap reached: the third frame must be dropped, not queued.
        route_frame(&mut conns, &route, &shared, 2, 0, &frame);
        assert_eq!(shared.stats().backpressure_drops, 1);
        assert_eq!(shared.stats().max_queue_depth, 2);
        assert_eq!(conns[0].as_ref().unwrap().outq.len(), 2);

        // Monitor 1 has no live connection: the frame is dropped and
        // counted, never buffered.
        route_frame(&mut conns, &route, &shared, 2, 1, &frame);
        assert_eq!(shared.stats().unrouted_drops, 1);
    }

    #[test]
    fn bind_on_port_zero_reports_local_addr() {
        let coordinator =
            NetCoordinator::bind(spec(2), &NetAddr::Tcp("127.0.0.1:0".into())).unwrap();
        let addr = coordinator.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
    }

    #[test]
    fn bind_failure_is_invalid_config() {
        let err = NetCoordinator::bind(spec(1), &NetAddr::Tcp("definitely-not-an-addr".into()))
            .unwrap_err();
        assert!(matches!(
            err,
            VolleyError::InvalidConfig {
                parameter: "net",
                ..
            }
        ));
    }

    #[test]
    fn run_without_fleet_times_out() {
        let coordinator = NetCoordinator::bind(spec(1), &NetAddr::Tcp("127.0.0.1:0".into()))
            .unwrap()
            .with_wait_timeout(Duration::from_millis(50));
        let err = coordinator.run(&[vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(
            err,
            VolleyError::InvalidConfig {
                parameter: "net",
                ..
            }
        ));
    }

    #[test]
    fn trace_count_mismatch_is_rejected() {
        let coordinator =
            NetCoordinator::bind(spec(2), &NetAddr::Tcp("127.0.0.1:0".into())).unwrap();
        let err = coordinator.run(&[vec![1.0]]).unwrap_err();
        assert!(matches!(
            err,
            VolleyError::ValueCountMismatch {
                got: 1,
                expected: 2
            }
        ));
    }
}
