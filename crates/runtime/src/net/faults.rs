//! Socket-level fault injection: reconnect storms for `chaos --net`.
//!
//! The in-process [`volley_core::failure::FaultPlan`] perturbs *frames*
//! (drop/dup/delay). A networked deployment has a failure mode frames
//! can't express: whole connections dying and re-dialing. [`NetFaultPlan`]
//! schedules those — at storm ticks the event loop force-closes the
//! chosen agents' sockets, and the agents' own backoff/re-handshake
//! machinery has to win the race against the tick deadline.
//!
//! Victim selection is a pure hash of `(seed, tick, agent)`, so a storm
//! schedule is reproducible across runs and across processes without any
//! shared RNG state.

/// Deterministic schedule of connection-level faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaultPlan {
    seed: u64,
    /// A storm fires at every tick `t` with `t % storm_every ==
    /// storm_every - 1`; `0` disables storms.
    storm_every: u64,
    /// Fraction of agents whose connection is severed at each storm tick.
    storm_fraction: f64,
}

impl NetFaultPlan {
    /// A plan with no faults scheduled.
    pub fn new(seed: u64) -> Self {
        NetFaultPlan {
            seed,
            storm_every: 0,
            storm_fraction: 0.0,
        }
    }

    /// Schedules a reconnect storm every `every` ticks severing roughly
    /// `fraction` of agent connections (clamped to `[0, 1]`).
    pub fn with_storm(mut self, every: u64, fraction: f64) -> Self {
        self.storm_every = every;
        self.storm_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Whether this plan ever injects anything.
    pub fn is_active(&self) -> bool {
        self.storm_every > 0 && self.storm_fraction > 0.0
    }

    /// Whether a storm fires at `tick`.
    pub fn storm_at(&self, tick: u64) -> bool {
        self.storm_every > 0 && tick % self.storm_every == self.storm_every - 1
    }

    /// Whether `agent`'s connection is severed by the storm at `tick`.
    /// Always `false` when no storm fires at `tick`.
    pub fn severs(&self, tick: u64, agent: u32) -> bool {
        if !self.storm_at(tick) || self.storm_fraction <= 0.0 {
            return false;
        }
        let h = mix(self.seed ^ mix(tick) ^ mix(u64::from(agent) << 32 | 0x9e37));
        // Map the top 53 bits to [0, 1): uniform enough for storm sizing.
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.storm_fraction
    }
}

/// splitmix64 finalizer — the same mixer the bench harness uses for
/// deterministic trace synthesis.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_never_severs() {
        let plan = NetFaultPlan::new(42);
        assert!(!plan.is_active());
        for tick in 0..100 {
            for agent in 0..8 {
                assert!(!plan.severs(tick, agent));
            }
        }
    }

    #[test]
    fn storms_fire_on_schedule() {
        let plan = NetFaultPlan::new(1).with_storm(10, 1.0);
        assert!(plan.is_active());
        assert!(plan.storm_at(9));
        assert!(plan.storm_at(19));
        assert!(!plan.storm_at(10));
        // fraction 1.0 severs everyone at storm ticks.
        assert!(plan.severs(9, 0));
        assert!(plan.severs(9, 7));
        assert!(!plan.severs(8, 0));
    }

    #[test]
    fn fraction_selects_roughly_that_share() {
        let plan = NetFaultPlan::new(7).with_storm(1, 0.25);
        let mut severed = 0u32;
        let total = 200 * 50;
        for tick in 0..200 {
            for agent in 0..50 {
                if plan.severs(tick, agent) {
                    severed += 1;
                }
            }
        }
        let share = f64::from(severed) / f64::from(total);
        assert!(
            (0.18..0.32).contains(&share),
            "expected ~25% severed, got {share:.3}"
        );
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = NetFaultPlan::new(3).with_storm(5, 0.5);
        let b = NetFaultPlan::new(3).with_storm(5, 0.5);
        for tick in 0..50 {
            for agent in 0..10 {
                assert_eq!(a.severs(tick, agent), b.severs(tick, agent));
            }
        }
        // Different seeds pick different victims somewhere.
        let c = NetFaultPlan::new(4).with_storm(5, 0.5);
        let differs = (0..50).any(|t| (0..10).any(|ag| a.severs(t, ag) != c.severs(t, ag)));
        assert!(differs);
    }
}
