//! The agent process: hosts a slice of monitors behind one socket.
//!
//! An agent owns a contiguous range of the task's monitors and speaks
//! the [`super::wire`] protocol to the coordinator: it dials, sends an
//! [`AgentHello`](super::wire::AgentHello), then loops decoding
//! [`ServerFrame`](super::wire::ServerFrame)s and feeding each wrapped
//! control frame to the addressed [`MonitorActor`] — exactly the code
//! path the in-process runner drives through channels, which is what
//! makes report parity possible.
//!
//! Robustness lives here too: when the connection dies (coordinator
//! restart, injected storm, plain TCP reset) the agent re-dials with
//! jittered exponential backoff and re-handshakes — the hello carries
//! the hosted monitor set, and a `Revived` frame per live monitor tells
//! the coordinator's quarantine machinery to await them again. Jitter is
//! a deterministic hash of `(agent, attempt)`, so a storm of N agents
//! de-synchronizes without any of them sharing state.

use std::io::{Read, Write};
use std::ops::Range;
use std::thread;
use std::time::Duration;

use serde::Serialize;

use volley_core::task::{MonitorId, TaskSpec};
use volley_core::{AdaptiveSampler, VolleyError};

use crate::message::{encode, MonitorFrame, MonitorToCoordinator};
use crate::monitor::MonitorActor;
use crate::transport::TransportConfig;

use super::codec::FrameBuffer;
use super::server::NetAddr;
use super::wire::{AgentHello, ServerFrame};

/// Reconnect backoff policy: exponential from `base` to `cap`, with
/// deterministic per-agent jitter in `[0.5, 1.0]` of the nominal delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// First-retry delay.
    pub base: Duration,
    /// Ceiling for the exponential delay (pre-jitter).
    pub cap: Duration,
    /// Consecutive failed dials tolerated per outage before giving up.
    pub max_retries_per_outage: u32,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            max_retries_per_outage: 40,
        }
    }
}

/// Everything an agent process needs to run its monitor slice.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Fleet-unique agent id (jitter seed and fault-injection target).
    pub agent: u32,
    /// Where the coordinator listens.
    pub addr: NetAddr,
    /// The full task spec — must be identical to the coordinator's, so
    /// that sampler construction matches the in-process runner exactly.
    pub spec: TaskSpec,
    /// The slice of `spec` monitors this agent hosts (end-exclusive
    /// indexes into [`TaskSpec::monitors`]).
    pub monitors: Range<u32>,
    /// Frame cap and socket timeouts.
    pub transport: TransportConfig,
    /// Reconnect policy.
    pub backoff: BackoffConfig,
}

/// What an agent did over its lifetime, for reporting and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct AgentReport {
    /// The agent id.
    pub agent: u32,
    /// Monitors hosted.
    pub monitors: u32,
    /// Monitor frames written to the coordinator (hellos excluded).
    pub frames_sent: u64,
    /// Server frames decoded off the socket.
    pub frames_received: u64,
    /// Successful re-dials after losing an established connection.
    pub reconnects: u64,
}

/// Runs an agent to completion: connects, serves its monitors until
/// every one of them has been shut down by the coordinator, reconnecting
/// through connection loss along the way.
///
/// # Errors
///
/// [`VolleyError::InvalidConfig`] when the monitor range is out of
/// bounds or empty, or when an outage outlasts
/// [`BackoffConfig::max_retries_per_outage`].
pub fn run_agent(config: &AgentConfig) -> Result<AgentReport, VolleyError> {
    let specs = config.spec.monitors();
    let n = specs.len();
    if config.monitors.start >= config.monitors.end || config.monitors.end as usize > n {
        return Err(VolleyError::InvalidConfig {
            parameter: "net",
            reason: format!(
                "agent {} monitor range {:?} out of bounds for {n} monitors",
                config.agent, config.monitors
            ),
        });
    }

    // Build the hosted actors with the runner's exact sampler recipe, so
    // a fault-free networked run is sample-for-sample identical.
    let global_err = config.spec.adaptation().error_allowance();
    let mut actors: Vec<(MonitorActor, bool)> = Vec::new();
    for m in config.monitors.clone() {
        let spec = &specs[m as usize];
        let mut sampler = AdaptiveSampler::new(*config.spec.adaptation(), spec.local_threshold);
        sampler.set_error_allowance(global_err / n as f64);
        actors.push((MonitorActor::new(spec.id, sampler), true));
    }

    let mut report = AgentReport {
        agent: config.agent,
        monitors: config.monitors.end - config.monitors.start,
        ..AgentReport::default()
    };
    let mut ever_connected = false;
    let mut attempt_total: u64 = 0;

    'outer: loop {
        // --- dial, with jittered exponential backoff per outage ---
        let mut socket = {
            let mut retries = 0u32;
            loop {
                match config.addr.connect() {
                    Ok(sock) => break sock,
                    Err(err) => {
                        retries += 1;
                        attempt_total += 1;
                        if retries > config.backoff.max_retries_per_outage {
                            return Err(VolleyError::InvalidConfig {
                                parameter: "net",
                                reason: format!(
                                    "agent {}: gave up dialing {} after {retries} attempts: {err}",
                                    config.agent, config.addr
                                ),
                            });
                        }
                        thread::sleep(backoff_delay(
                            &config.backoff,
                            config.agent,
                            attempt_total,
                            retries,
                        ));
                    }
                }
            }
        };
        socket
            .set_read_timeout(config.transport.read_timeout)
            .and_then(|()| socket.set_write_timeout(config.transport.write_timeout))
            .map_err(|e| net_err(config.agent, "configuring socket", &e))?;
        if ever_connected {
            report.reconnects += 1;
        }
        ever_connected = true;

        // --- handshake: hello + Revived per live monitor ---
        let epoch = actors
            .iter()
            .map(|(actor, _)| actor.epoch())
            .max()
            .unwrap_or(0);
        let hello = AgentHello {
            agent: config.agent,
            monitors: actors.iter().map(|(actor, _)| actor.id().0).collect(),
            epoch,
        };
        let mut wbuf: Vec<u8> = encode(&hello).to_vec();
        let mut revived = 0u64;
        for (actor, alive) in &actors {
            if *alive {
                wbuf.extend_from_slice(&MonitorFrame::seal(
                    actor.epoch(),
                    MonitorToCoordinator::Revived {
                        monitor: actor.id(),
                    },
                ));
                revived += 1;
            }
        }
        if socket.write_all(&wbuf).is_err() {
            continue 'outer; // dial again; the listener may not be up yet
        }
        report.frames_sent += revived;
        wbuf.clear();

        // --- serve until shutdown or disconnect ---
        let mut frames = FrameBuffer::new(config.transport.max_frame_size);
        let mut chunk = [0u8; 16 * 1024];
        loop {
            // Drain every complete frame before touching the socket again.
            loop {
                let line = match frames.next_frame() {
                    Ok(Some(line)) => line,
                    Ok(None) => break,
                    // Oversized/garbled server frame: drop the connection
                    // and re-handshake on a clean buffer.
                    Err(_) => continue 'outer,
                };
                let frame: ServerFrame = match crate::message::decode(&line) {
                    Ok(frame) => frame,
                    Err(_) => continue 'outer,
                };
                report.frames_received += 1;
                let (to, control) = match frame {
                    ServerFrame::Welcome { .. } => continue,
                    ServerFrame::Ctl { to, frame } => (to, frame),
                };
                let Some(slot) = actors
                    .iter_mut()
                    .find(|(actor, _)| actor.id() == MonitorId(to))
                else {
                    continue; // misrouted: not ours, ignore
                };
                if !slot.1 {
                    continue; // already shut down
                }
                let (reply, terminate) = slot.0.handle_frame(control);
                if let Some(msg) = reply {
                    wbuf.extend_from_slice(&encode(&msg));
                    report.frames_sent += 1;
                }
                if terminate {
                    slot.1 = false;
                }
            }
            if !wbuf.is_empty() {
                if socket.write_all(&wbuf).is_err() {
                    continue 'outer;
                }
                wbuf.clear();
            }
            if actors.iter().all(|(_, alive)| !alive) {
                return Ok(report); // every monitor shut down cleanly
            }
            match socket.read(&mut chunk) {
                Ok(0) => continue 'outer, // peer closed: reconnect
                Ok(k) => frames.extend(&chunk[..k]),
                Err(err) => match err.kind() {
                    std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::Interrupted => {}
                    _ => continue 'outer,
                },
            }
        }
    }
}

/// Exponential backoff with deterministic jitter in `[0.5, 1.0]`.
fn backoff_delay(cfg: &BackoffConfig, agent: u32, attempt_total: u64, retries: u32) -> Duration {
    let exp = retries.saturating_sub(1).min(20);
    let nominal = cfg.base.saturating_mul(1u32 << exp.min(16)).min(cfg.cap);
    let h = mix(u64::from(agent) << 32 ^ attempt_total ^ 0x5bd1_e995);
    let jitter = 0.5 + ((h >> 11) as f64 / (1u64 << 53) as f64) * 0.5;
    nominal.mul_f64(jitter)
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn net_err(agent: u32, action: &str, err: &std::io::Error) -> VolleyError {
    VolleyError::InvalidConfig {
        parameter: "net",
        reason: format!("agent {agent}: {action}: {err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = BackoffConfig {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            max_retries_per_outage: 10,
        };
        let d1 = backoff_delay(&cfg, 0, 1, 1);
        let d5 = backoff_delay(&cfg, 0, 5, 5);
        assert!(d1 >= Duration::from_millis(5) && d1 <= Duration::from_millis(10));
        // 10ms * 2^4 = 160ms nominal, jittered down to >= 80ms.
        assert!(d5 >= Duration::from_millis(80) && d5 <= Duration::from_millis(200));
        let d9 = backoff_delay(&cfg, 0, 9, 9);
        assert!(d9 <= Duration::from_millis(200), "cap respected: {d9:?}");
    }

    #[test]
    fn jitter_differs_across_agents() {
        let cfg = BackoffConfig::default();
        let delays: Vec<Duration> = (0..8).map(|a| backoff_delay(&cfg, a, 3, 3)).collect();
        let distinct: std::collections::HashSet<Duration> = delays.iter().copied().collect();
        assert!(
            distinct.len() > 1,
            "agents must not thundering-herd: {delays:?}"
        );
    }

    #[test]
    fn bad_monitor_range_is_rejected() {
        let spec = TaskSpec::builder(100.0)
            .monitors(2)
            .error_allowance(0.01)
            .build()
            .unwrap();
        let config = AgentConfig {
            agent: 0,
            addr: NetAddr::Tcp("127.0.0.1:1".into()),
            spec,
            monitors: 0..5,
            transport: TransportConfig::default(),
            backoff: BackoffConfig::default(),
        };
        assert!(matches!(
            run_agent(&config),
            Err(VolleyError::InvalidConfig {
                parameter: "net",
                ..
            })
        ));
    }
}
