//! Incremental frame reassembly for nonblocking sockets.
//!
//! [`crate::transport::read_frame_limited`] assumes a blocking
//! [`std::io::BufRead`]: it can park until a full line arrives. A
//! nonblocking event loop cannot — reads return whatever bytes the
//! kernel has, cut at arbitrary boundaries, so frames must be
//! reassembled across reads. [`FrameBuffer`] does exactly that: feed it
//! raw chunks with [`extend`](FrameBuffer::extend), pop complete frames
//! with [`next_frame`](FrameBuffer::next_frame).
//!
//! The size-cap semantics match `read_frame_limited` bit for bit: a
//! frame whose payload (excluding the terminating newline) exceeds the
//! cap is an error — detected as soon as the buffered bytes prove it,
//! without waiting for a newline a hostile peer may never send.

use bytes::Bytes;

use volley_core::VolleyError;

/// Reassembles newline-delimited frames from arbitrarily-split reads.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Start of the unconsumed region in `buf`.
    start: usize,
    /// Scan cursor: everything in `buf[start..scanned]` is known to be
    /// newline-free, so repeated polls never rescan the same bytes.
    scanned: usize,
    max_frame: usize,
}

impl FrameBuffer {
    /// Creates a buffer enforcing `max_frame` as the payload cap
    /// (excluding the terminating newline, matching
    /// [`crate::transport::read_frame_limited`]).
    pub fn new(max_frame: usize) -> Self {
        FrameBuffer {
            buf: Vec::new(),
            start: 0,
            scanned: 0,
            max_frame,
        }
    }

    /// Appends raw bytes read off the wire.
    pub fn extend(&mut self, data: &[u8]) {
        // Compact consumed prefix before growing, so the buffer's size is
        // bounded by pending data, not by connection lifetime.
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.scanned -= self.start;
            self.start = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Pops the next complete frame (terminating newline included, like
    /// [`crate::message::encode`] output), `Ok(None)` when more bytes
    /// are needed.
    ///
    /// # Errors
    ///
    /// [`VolleyError::FrameTooLarge`] once the current frame provably
    /// exceeds the cap — whether or not its newline has arrived. The
    /// buffer is poisoned after an error; the connection should be
    /// closed, exactly as the blocking reader's callers do.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, VolleyError> {
        match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            Some(offset) => {
                let newline = self.scanned + offset;
                let payload = newline - self.start;
                if payload > self.max_frame {
                    return Err(VolleyError::FrameTooLarge {
                        size: payload,
                        max_size: self.max_frame,
                    });
                }
                let frame = Bytes::copy_from_slice(&self.buf[self.start..=newline]);
                self.start = newline + 1;
                self.scanned = self.start;
                Ok(Some(frame))
            }
            None => {
                self.scanned = self.buf.len();
                let pending = self.buf.len() - self.start;
                if pending > self.max_frame {
                    return Err(VolleyError::FrameTooLarge {
                        size: pending,
                        max_size: self.max_frame,
                    });
                }
                Ok(None)
            }
        }
    }

    /// Bytes buffered but not yet returned as a frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_frame_in_one_chunk() {
        let mut fb = FrameBuffer::new(64);
        fb.extend(b"{\"a\":1}\n");
        assert_eq!(&*fb.next_frame().unwrap().unwrap(), b"{\"a\":1}\n");
        assert!(fb.next_frame().unwrap().is_none());
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn frame_split_across_chunks() {
        let mut fb = FrameBuffer::new(64);
        fb.extend(b"{\"a\"");
        assert!(fb.next_frame().unwrap().is_none());
        fb.extend(b":1}");
        assert!(fb.next_frame().unwrap().is_none());
        assert_eq!(fb.pending(), 7);
        fb.extend(b"\n{\"b\":2}\n");
        assert_eq!(&*fb.next_frame().unwrap().unwrap(), b"{\"a\":1}\n");
        assert_eq!(&*fb.next_frame().unwrap().unwrap(), b"{\"b\":2}\n");
        assert!(fb.next_frame().unwrap().is_none());
    }

    #[test]
    fn many_frames_in_one_chunk() {
        let mut fb = FrameBuffer::new(8);
        fb.extend(b"a\nbb\nccc\n");
        assert_eq!(&*fb.next_frame().unwrap().unwrap(), b"a\n");
        assert_eq!(&*fb.next_frame().unwrap().unwrap(), b"bb\n");
        assert_eq!(&*fb.next_frame().unwrap().unwrap(), b"ccc\n");
        assert!(fb.next_frame().unwrap().is_none());
    }

    #[test]
    fn payload_exactly_at_cap_is_accepted() {
        let mut fb = FrameBuffer::new(4);
        fb.extend(b"xxxx\n");
        assert_eq!(&*fb.next_frame().unwrap().unwrap(), b"xxxx\n");
    }

    #[test]
    fn oversized_payload_with_newline_errors() {
        let mut fb = FrameBuffer::new(4);
        fb.extend(b"xxxxx\n");
        let err = fb.next_frame().unwrap_err();
        assert!(matches!(
            err,
            VolleyError::FrameTooLarge {
                size: 5,
                max_size: 4
            }
        ));
    }

    #[test]
    fn oversized_payload_without_newline_errors_early() {
        // A peer streaming garbage with no newline must not buffer
        // unboundedly: the cap trips as soon as pending bytes exceed it.
        let mut fb = FrameBuffer::new(4);
        fb.extend(b"xxx");
        assert!(fb.next_frame().unwrap().is_none());
        fb.extend(b"xx");
        assert!(matches!(
            fb.next_frame().unwrap_err(),
            VolleyError::FrameTooLarge {
                size: 5,
                max_size: 4
            }
        ));
    }

    #[test]
    fn empty_frame_is_just_a_newline() {
        let mut fb = FrameBuffer::new(4);
        fb.extend(b"\n");
        assert_eq!(&*fb.next_frame().unwrap().unwrap(), b"\n");
    }

    #[test]
    fn byte_at_a_time_reassembly() {
        let wire = b"{\"tick\":12}\n{\"tick\":13}\n";
        let mut fb = FrameBuffer::new(64);
        let mut frames = Vec::new();
        for &b in wire.iter() {
            fb.extend(&[b]);
            while let Some(frame) = fb.next_frame().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(&*frames[0], b"{\"tick\":12}\n");
        assert_eq!(&*frames[1], b"{\"tick\":13}\n");
    }
}
