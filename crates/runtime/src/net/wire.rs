//! Socket-level envelope messages for the agent/coordinator deployment.
//!
//! The in-process protocol ([`crate::message`]) is monitor-addressed: the
//! coordinator holds one [`crate::link::MonitorLink`] per monitor and
//! never names the peer inside the frame. A socket carries traffic for
//! *many* monitors (an agent multiplexes a contiguous range of them), so
//! the network layer adds the thinnest possible addressing shim:
//!
//! - **agent → coordinator**: the first line on a fresh connection is an
//!   [`AgentHello`] declaring which monitors live behind the socket.
//!   Every subsequent line is a raw [`crate::message::MonitorFrame`],
//!   forwarded to the coordinator actor byte-for-byte — the frames
//!   already carry their `monitor` id, so no re-encoding happens on the
//!   hot path.
//! - **coordinator → agent**: every line is a [`ServerFrame`] — either a
//!   [`ServerFrame::Welcome`] answering a hello with the current epoch,
//!   or a [`ServerFrame::Ctl`] wrapping one control frame with the
//!   destination monitor id.
//!
//! [`ctl_line`] builds the `Ctl` envelope by textual splice around the
//! already-encoded control frame instead of decode → wrap → re-encode;
//! a unit test pins the splice to the derive-generated encoding so any
//! format drift fails loudly.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::message::ControlFrame;

/// First frame an agent sends on every (re)connection: which monitors it
/// hosts, and the highest epoch its actors have observed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentHello {
    /// Fleet-unique agent id (used for fault targeting and stats; not an
    /// authorization boundary).
    pub agent: u32,
    /// Monitor ids hosted behind this connection. On reconnect the new
    /// connection's routes override any stale ones for the same ids.
    pub monitors: Vec<u32>,
    /// Highest epoch the agent's monitors have observed; the coordinator
    /// answers with its own epoch in [`ServerFrame::Welcome`].
    pub epoch: u64,
}

/// Frames the coordinator writes to an agent socket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerFrame {
    /// Acknowledges an [`AgentHello`], carrying the coordinator's epoch
    /// so a reconnecting agent can fence itself forward immediately.
    Welcome {
        /// The coordinator's current epoch.
        epoch: u64,
    },
    /// One control frame addressed to one hosted monitor.
    Ctl {
        /// Destination monitor id.
        to: u32,
        /// The epoch-stamped control frame, verbatim.
        frame: ControlFrame,
    },
}

/// Encodes a [`ServerFrame::Welcome`] line.
pub fn welcome_line(epoch: u64) -> Bytes {
    crate::message::encode(&ServerFrame::Welcome { epoch })
}

/// Wraps an already-encoded control frame into a [`ServerFrame::Ctl`]
/// line without re-encoding it: the coordinator's outbound hot path
/// splices `{"Ctl":{"to":N,"frame":` + the control frame's JSON + `}}`.
///
/// `control` must be [`crate::message::encode`] output (newline
/// terminated); the trailing newline is stripped before splicing.
pub fn ctl_line(to: u32, control: &Bytes) -> Bytes {
    let body = match control.last() {
        Some(b'\n') => &control[..control.len() - 1],
        _ => &control[..],
    };
    let mut out = Vec::with_capacity(body.len() + 32);
    out.extend_from_slice(b"{\"Ctl\":{\"to\":");
    out.extend_from_slice(to.to_string().as_bytes());
    out.extend_from_slice(b",\"frame\":");
    out.extend_from_slice(body);
    out.extend_from_slice(b"}}\n");
    Bytes::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{decode, encode, ControlFrame, CoordinatorToMonitor, TickData};

    #[test]
    fn hello_round_trips() {
        let hello = AgentHello {
            agent: 7,
            monitors: vec![14, 15, 16],
            epoch: 3,
        };
        let bytes = encode(&hello);
        let back: AgentHello = decode(&bytes).unwrap();
        assert_eq!(back, hello);
    }

    #[test]
    fn welcome_round_trips() {
        let back: ServerFrame = decode(&welcome_line(9)).unwrap();
        assert_eq!(back, ServerFrame::Welcome { epoch: 9 });
    }

    #[test]
    fn ctl_splice_matches_derived_encoding() {
        // The splice must be byte-identical to encoding the enum the slow
        // way, for every control message shape that crosses the wire.
        let seal = |epoch, msg| ControlFrame { epoch, msg };
        let frames = vec![
            seal(
                0,
                CoordinatorToMonitor::Tick(TickData {
                    tick: 42,
                    value: 17.5,
                }),
            ),
            seal(2, CoordinatorToMonitor::Poll { tick: 7 }),
            seal(1, CoordinatorToMonitor::SetAllowance { err: 0.0125 }),
            seal(5, CoordinatorToMonitor::NewEpoch { epoch: 6 }),
            seal(0, CoordinatorToMonitor::RequestReport),
            seal(0, CoordinatorToMonitor::Shutdown),
        ];
        for frame in frames {
            let control = encode(&frame);
            let spliced = ctl_line(31, &control);
            let derived = encode(&ServerFrame::Ctl { to: 31, frame });
            assert_eq!(spliced, derived, "splice drifted from derive for {frame:?}");
            // And the result decodes back to the same control frame.
            match decode::<ServerFrame>(&spliced).unwrap() {
                ServerFrame::Ctl { to, frame: back } => {
                    assert_eq!(to, 31);
                    assert_eq!(back, frame);
                }
                other => panic!("expected Ctl, got {other:?}"),
            }
        }
    }

    #[test]
    fn ctl_splice_tolerates_missing_newline() {
        let frame = ControlFrame {
            epoch: 0,
            msg: CoordinatorToMonitor::Poll { tick: 1 },
        };
        let encoded = encode(&frame);
        let trimmed = Bytes::copy_from_slice(&encoded[..encoded.len() - 1]);
        assert_eq!(ctl_line(2, &encoded), ctl_line(2, &trimmed));
    }
}
