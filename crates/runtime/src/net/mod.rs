//! Networked deployment: agents and a socket-serving coordinator.
//!
//! Everything the in-process runner proves about the protocol — epoch
//! fencing, tick deadlines, quarantine/degraded aggregation — carries
//! over unchanged, because the same actors run on both sides; this
//! module only replaces the channel transport with sockets:
//!
//! - [`NetCoordinator`] binds a TCP or Unix listener and drives the task
//!   over a fleet of connected agents with a nonblocking event loop
//!   (bounded per-connection queues, batched writes, idle reaping).
//! - [`run_agent`] hosts a slice of the task's monitors behind one
//!   socket, reconnecting with jittered exponential backoff and the
//!   `Revived` re-handshake when the connection dies.
//! - [`NetFaultPlan`] injects connection-level faults (reconnect
//!   storms) for `volley chaos --net`.
//!
//! See `DESIGN.md` §14 for the wire format and connection state machine.

mod agent;
mod codec;
mod faults;
mod server;
mod wire;

pub use agent::{run_agent, AgentConfig, AgentReport, BackoffConfig};
pub use codec::FrameBuffer;
pub use faults::NetFaultPlan;
pub use server::{NetAddr, NetCoordinator, NetRunOutcome, NetStats};
pub use wire::{ctl_line, welcome_line, AgentHello, ServerFrame};
