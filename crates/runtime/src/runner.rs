//! The task runner: spawns the actor threads and drives simulated time.

use bytes::Bytes;
use crossbeam::channel::unbounded;

use volley_core::allocation::{AllocationConfig, ErrorAllocator};
use volley_core::coordinator::CoordinationScheme;
use volley_core::task::TaskSpec;
use volley_core::time::Tick;
use volley_core::{AdaptiveSampler, VolleyError};

use crate::coordinator::CoordinatorActor;
use crate::failure::FailureInjector;
use crate::message::{decode, encode, CoordinatorToMonitor, TickData, TickSummary};
use crate::monitor::MonitorActor;

/// Aggregate result of a threaded task run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RuntimeReport {
    /// Ticks processed.
    pub ticks: u64,
    /// Scheduled sampling operations across all monitors.
    pub scheduled_samples: u64,
    /// Forced (global-poll) sampling operations.
    pub poll_samples: u64,
    /// Global polls run.
    pub polls: u64,
    /// State alerts raised.
    pub alerts: u64,
    /// Local violation reports that reached the coordinator.
    pub local_violation_reports: u64,
    /// Ticks at which alerts were raised.
    pub alert_ticks: Vec<Tick>,
    /// Total sampling operations (scheduled + forced).
    pub total_samples: u64,
}

impl RuntimeReport {
    /// Sampling-cost ratio versus periodic default-interval sampling on
    /// the same monitor count (1.0 before any tick).
    pub fn cost_ratio(&self, monitors: usize) -> f64 {
        let baseline = self.ticks * monitors as u64;
        if baseline == 0 {
            1.0
        } else {
            self.total_samples as f64 / baseline as f64
        }
    }
}

/// Spawns and drives a distributed monitoring task on real threads.
///
/// See the [crate docs](crate) for the tick protocol.
#[derive(Debug)]
pub struct TaskRunner {
    spec: TaskSpec,
    scheme: CoordinationScheme,
    allocation: AllocationConfig,
    failure: FailureInjector,
}

impl TaskRunner {
    /// Creates a runner for `spec` with adaptive allowance allocation, the
    /// default allocation configuration and a lossless report path.
    ///
    /// # Errors
    ///
    /// Returns [`VolleyError::EmptyTask`] for a spec without monitors.
    pub fn new(spec: &TaskSpec) -> Result<Self, VolleyError> {
        if spec.monitors().is_empty() {
            return Err(VolleyError::EmptyTask);
        }
        Ok(TaskRunner {
            spec: spec.clone(),
            scheme: CoordinationScheme::Adaptive,
            allocation: AllocationConfig::default(),
            failure: FailureInjector::lossless(),
        })
    }

    /// Selects the allowance-allocation scheme (default adaptive).
    #[must_use]
    pub fn with_scheme(mut self, scheme: CoordinationScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Overrides the allocation configuration.
    #[must_use]
    pub fn with_allocation(mut self, allocation: AllocationConfig) -> Self {
        self.allocation = allocation;
        self
    }

    /// Injects message loss on the violation-report path.
    #[must_use]
    pub fn with_failure(mut self, failure: FailureInjector) -> Self {
        self.failure = failure;
        self
    }

    /// Runs the task over the per-monitor ground-truth `traces`
    /// (`traces[i][t]` = monitor *i*'s value at tick *t*), spawning one
    /// thread per monitor plus one for the coordinator, and blocks until
    /// the shortest trace is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`VolleyError::ValueCountMismatch`] when the trace count
    /// differs from the monitor count.
    pub fn run(&self, traces: &[Vec<f64>]) -> Result<RuntimeReport, VolleyError> {
        let n = self.spec.monitors().len();
        if traces.len() != n {
            return Err(VolleyError::ValueCountMismatch {
                got: traces.len(),
                expected: n,
            });
        }
        let ticks = traces.iter().map(|t| t.len()).min().unwrap_or(0) as u64;

        // Wiring: runner/coordinator → monitor inboxes; monitors → shared
        // coordinator channel; coordinator → runner summaries.
        let (to_coord_tx, to_coord_rx) = unbounded::<Bytes>();
        let (summary_tx, summary_rx) = unbounded::<Bytes>();
        let mut monitor_txs = Vec::with_capacity(n);
        let mut monitor_handles = Vec::with_capacity(n);
        let global_err = self.spec.adaptation().error_allowance();
        for m in self.spec.monitors() {
            let (tx, rx) = unbounded::<Bytes>();
            monitor_txs.push(tx);
            let mut sampler = AdaptiveSampler::new(*self.spec.adaptation(), m.local_threshold);
            sampler.set_error_allowance(global_err / n as f64);
            let actor = MonitorActor::new(m.id, sampler);
            let outbox = to_coord_tx.clone();
            monitor_handles.push(std::thread::spawn(move || actor.run(rx, outbox)));
        }
        drop(to_coord_tx); // coordinator sees disconnect once monitors exit

        let allocator = ErrorAllocator::new(self.allocation, global_err, n)?;
        let coordinator = CoordinatorActor::new(
            self.spec.global_threshold(),
            n,
            allocator,
            self.spec.adaptation().slack_ratio(),
            self.scheme == CoordinationScheme::Adaptive,
            self.failure.clone(),
        );
        let coord_monitor_txs = monitor_txs.clone();
        let coord_handle =
            std::thread::spawn(move || coordinator.run(to_coord_rx, coord_monitor_txs, summary_tx));

        // Drive ticks in lock-step.
        let mut report = RuntimeReport::default();
        for tick in 0..ticks {
            for (i, tx) in monitor_txs.iter().enumerate() {
                let data = TickData {
                    tick,
                    value: traces[i][tick as usize],
                };
                tx.send(encode(&CoordinatorToMonitor::Tick(data)))
                    .expect("monitor thread alive during run");
            }
            let frame = summary_rx.recv().expect("coordinator alive during run");
            let summary: TickSummary = decode(&frame).expect("well-formed summary");
            report.ticks += 1;
            report.scheduled_samples += u64::from(summary.scheduled_samples);
            report.poll_samples += u64::from(summary.poll_samples);
            report.local_violation_reports += u64::from(summary.local_violations);
            if summary.polled {
                report.polls += 1;
            }
            if summary.alerted {
                report.alerts += 1;
                report.alert_ticks.push(summary.tick);
            }
        }
        report.total_samples = report.scheduled_samples + report.poll_samples;

        // Teardown: stop monitors; the coordinator exits on disconnect.
        for tx in &monitor_txs {
            let _ = tx.send(encode(&CoordinatorToMonitor::Shutdown));
        }
        for handle in monitor_handles {
            handle.join().expect("monitor thread exits cleanly");
        }
        drop(monitor_txs);
        coord_handle
            .join()
            .expect("coordinator thread exits cleanly");
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(monitors: usize, threshold: f64, err: f64) -> TaskSpec {
        TaskSpec::builder(threshold)
            .monitors(monitors)
            .error_allowance(err)
            .max_interval(8)
            .patience(3)
            .warmup_samples(3)
            .build()
            .unwrap()
    }

    #[test]
    fn quiet_run_has_no_alerts_and_saves_cost() {
        let spec = spec(3, 1000.0, 0.05);
        let traces = vec![vec![5.0; 800], vec![10.0; 800], vec![20.0; 800]];
        let report = TaskRunner::new(&spec).unwrap().run(&traces).unwrap();
        assert_eq!(report.ticks, 800);
        assert_eq!(report.alerts, 0);
        assert_eq!(report.polls, 0);
        assert!(
            report.cost_ratio(3) < 0.7,
            "cost ratio {}",
            report.cost_ratio(3)
        );
    }

    #[test]
    fn global_violation_is_detected() {
        let spec = spec(2, 100.0, 0.01);
        let mut a = vec![10.0; 300];
        let mut b = vec![10.0; 300];
        a[250] = 80.0; // local threshold 50 exceeded
        b[250] = 70.0; // sum 150 > 100
        let report = TaskRunner::new(&spec)
            .unwrap()
            .run([a, b].as_ref())
            .unwrap();
        // Monitors at the default interval early on sample every tick;
        // tick 250 may fall inside a grown interval, but both streams are
        // identical constants so both monitors share the same schedule —
        // if either samples tick 250 the alert fires. Verify the benign
        // case cannot alert and the polled case sums correctly instead.
        assert!(report.alerts <= 1);
        if report.alerts == 1 {
            assert_eq!(report.alert_ticks, vec![250]);
        }
    }

    #[test]
    fn violation_at_default_interval_is_always_caught() {
        // err = 0 keeps every monitor at the default interval.
        let spec = spec(2, 100.0, 0.0);
        let mut a = vec![10.0; 100];
        let b = vec![10.0; 100];
        a[57] = 95.0; // sum 105 > 100, local threshold 50 < 95
        let report = TaskRunner::new(&spec)
            .unwrap()
            .run([a, b].as_ref())
            .unwrap();
        assert_eq!(report.alerts, 1);
        assert_eq!(report.alert_ticks, vec![57]);
        assert_eq!(report.scheduled_samples, 200);
        // At err = 0 every monitor samples every tick, so the poll needs
        // no forced samples.
        assert_eq!(report.poll_samples, 0);
        assert_eq!(report.polls, 1);
    }

    #[test]
    fn trace_count_mismatch_rejected() {
        let spec = spec(2, 100.0, 0.01);
        let err = TaskRunner::new(&spec)
            .unwrap()
            .run(&[vec![1.0; 10]])
            .unwrap_err();
        assert!(matches!(
            err,
            VolleyError::ValueCountMismatch {
                got: 1,
                expected: 2
            }
        ));
    }

    #[test]
    fn full_report_loss_misses_everything() {
        let spec = spec(1, 50.0, 0.0);
        let mut trace = vec![10.0; 100];
        trace[30] = 99.0;
        let report = TaskRunner::new(&spec)
            .unwrap()
            .with_failure(FailureInjector::new(1.0, 3))
            .run([trace].as_ref())
            .unwrap();
        assert_eq!(report.alerts, 0, "all reports dropped → no alerts");
        assert_eq!(report.polls, 0);
    }

    #[test]
    fn matches_reference_distributed_task() {
        // The threaded runtime and the step-driven core implementation
        // must agree on alerts and sample counts for identical inputs.
        let spec = spec(2, 200.0, 0.03);
        let traces: Vec<Vec<f64>> = (0..2)
            .map(|m| {
                (0..1500u64)
                    .map(|t| {
                        let base = 20.0 + 10.0 * (m as f64);
                        let wob = ((t * (7 + m as u64)) % 13) as f64;
                        if t % 400 == 399 {
                            base + 150.0 + wob
                        } else {
                            base + wob
                        }
                    })
                    .collect()
            })
            .collect();
        let runtime_report = TaskRunner::new(&spec).unwrap().run(&traces).unwrap();

        let mut reference = volley_core::DistributedTask::new(&spec).unwrap();
        let mut ref_alerts = Vec::new();
        let mut ref_samples = 0u64;
        for tick in 0..1500u64 {
            let values = [traces[0][tick as usize], traces[1][tick as usize]];
            let out = reference.step(tick, &values).unwrap();
            ref_samples += u64::from(out.total_samples());
            if out.alerted() {
                ref_alerts.push(tick);
            }
        }
        assert_eq!(runtime_report.alert_ticks, ref_alerts);
        assert_eq!(runtime_report.total_samples, ref_samples);
    }

    #[test]
    fn even_scheme_runs() {
        let spec = spec(2, 1000.0, 0.02);
        let traces = vec![vec![1.0; 300], vec![2.0; 300]];
        let report = TaskRunner::new(&spec)
            .unwrap()
            .with_scheme(CoordinationScheme::Even)
            .run(&traces)
            .unwrap();
        assert_eq!(report.alerts, 0);
    }
}
