//! The task runner: spawns the actor threads, drives simulated time and
//! supervises monitor liveness.

use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::unbounded;

use volley_core::allocation::{AllocationConfig, ErrorAllocator};
use volley_core::coordinator::CoordinationScheme;
use volley_core::task::{MonitorId, TaskSpec};
use volley_core::time::Tick;
use volley_core::{AdaptiveSampler, VolleyError};

use crate::coordinator::{CoordinatorActor, DEFAULT_QUARANTINE_AFTER, DEFAULT_TICK_DEADLINE};
use crate::failure::{FailureInjector, FaultPlan};
use crate::link::MonitorLink;
use crate::message::{decode, encode, CoordinatorToMonitor, CoordinatorToRunner, TickData};
use crate::monitor::MonitorActor;

/// Aggregate result of a threaded task run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RuntimeReport {
    /// Ticks processed.
    pub ticks: u64,
    /// Scheduled sampling operations across all monitors.
    pub scheduled_samples: u64,
    /// Forced (global-poll) sampling operations.
    pub poll_samples: u64,
    /// Global polls run.
    pub polls: u64,
    /// State alerts raised.
    pub alerts: u64,
    /// Local violation reports that reached the coordinator.
    pub local_violation_reports: u64,
    /// Ticks at which alerts were raised.
    pub alert_ticks: Vec<Tick>,
    /// Total sampling operations (scheduled + forced).
    pub total_samples: u64,
    /// Monitor-ticks whose report missed the collection deadline (or whose
    /// monitor was quarantined).
    pub missed_tick_reports: u64,
    /// Global polls aggregated in degraded mode (≥ 1 missing monitor
    /// counted at its local threshold).
    pub degraded_polls: u64,
    /// Alerts raised by a degraded-mode aggregation.
    pub degraded_alerts: u64,
    /// Monitor quarantine events.
    pub quarantines: u64,
    /// Monitor recovery events (quarantined monitors reporting again).
    pub recoveries: u64,
    /// Monitors restarted by the runner's supervisor.
    pub restarts: u64,
}

impl RuntimeReport {
    /// Sampling-cost ratio versus periodic default-interval sampling on
    /// the same monitor count (1.0 before any tick).
    pub fn cost_ratio(&self, monitors: usize) -> f64 {
        let baseline = self.ticks * monitors as u64;
        if baseline == 0 {
            1.0
        } else {
            self.total_samples as f64 / baseline as f64
        }
    }
}

/// Spawns and drives a distributed monitoring task on real threads.
///
/// See the [crate docs](crate) for the tick protocol and the fault
/// tolerance model (deadlines, quarantine, degraded aggregation,
/// supervised restart).
#[derive(Debug)]
pub struct TaskRunner {
    spec: TaskSpec,
    scheme: CoordinationScheme,
    allocation: AllocationConfig,
    failure: FailureInjector,
    fault_plan: FaultPlan,
    tick_deadline: Duration,
    quarantine_after: u32,
    supervise: bool,
}

impl TaskRunner {
    /// Creates a runner for `spec` with adaptive allowance allocation, the
    /// default allocation configuration, a lossless report path, no
    /// injected faults and supervision enabled.
    ///
    /// # Errors
    ///
    /// Returns [`VolleyError::EmptyTask`] for a spec without monitors.
    pub fn new(spec: &TaskSpec) -> Result<Self, VolleyError> {
        if spec.monitors().is_empty() {
            return Err(VolleyError::EmptyTask);
        }
        Ok(TaskRunner {
            spec: spec.clone(),
            scheme: CoordinationScheme::Adaptive,
            allocation: AllocationConfig::default(),
            failure: FailureInjector::lossless(),
            fault_plan: FaultPlan::default(),
            tick_deadline: DEFAULT_TICK_DEADLINE,
            quarantine_after: DEFAULT_QUARANTINE_AFTER,
            supervise: true,
        })
    }

    /// Selects the allowance-allocation scheme (default adaptive).
    #[must_use]
    pub fn with_scheme(mut self, scheme: CoordinationScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Overrides the allocation configuration.
    #[must_use]
    pub fn with_allocation(mut self, allocation: AllocationConfig) -> Self {
        self.allocation = allocation;
        self
    }

    /// Injects message loss on the violation-report path (legacy,
    /// order-dependent injector; prefer [`TaskRunner::with_fault_plan`]).
    #[must_use]
    pub fn with_failure(mut self, failure: FailureInjector) -> Self {
        self.failure = failure;
        self
    }

    /// Installs a deterministic [`FaultPlan`]: message drops, delays and
    /// duplication plus scheduled monitor crashes and stalls. The same
    /// plan and spec reproduce the same [`RuntimeReport`].
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Bounds how long the coordinator waits for any one tick's reports
    /// (default [`DEFAULT_TICK_DEADLINE`]).
    #[must_use]
    pub fn with_tick_deadline(mut self, deadline: Duration) -> Self {
        self.tick_deadline = deadline;
        self
    }

    /// Sets how many consecutive missed deadlines quarantine a monitor
    /// (default [`DEFAULT_QUARANTINE_AFTER`]).
    #[must_use]
    pub fn with_quarantine_after(mut self, rounds: u32) -> Self {
        self.quarantine_after = rounds;
        self
    }

    /// Enables or disables the supervisor that restarts quarantined
    /// monitors (default enabled). With supervision off a dead monitor
    /// stays quarantined and the task runs degraded to completion.
    #[must_use]
    pub fn with_supervision(mut self, supervise: bool) -> Self {
        self.supervise = supervise;
        self
    }

    /// Runs the task over the per-monitor ground-truth `traces`
    /// (`traces[i][t]` = monitor *i*'s value at tick *t*), spawning one
    /// thread per monitor plus one for the coordinator, and blocks until
    /// the shortest trace is exhausted.
    ///
    /// The run completes even if monitors crash or stall mid-way: the
    /// coordinator quarantines them after missed deadlines and (unless
    /// supervision is disabled) the runner restarts them with a fresh
    /// sampler at the default interval.
    ///
    /// # Errors
    ///
    /// Returns [`VolleyError::ValueCountMismatch`] when the trace count
    /// differs from the monitor count, or
    /// [`VolleyError::RuntimeDisconnected`] if the coordinator thread dies
    /// mid-run.
    pub fn run(&self, traces: &[Vec<f64>]) -> Result<RuntimeReport, VolleyError> {
        let n = self.spec.monitors().len();
        if traces.len() != n {
            return Err(VolleyError::ValueCountMismatch {
                got: traces.len(),
                expected: n,
            });
        }
        let ticks = traces.iter().map(|t| t.len()).min().unwrap_or(0) as u64;

        // Wiring: runner/coordinator → monitor inbox links; monitors →
        // shared coordinator channel; coordinator → runner frames. The
        // runner keeps a clone of the monitor-side sender so restarted
        // monitors can join the shared channel mid-run.
        let (to_coord_tx, to_coord_rx) = unbounded::<Bytes>();
        let (summary_tx, summary_rx) = unbounded::<Bytes>();
        let mut links: Vec<MonitorLink> = Vec::with_capacity(n);
        let mut monitor_handles = Vec::with_capacity(n);
        let mut retired_handles = Vec::new();
        let global_err = self.spec.adaptation().error_allowance();
        for m in self.spec.monitors() {
            let (tx, rx) = unbounded::<Bytes>();
            links.push(MonitorLink::new(tx));
            let mut sampler = AdaptiveSampler::new(*self.spec.adaptation(), m.local_threshold);
            sampler.set_error_allowance(global_err / n as f64);
            let actor = MonitorActor::new(m.id, sampler).with_faults(self.fault_plan.clone());
            let outbox = to_coord_tx.clone();
            monitor_handles.push(std::thread::spawn(move || actor.run(rx, outbox)));
        }

        let allocator = ErrorAllocator::new(self.allocation, global_err, n)?;
        let local_thresholds: Vec<f64> = self
            .spec
            .monitors()
            .iter()
            .map(|m| m.local_threshold)
            .collect();
        let coordinator = CoordinatorActor::new(
            self.spec.global_threshold(),
            local_thresholds,
            allocator,
            self.spec.adaptation().slack_ratio(),
            self.scheme == CoordinationScheme::Adaptive,
            self.failure.clone(),
        )
        .with_fault_plan(self.fault_plan.clone())
        .with_tick_deadline(self.tick_deadline)
        .with_quarantine_after(self.quarantine_after);
        let coord_links = links.clone();
        let coord_handle =
            std::thread::spawn(move || coordinator.run(to_coord_rx, coord_links, summary_tx));

        // Drive ticks in lock-step. A failed send means that monitor is
        // gone; the coordinator notices via its deadline, so the run keeps
        // going instead of panicking.
        let mut report = RuntimeReport::default();
        for tick in 0..ticks {
            for (i, link) in links.iter().enumerate() {
                let data = TickData {
                    tick,
                    value: traces[i][tick as usize],
                };
                let _ = link.send(encode(&CoordinatorToMonitor::Tick(data)));
            }
            // Consume liveness events until this tick's summary arrives.
            let summary = loop {
                let Ok(frame) = summary_rx.recv() else {
                    return Err(VolleyError::RuntimeDisconnected {
                        component: "coordinator",
                    });
                };
                match decode::<CoordinatorToRunner>(&frame) {
                    Ok(CoordinatorToRunner::Summary(summary)) => break summary,
                    Ok(CoordinatorToRunner::MonitorQuarantined { monitor, .. }) => {
                        report.quarantines += 1;
                        if self.supervise {
                            let handle =
                                self.restart_monitor(monitor, &links, &to_coord_tx, global_err, n);
                            retired_handles.push(std::mem::replace(
                                &mut monitor_handles[monitor.0 as usize],
                                handle,
                            ));
                            report.restarts += 1;
                            // Tell the coordinator to await the restarted
                            // monitor again; FIFO puts this notice ahead
                            // of the fresh actor's first report.
                            let _ = to_coord_tx.send(encode(
                                &crate::message::MonitorToCoordinator::Revived { monitor },
                            ));
                        }
                    }
                    Ok(CoordinatorToRunner::MonitorRecovered { .. }) => {
                        report.recoveries += 1;
                    }
                    Err(_) => {} // never produced by our coordinator
                }
            };
            report.ticks += 1;
            report.scheduled_samples += u64::from(summary.scheduled_samples);
            report.poll_samples += u64::from(summary.poll_samples);
            report.local_violation_reports += u64::from(summary.local_violations);
            report.missed_tick_reports += u64::from(summary.missing_reports);
            if summary.polled {
                report.polls += 1;
                if summary.degraded {
                    report.degraded_polls += 1;
                }
            }
            if summary.alerted {
                report.alerts += 1;
                report.alert_ticks.push(summary.tick);
                if summary.degraded {
                    report.degraded_alerts += 1;
                }
            }
        }
        report.total_samples = report.scheduled_samples + report.poll_samples;

        // Teardown: stop monitors (crashed ones fail the send, which is
        // fine), join them, then cut the monitor→coordinator channel so
        // the coordinator exits on disconnect.
        for link in &links {
            let _ = link.send(encode(&CoordinatorToMonitor::Shutdown));
        }
        for handle in monitor_handles.into_iter().chain(retired_handles) {
            handle.join().expect("monitor thread exits cleanly");
        }
        drop(links);
        drop(to_coord_tx);
        coord_handle
            .join()
            .expect("coordinator thread exits cleanly");
        Ok(report)
    }

    /// Replaces a quarantined monitor with a fresh actor: new inbox, a
    /// fresh sampler at the default interval (its learned schedule died
    /// with it) and the even share of the error allowance. Process faults
    /// (crash/stall) are stripped from the restarted actor's plan —
    /// its predecessor already acted them out — while network faults keep
    /// applying.
    fn restart_monitor(
        &self,
        monitor: MonitorId,
        links: &[MonitorLink],
        to_coord_tx: &crossbeam::channel::Sender<Bytes>,
        global_err: f64,
        n: usize,
    ) -> std::thread::JoinHandle<()> {
        let idx = monitor.0 as usize;
        let m = &self.spec.monitors()[idx];
        let (tx, rx) = unbounded::<Bytes>();
        let mut sampler = AdaptiveSampler::new(*self.spec.adaptation(), m.local_threshold);
        sampler.set_error_allowance(global_err / n as f64);
        let actor = MonitorActor::new(m.id, sampler)
            .with_faults(self.fault_plan.without_process_faults(monitor));
        let outbox = to_coord_tx.clone();
        let handle = std::thread::spawn(move || actor.run(rx, outbox));
        // Swapping the link drops the old sender: a stalled predecessor
        // sees its inbox disconnect and exits.
        links[idx].replace(tx);
        handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(monitors: usize, threshold: f64, err: f64) -> TaskSpec {
        TaskSpec::builder(threshold)
            .monitors(monitors)
            .error_allowance(err)
            .max_interval(8)
            .patience(3)
            .warmup_samples(3)
            .build()
            .unwrap()
    }

    #[test]
    fn quiet_run_has_no_alerts_and_saves_cost() {
        let spec = spec(3, 1000.0, 0.05);
        let traces = vec![vec![5.0; 800], vec![10.0; 800], vec![20.0; 800]];
        let report = TaskRunner::new(&spec).unwrap().run(&traces).unwrap();
        assert_eq!(report.ticks, 800);
        assert_eq!(report.alerts, 0);
        assert_eq!(report.polls, 0);
        assert_eq!(report.missed_tick_reports, 0);
        assert_eq!(report.quarantines, 0);
        assert!(
            report.cost_ratio(3) < 0.7,
            "cost ratio {}",
            report.cost_ratio(3)
        );
    }

    #[test]
    fn global_violation_is_detected() {
        let spec = spec(2, 100.0, 0.01);
        let mut a = vec![10.0; 300];
        let mut b = vec![10.0; 300];
        a[250] = 80.0; // local threshold 50 exceeded
        b[250] = 70.0; // sum 150 > 100
        let report = TaskRunner::new(&spec)
            .unwrap()
            .run([a, b].as_ref())
            .unwrap();
        // Monitors at the default interval early on sample every tick;
        // tick 250 may fall inside a grown interval, but both streams are
        // identical constants so both monitors share the same schedule —
        // if either samples tick 250 the alert fires. Verify the benign
        // case cannot alert and the polled case sums correctly instead.
        assert!(report.alerts <= 1);
        if report.alerts == 1 {
            assert_eq!(report.alert_ticks, vec![250]);
        }
    }

    #[test]
    fn violation_at_default_interval_is_always_caught() {
        // err = 0 keeps every monitor at the default interval.
        let spec = spec(2, 100.0, 0.0);
        let mut a = vec![10.0; 100];
        let b = vec![10.0; 100];
        a[57] = 95.0; // sum 105 > 100, local threshold 50 < 95
        let report = TaskRunner::new(&spec)
            .unwrap()
            .run([a, b].as_ref())
            .unwrap();
        assert_eq!(report.alerts, 1);
        assert_eq!(report.alert_ticks, vec![57]);
        assert_eq!(report.scheduled_samples, 200);
        // At err = 0 every monitor samples every tick, so the poll needs
        // no forced samples.
        assert_eq!(report.poll_samples, 0);
        assert_eq!(report.polls, 1);
    }

    #[test]
    fn trace_count_mismatch_rejected() {
        let spec = spec(2, 100.0, 0.01);
        let err = TaskRunner::new(&spec)
            .unwrap()
            .run(&[vec![1.0; 10]])
            .unwrap_err();
        assert!(matches!(
            err,
            VolleyError::ValueCountMismatch {
                got: 1,
                expected: 2
            }
        ));
    }

    #[test]
    fn full_report_loss_misses_everything() {
        let spec = spec(1, 50.0, 0.0);
        let mut trace = vec![10.0; 100];
        trace[30] = 99.0;
        let report = TaskRunner::new(&spec)
            .unwrap()
            .with_failure(FailureInjector::new(1.0, 3))
            .run([trace].as_ref())
            .unwrap();
        assert_eq!(report.alerts, 0, "all reports dropped → no alerts");
        assert_eq!(report.polls, 0);
    }

    #[test]
    fn matches_reference_distributed_task() {
        // The threaded runtime and the step-driven core implementation
        // must agree on alerts and sample counts for identical inputs.
        let spec = spec(2, 200.0, 0.03);
        let traces: Vec<Vec<f64>> = (0..2)
            .map(|m| {
                (0..1500u64)
                    .map(|t| {
                        let base = 20.0 + 10.0 * (m as f64);
                        let wob = ((t * (7 + m as u64)) % 13) as f64;
                        if t % 400 == 399 {
                            base + 150.0 + wob
                        } else {
                            base + wob
                        }
                    })
                    .collect()
            })
            .collect();
        let runtime_report = TaskRunner::new(&spec).unwrap().run(&traces).unwrap();

        let mut reference = volley_core::DistributedTask::new(&spec).unwrap();
        let mut ref_alerts = Vec::new();
        let mut ref_samples = 0u64;
        for tick in 0..1500u64 {
            let values = [traces[0][tick as usize], traces[1][tick as usize]];
            let out = reference.step(tick, &values).unwrap();
            ref_samples += u64::from(out.total_samples());
            if out.alerted() {
                ref_alerts.push(tick);
            }
        }
        assert_eq!(runtime_report.alert_ticks, ref_alerts);
        assert_eq!(runtime_report.total_samples, ref_samples);
    }

    #[test]
    fn even_scheme_runs() {
        let spec = spec(2, 1000.0, 0.02);
        let traces = vec![vec![1.0; 300], vec![2.0; 300]];
        let report = TaskRunner::new(&spec)
            .unwrap()
            .with_scheme(CoordinationScheme::Even)
            .run(&traces)
            .unwrap();
        assert_eq!(report.alerts, 0);
    }

    #[test]
    fn crashed_monitor_is_restarted_and_run_completes() {
        let spec = spec(2, 1000.0, 0.02);
        let traces = vec![vec![1.0; 60], vec![2.0; 60]];
        let report = TaskRunner::new(&spec)
            .unwrap()
            .with_fault_plan(FaultPlan::new(7).with_crash(MonitorId(1), 5))
            .with_tick_deadline(Duration::from_millis(25))
            .with_quarantine_after(2)
            .run(&traces)
            .unwrap();
        assert_eq!(report.ticks, 60, "the run must not hang or truncate");
        assert_eq!(report.quarantines, 1);
        assert_eq!(report.restarts, 1);
        assert_eq!(report.recoveries, 1, "restarted monitor reports again");
        assert!(
            report.missed_tick_reports >= 2,
            "the dead rounds are accounted for"
        );
    }

    #[test]
    fn unsupervised_crash_runs_degraded_to_completion() {
        let spec = spec(2, 1000.0, 0.02);
        let traces = vec![vec![1.0; 40], vec![2.0; 40]];
        let report = TaskRunner::new(&spec)
            .unwrap()
            .with_fault_plan(FaultPlan::new(7).with_crash(MonitorId(1), 5))
            .with_tick_deadline(Duration::from_millis(25))
            .with_quarantine_after(2)
            .with_supervision(false)
            .run(&traces)
            .unwrap();
        assert_eq!(report.ticks, 40);
        assert_eq!(report.restarts, 0);
        assert_eq!(report.recoveries, 0);
        // Dead from tick 5 onward: every later tick misses its report.
        assert!(report.missed_tick_reports >= 34);
    }
}
