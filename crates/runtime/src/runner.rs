//! The task runner: spawns the actor threads, drives simulated time,
//! supervises monitor liveness and fails over to a warm standby
//! coordinator when the primary dies.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use serde::Serialize;

use volley_core::allocation::{AllocationConfig, ErrorAllocator};
use volley_core::coordinator::CoordinationScheme;
use volley_core::service::TaskKind;
use volley_core::task::{MonitorId, TaskId, TaskSpec};
use volley_core::time::Tick;
use volley_core::vfs::{FaultFs, IoFaultStats};
use volley_core::{AdaptationConfig, AdaptiveSampler, VolleyError};
use volley_obs::{names, GaugeSource, Obs, SelfMonitor, SnapshotWriter};
use volley_serve::ServePublisher;
use volley_store::SampleRecorder;

use crate::checkpoint::{Wal, WalStats, WalSyncPolicy};
use crate::coordinator::{CoordinatorActor, DEFAULT_QUARANTINE_AFTER, DEFAULT_TICK_DEADLINE};
use crate::failure::{FailureInjector, FaultPlan};
use crate::link::MonitorLink;
use crate::message::{
    decode, ControlFrame, CoordinatorToMonitor, CoordinatorToRunner, MonitorFrame,
    MonitorToCoordinator, TickData,
};
use crate::monitor::MonitorActor;

/// Hard cap on coordinator failovers per run — a backstop against fault
/// plans that kill every incarnation.
const MAX_FAILOVERS: u32 = 8;

/// How the run's persistence sinks degraded under storage faults.
///
/// All zeros on a healthy run, so a fault-free [`RuntimeReport`] is
/// unchanged by the section's presence. Every counter describes
/// *sampling-fidelity* loss only: detection (alerts, polls) never waits
/// on a sink and is bit-identical with or without storage faults.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct DegradationReport {
    /// Storage faults injected by the runner-owned sinks' fault plans
    /// (WAL + obs snapshots; the sample store is attached pre-wrapped by
    /// the caller and accounts for its own injections).
    pub io_faults_injected: u64,
    /// WAL appends that never reached the file (summed across
    /// coordinator incarnations).
    pub wal_write_failures: u64,
    /// WAL fsyncs that reported failure.
    pub wal_sync_failures: u64,
    /// WAL circuit-breaker trips (degraded-mode entries).
    pub wal_trips: u64,
    /// WAL circuit-breaker re-arms (degraded-mode exits).
    pub wal_rearms: u64,
    /// Checkpoint frames evicted from the bounded in-memory ring while
    /// the WAL was degraded — durable state actually lost.
    pub wal_ring_dropped: u64,
    /// WAL still shedding to its ring when the run ended.
    pub wal_degraded_at_end: bool,
    /// Records the sample store shed while its breaker was open.
    pub store_shed_samples: u64,
    /// Store circuit-breaker trips.
    pub store_trips: u64,
    /// Store circuit-breaker re-arms.
    pub store_rearms: u64,
    /// Store still lossy when the run ended.
    pub store_degraded_at_end: bool,
    /// Obs snapshot dumps skipped while the writer was paused.
    pub obs_snapshots_paused: u64,
    /// Obs writer circuit-breaker trips.
    pub obs_trips: u64,
    /// Obs writer circuit-breaker re-arms.
    pub obs_rearms: u64,
    /// Obs writer still paused when the run ended.
    pub obs_degraded_at_end: bool,
}

impl DegradationReport {
    /// Whether any sink degraded (or any fault was injected) at all.
    pub fn any(&self) -> bool {
        *self != DegradationReport::default()
    }
}

/// Multi-task (§II.B) outcome section for a task that ran as a gated
/// follower under a [`crate::multitask::MultiTaskRunner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MultitaskReport {
    /// The leader (precondition) task this follower was gated behind.
    pub leader: u64,
    /// Ticks this task spent with the gate engaged (leader calm).
    pub gated_ticks: u64,
    /// Scheduled samples the gate suppressed across the task's monitors.
    pub suppressed_samples: u64,
    /// Gate engage/release transitions over the run.
    pub gate_flips: u64,
}

/// Aggregate result of a threaded task run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RuntimeReport {
    /// Ticks processed.
    pub ticks: u64,
    /// Scheduled sampling operations across all monitors.
    pub scheduled_samples: u64,
    /// Forced (global-poll) sampling operations.
    pub poll_samples: u64,
    /// Global polls run.
    pub polls: u64,
    /// State alerts raised.
    pub alerts: u64,
    /// Local violation reports that reached the coordinator.
    pub local_violation_reports: u64,
    /// Ticks at which alerts were raised.
    pub alert_ticks: Vec<Tick>,
    /// Total sampling operations (scheduled + forced).
    pub total_samples: u64,
    /// Monitor-ticks whose report missed the collection deadline (or whose
    /// monitor was quarantined).
    pub missed_tick_reports: u64,
    /// Global polls aggregated in degraded mode (≥ 1 missing monitor
    /// counted at its local threshold).
    pub degraded_polls: u64,
    /// Alerts raised by a degraded-mode aggregation.
    pub degraded_alerts: u64,
    /// Monitor quarantine events.
    pub quarantines: u64,
    /// Monitor recovery events (quarantined monitors reporting again).
    pub recoveries: u64,
    /// Monitors restarted by the runner's supervisor.
    pub restarts: u64,
    /// Coordinator failovers to a warm standby.
    pub coordinator_failovers: u64,
    /// Monitor frames the coordinator rejected for carrying a stale
    /// epoch (split-brain fencing at work).
    pub stale_epoch_frames: u64,
    /// Monitors whose sampler state was restored from a checkpoint at
    /// failover.
    pub checkpoint_restores: u64,
    /// Monitors restarted conservatively at the default interval at
    /// failover (no checkpointed state available for them).
    pub conservative_restarts: u64,
    /// Snapshot reads performed by the self-monitoring Volley task.
    pub self_monitor_samples: u64,
    /// Alerts the self-monitoring task raised on the runtime's own
    /// metrics (e.g. tick latency past its threshold).
    pub self_monitor_alerts: u64,
    /// Ticks at which self-monitoring alerts were raised.
    pub self_monitor_alert_ticks: Vec<Tick>,
    /// How the persistence sinks degraded under storage faults (all
    /// zeros on a healthy run).
    pub degradation: DegradationReport,
    /// Multi-task suppression outcome; `None` unless this task ran as a
    /// gated follower under a [`crate::multitask::MultiTaskRunner`].
    pub multitask: Option<MultitaskReport>,
}

impl RuntimeReport {
    /// Sampling-cost ratio versus periodic default-interval sampling on
    /// the same monitor count (1.0 before any tick).
    pub fn cost_ratio(&self, monitors: usize) -> f64 {
        let baseline = self.ticks * monitors as u64;
        if baseline == 0 {
            1.0
        } else {
            self.total_samples as f64 / baseline as f64
        }
    }
}

/// Spawns and drives a distributed monitoring task on real threads.
///
/// See the [crate docs](crate) for the tick protocol and the fault
/// tolerance model (deadlines, quarantine, degraded aggregation,
/// supervised restart, epoch-fenced coordinator failover).
#[derive(Debug)]
pub struct TaskRunner {
    spec: TaskSpec,
    scheme: CoordinationScheme,
    allocation: AllocationConfig,
    failure: FailureInjector,
    fault_plan: FaultPlan,
    tick_deadline: Duration,
    quarantine_after: u32,
    supervise: bool,
    standby: bool,
    /// Checkpoint WAL path and snapshot cadence (ticks).
    wal: Option<(PathBuf, u64)>,
    /// WAL group-fsync policy (default sync on snapshot records).
    wal_sync: WalSyncPolicy,
    /// Observability bundle shared by runner, coordinator and monitors.
    obs: Obs,
    /// Snapshot dump directory and cadence (ticks).
    obs_dir: Option<(PathBuf, u64)>,
    /// Self-monitor watchdog: (tick-latency threshold in µs, error
    /// allowance for its adaptive sampler).
    self_monitor: Option<(f64, f64)>,
    /// Sample/alert/interval recording sink shared with every monitor.
    recorder: Option<SampleRecorder>,
    /// Live serving-plane publisher: alert/epoch/degradation events and
    /// the current tick for `/metrics` stamping.
    serve: Option<ServePublisher>,
}

impl TaskRunner {
    /// Creates a runner for `spec` with adaptive allowance allocation, the
    /// default allocation configuration, a lossless report path, no
    /// injected faults, supervision enabled, and neither a standby
    /// coordinator nor checkpointing.
    ///
    /// # Errors
    ///
    /// Returns [`VolleyError::EmptyTask`] for a spec without monitors.
    pub fn new(spec: &TaskSpec) -> Result<Self, VolleyError> {
        if spec.monitors().is_empty() {
            return Err(VolleyError::EmptyTask);
        }
        Ok(TaskRunner {
            spec: spec.clone(),
            scheme: CoordinationScheme::Adaptive,
            allocation: AllocationConfig::default(),
            failure: FailureInjector::lossless(),
            fault_plan: FaultPlan::default(),
            tick_deadline: DEFAULT_TICK_DEADLINE,
            quarantine_after: DEFAULT_QUARANTINE_AFTER,
            supervise: true,
            standby: false,
            wal: None,
            wal_sync: WalSyncPolicy::default(),
            obs: Obs::disabled(),
            obs_dir: None,
            self_monitor: None,
            recorder: None,
            serve: None,
        })
    }

    /// Attaches a [`SampleRecorder`]: every monitor records its sampled
    /// values and interval changes, and the runner records every alert.
    /// The recorder is flushed at teardown. Recording is best-effort and
    /// never fails the run — check
    /// [`SampleRecorder::io_errors`] afterwards.
    #[must_use]
    pub fn with_recorder(mut self, recorder: SampleRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Shares an observability bundle with the run: the runner, the
    /// coordinator and every monitor record into it. A disabled bundle
    /// (the default) costs one relaxed atomic load per instrument.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Attaches a live serving-plane publisher: the runner pushes alert,
    /// failover-epoch and sink-degradation events into its bounded ring
    /// and stamps the current tick for `/metrics` scrapes. Publishing is
    /// a couple of relaxed stores and one bounded ring push per event —
    /// it never blocks the tick path.
    #[must_use]
    pub fn with_serve_publisher(mut self, publisher: ServePublisher) -> Self {
        self.serve = Some(publisher);
        self
    }

    /// Dumps periodic [`volley_obs::Snapshot`]s (JSON + Prometheus text)
    /// into `dir` every `every` ticks, plus a final snapshot and the span
    /// trace (`spans.json`) at teardown. Implies nothing about the
    /// bundle's enabled flag — pair with an enabled [`Obs`].
    #[must_use]
    pub fn with_obs_dir(mut self, dir: impl Into<PathBuf>, every: u64) -> Self {
        self.obs_dir = Some((dir.into(), every.max(1)));
        self
    }

    /// Arms the *Volley-watching-Volley* watchdog: a Volley monitoring
    /// task (adaptive sampling included) watches the runtime's own
    /// [`names::RUNNER_TICK_LATENCY_US`] gauge and raises a self-monitor
    /// alert whenever a tick takes longer than `threshold_us`
    /// microseconds. `err` is the error allowance of the watchdog's own
    /// adaptive sampler — 0.0 checks every tick, larger values let the
    /// watchdog itself skip quiet ticks. Requires an enabled [`Obs`].
    #[must_use]
    pub fn with_self_monitor(mut self, threshold_us: f64, err: f64) -> Self {
        self.self_monitor = Some((threshold_us, err));
        self
    }

    /// Selects the allowance-allocation scheme (default adaptive).
    #[must_use]
    pub fn with_scheme(mut self, scheme: CoordinationScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Overrides the allocation configuration.
    #[must_use]
    pub fn with_allocation(mut self, allocation: AllocationConfig) -> Self {
        self.allocation = allocation;
        self
    }

    /// Injects message loss on the violation-report path (legacy,
    /// order-dependent injector; prefer [`TaskRunner::with_fault_plan`]).
    #[must_use]
    pub fn with_failure(mut self, failure: FailureInjector) -> Self {
        self.failure = failure;
        self
    }

    /// Installs a deterministic [`FaultPlan`]: message drops, delays and
    /// duplication plus scheduled monitor crashes, stalls, partitions,
    /// coordinator crashes and WAL corruption. The same plan and spec
    /// reproduce the same [`RuntimeReport`].
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Bounds how long the coordinator waits for any one tick's reports
    /// (default [`DEFAULT_TICK_DEADLINE`]).
    #[must_use]
    pub fn with_tick_deadline(mut self, deadline: Duration) -> Self {
        self.tick_deadline = deadline;
        self
    }

    /// Sets how many consecutive missed deadlines quarantine a monitor
    /// (default [`DEFAULT_QUARANTINE_AFTER`]).
    #[must_use]
    pub fn with_quarantine_after(mut self, rounds: u32) -> Self {
        self.quarantine_after = rounds;
        self
    }

    /// Enables or disables the supervisor that restarts quarantined
    /// monitors (default enabled). With supervision off a dead monitor
    /// stays quarantined and the task runs degraded to completion.
    #[must_use]
    pub fn with_supervision(mut self, supervise: bool) -> Self {
        self.supervise = supervise;
        self
    }

    /// Arms a warm standby: when the coordinator dies mid-run, the runner
    /// bumps the epoch, fences the fleet with
    /// [`NewEpoch`](CoordinatorToMonitor::NewEpoch), restores monitor
    /// state from the checkpoint WAL (when [`with_wal`](Self::with_wal)
    /// is configured — conservative `I_d` resets otherwise) and re-drives
    /// the interrupted tick on a fresh coordinator. Without a standby a
    /// dead coordinator ends the run with
    /// [`VolleyError::RuntimeDisconnected`].
    #[must_use]
    pub fn with_standby(mut self, standby: bool) -> Self {
        self.standby = standby;
        self
    }

    /// Checkpoints coordinator state to a write-ahead log at `path`,
    /// snapshotting the full adaptation state every `every` ticks
    /// (minimum 1). Durability is best-effort: if the log cannot be
    /// created the run proceeds unlogged and a failover falls back to
    /// conservative restarts.
    #[must_use]
    pub fn with_wal(mut self, path: impl Into<PathBuf>, every: u64) -> Self {
        self.wal = Some((path.into(), every.max(1)));
        self
    }

    /// Selects the WAL group-fsync policy (default
    /// [`WalSyncPolicy::OnSnapshot`]): how often appended checkpoint
    /// records are pushed past the OS cache.
    #[must_use]
    pub fn with_wal_sync(mut self, policy: WalSyncPolicy) -> Self {
        self.wal_sync = policy;
        self
    }

    /// Runs the task over the per-monitor ground-truth `traces`
    /// (`traces[i][t]` = monitor *i*'s value at tick *t*), spawning one
    /// thread per monitor plus one for the coordinator, and blocks until
    /// the shortest trace is exhausted.
    ///
    /// The run completes even if monitors crash or stall mid-way: the
    /// coordinator quarantines them after missed deadlines and (unless
    /// supervision is disabled) the runner restarts them with a fresh
    /// sampler at the default interval. With
    /// [`with_standby`](Self::with_standby) the run also survives the
    /// coordinator dying: the interrupted tick is re-driven on a fresh,
    /// epoch-bumped coordinator.
    ///
    /// # Errors
    ///
    /// Returns [`VolleyError::ValueCountMismatch`] when the trace count
    /// differs from the monitor count, or
    /// [`VolleyError::RuntimeDisconnected`] if the coordinator thread dies
    /// mid-run with no standby armed (or past the failover cap of 8).
    pub fn run(&self, traces: &[Vec<f64>]) -> Result<RuntimeReport, VolleyError> {
        let n = self.spec.monitors().len();
        if traces.len() != n {
            return Err(VolleyError::ValueCountMismatch {
                got: traces.len(),
                expected: n,
            });
        }
        let ticks = traces.iter().map(|t| t.len()).min().unwrap_or(0) as u64;

        // Asking for snapshot dumps or a watchdog implies instrumenting:
        // both read the registry, which is empty while obs is disabled.
        if self.obs_dir.is_some() || self.self_monitor.is_some() {
            self.obs.set_enabled(true);
        }

        // Wiring: runner/coordinator → monitor inbox links; monitors → a
        // shared, *swappable* outbox link into the coordinator (failover
        // repoints it at the standby's fresh channel, so frames addressed
        // to the dead incarnation die with its receiver); coordinator →
        // runner frames.
        let (to_coord_tx, to_coord_rx) = unbounded::<Bytes>();
        let out_link = MonitorLink::new(to_coord_tx);
        let mut epoch = 0u64;
        let mut links: Vec<MonitorLink> = Vec::with_capacity(n);
        let mut monitor_handles = Vec::with_capacity(n);
        let mut retired_handles = Vec::new();
        let global_err = self.spec.adaptation().error_allowance();
        for m in self.spec.monitors() {
            let (tx, rx) = unbounded::<Bytes>();
            links.push(MonitorLink::new(tx));
            let mut sampler = AdaptiveSampler::new(*self.spec.adaptation(), m.local_threshold);
            sampler.set_error_allowance(global_err / n as f64);
            let mut actor = MonitorActor::new(m.id, sampler)
                .with_faults(self.fault_plan.clone())
                .with_obs(&self.obs);
            if let Some(recorder) = &self.recorder {
                actor = actor.with_recorder(recorder.clone());
            }
            let outbox = out_link.clone();
            monitor_handles.push(std::thread::spawn(move || actor.run(rx, outbox)));
        }

        // Storage-fault bookkeeping: each runner-owned sink gets its own
        // FaultFs (independent op counters keep decisions order-free
        // across threads); stats handles survive the sinks for the
        // report's degradation section.
        let mut io_stats: Vec<Arc<IoFaultStats>> = Vec::new();
        let wal = self.open_wal(&mut io_stats);
        let mut wal_stats: Vec<Arc<WalStats>> = wal.iter().map(Wal::stats).collect();
        let (summary_tx, summary_rx) = unbounded::<Bytes>();
        let mut summary_rx = summary_rx;
        let mut coord_handle = self.spawn_coordinator(
            epoch,
            None,
            self.fault_plan.clone(),
            wal,
            to_coord_rx,
            &links,
            summary_tx,
        )?;

        // Observability: pre-resolve the runner's instruments (no registry
        // mutex on the tick path), arm the snapshot writer and the
        // self-monitoring watchdog.
        let registry = self.obs.registry();
        let ticks_total = registry.counter(names::RUNNER_TICKS_TOTAL);
        let tick_hist = registry.histogram(names::RUNNER_TICK_LATENCY_NS);
        let tick_gauge = registry.gauge(names::RUNNER_TICK_LATENCY_US);
        let degraded_total = registry.counter(names::RUNNER_DEGRADED_TICKS_TOTAL);
        let alerts_total = registry.counter(names::RUNNER_ALERTS_TOTAL);
        let samples_total = registry.counter(names::RUNNER_SAMPLES_TOTAL);
        let failovers_total = registry.counter(names::RUNNER_FAILOVERS_TOTAL);
        let sampling_fraction = registry.gauge(names::RUNNER_SAMPLING_FRACTION);
        let degraded_fraction = registry.gauge(names::RUNNER_DEGRADED_FRACTION);
        let wal_degraded_gauge = registry.gauge(names::WAL_DEGRADED);
        let wal_ring_gauge = registry.gauge(names::WAL_RING_BUFFERED);
        let store_degraded_gauge = registry.gauge(names::STORE_DEGRADED);
        let obs_degraded_gauge = registry.gauge(names::OBS_SNAPSHOTS_DEGRADED);
        let mut writer = match &self.obs_dir {
            Some((dir, every)) => {
                let built = match self.io_fault_fs() {
                    Some(fs) => {
                        io_stats.push(fs.stats());
                        SnapshotWriter::new_on(Arc::new(fs), dir, *every)
                    }
                    None => SnapshotWriter::new(dir, *every),
                };
                Some(built.map_err(|e| VolleyError::InvalidConfig {
                    parameter: "obs_dir",
                    reason: format!("cannot create snapshot dir: {e}"),
                })?)
            }
            None => None,
        };
        let mut watchdog = match self.self_monitor {
            Some((threshold_us, err)) => {
                let config = AdaptationConfig::builder().error_allowance(err).build()?;
                let mut monitor = SelfMonitor::new();
                monitor.watch(
                    TaskId(0),
                    config,
                    TaskKind::Above {
                        threshold: threshold_us,
                    },
                    Box::new(GaugeSource::new(names::RUNNER_TICK_LATENCY_US)),
                )?;
                Some(monitor)
            }
            None => None,
        };
        let mut degraded_ticks = 0u64;
        // Last published wal/store/obs degradation states, so the serve
        // stream only carries *transitions*, not one event per tick.
        let mut sink_degraded_prev = [false; 3];

        // Drive ticks in lock-step. A failed send means that monitor is
        // gone; the coordinator notices via its deadline, so the run keeps
        // going instead of panicking.
        let mut report = RuntimeReport::default();
        let mut failovers_left = MAX_FAILOVERS;
        for tick in 0..ticks {
            let tick_started = self.obs.enabled().then(Instant::now);
            let summary = 'attempt: loop {
                for (i, link) in links.iter().enumerate() {
                    let data = TickData {
                        tick,
                        value: traces[i][tick as usize],
                    };
                    let _ = link.send(ControlFrame::seal(epoch, CoordinatorToMonitor::Tick(data)));
                }
                // Consume liveness events until this tick's summary
                // arrives — or the coordinator dies and a standby takes
                // over, re-driving the tick from the top of 'attempt.
                loop {
                    let Ok(frame) = summary_rx.recv() else {
                        if !self.standby || failovers_left == 0 {
                            return Err(VolleyError::RuntimeDisconnected {
                                component: "coordinator",
                            });
                        }
                        failovers_left -= 1;
                        report.coordinator_failovers += 1;
                        failovers_total.inc();
                        epoch += 1;
                        if let Some(serve) = &self.serve {
                            serve.epoch(epoch, tick);
                        }
                        coord_handle
                            .join()
                            .expect("coordinator thread exits cleanly");
                        let (rx, handle) = self.fail_over(
                            epoch,
                            tick,
                            &links,
                            &out_link,
                            global_err,
                            n,
                            &mut report,
                            &mut io_stats,
                            &mut wal_stats,
                        )?;
                        summary_rx = rx;
                        coord_handle = handle;
                        continue 'attempt;
                    };
                    match decode::<CoordinatorToRunner>(&frame) {
                        Ok(CoordinatorToRunner::Summary(summary)) => break 'attempt summary,
                        Ok(CoordinatorToRunner::MonitorQuarantined { monitor, .. }) => {
                            report.quarantines += 1;
                            if self.supervise {
                                let handle = self.restart_monitor(
                                    monitor, &links, &out_link, global_err, n, epoch,
                                );
                                retired_handles.push(std::mem::replace(
                                    &mut monitor_handles[monitor.0 as usize],
                                    handle,
                                ));
                                report.restarts += 1;
                                // Tell the coordinator to await the restarted
                                // monitor again; FIFO puts this notice ahead
                                // of the fresh actor's first report.
                                let _ = out_link.send(MonitorFrame::seal(
                                    epoch,
                                    MonitorToCoordinator::Revived { monitor },
                                ));
                            }
                        }
                        Ok(CoordinatorToRunner::MonitorRecovered { .. }) => {
                            report.recoveries += 1;
                        }
                        Err(_) => {} // never produced by our coordinator
                    }
                }
            };
            report.ticks += 1;
            report.scheduled_samples += u64::from(summary.scheduled_samples);
            report.poll_samples += u64::from(summary.poll_samples);
            report.local_violation_reports += u64::from(summary.local_violations);
            report.missed_tick_reports += u64::from(summary.missing_reports);
            report.stale_epoch_frames += u64::from(summary.stale_epoch_frames);
            if summary.polled {
                report.polls += 1;
                if summary.degraded {
                    report.degraded_polls += 1;
                }
            }
            if summary.alerted {
                report.alerts += 1;
                report.alert_ticks.push(summary.tick);
                if summary.degraded {
                    report.degraded_alerts += 1;
                }
                if let Some(recorder) = &self.recorder {
                    recorder.record_alert(summary.tick, summary.degraded);
                }
                if let Some(serve) = &self.serve {
                    serve.alert(summary.tick, summary.degraded);
                }
            }
            if summary.degraded {
                degraded_ticks += 1;
            }

            // Per-tick observability: record end-to-end tick latency, bump
            // the runner counters, refresh derived gauges, then let the
            // watchdog read the fresh snapshot and dump on cadence.
            if let Some(started) = tick_started {
                let elapsed = started.elapsed();
                tick_hist.record(elapsed.as_nanos() as u64);
                tick_gauge.set(elapsed.as_micros() as f64);
                self.obs.spans().record("runner_tick", started);
                ticks_total.inc();
                samples_total
                    .add(u64::from(summary.scheduled_samples) + u64::from(summary.poll_samples));
                if summary.degraded {
                    degraded_total.inc();
                }
                if summary.alerted {
                    alerts_total.inc();
                }
                let done = report.ticks as f64;
                sampling_fraction.set(
                    (report.scheduled_samples + report.poll_samples) as f64 / (done * n as f64),
                );
                degraded_fraction.set(degraded_ticks as f64 / done);
                // Sink-degradation gauges: every breaker transition shows
                // up as an obs series, per the accuracy contract's
                // "visible, never silent" rule.
                if let Some(stats) = wal_stats.last() {
                    wal_degraded_gauge.set(stats.degraded.load(Ordering::Relaxed) as f64);
                    wal_ring_gauge.set(stats.ring_buffered.load(Ordering::Relaxed) as f64);
                }
                if let Some(recorder) = &self.recorder {
                    store_degraded_gauge.set(f64::from(u8::from(recorder.degraded())));
                }
            }
            if let Some(monitor) = watchdog.as_mut() {
                if monitor.any_due(tick) {
                    let snapshot = self.obs.snapshot(tick);
                    for alert in monitor.tick(tick, &snapshot) {
                        report.self_monitor_alerts += 1;
                        report.self_monitor_alert_ticks.push(alert.tick);
                    }
                }
            }
            if let Some(writer) = writer.as_mut() {
                let _ = writer.maybe_write(registry, tick);
                if self.obs.enabled() {
                    obs_degraded_gauge.set(f64::from(u8::from(writer.degraded())));
                }
            }
            if let Some(serve) = &self.serve {
                serve.set_tick(tick);
                let sinks = [
                    (
                        "wal",
                        wal_stats
                            .last()
                            .is_some_and(|s| s.degraded.load(Ordering::Relaxed) != 0),
                    ),
                    (
                        "store",
                        self.recorder.as_ref().is_some_and(SampleRecorder::degraded),
                    ),
                    ("obs", writer.as_ref().is_some_and(SnapshotWriter::degraded)),
                ];
                for (i, (sink, degraded)) in sinks.into_iter().enumerate() {
                    if degraded != sink_degraded_prev[i] {
                        sink_degraded_prev[i] = degraded;
                        serve.degradation(sink, degraded, tick);
                    }
                }
            }
        }
        report.total_samples = report.scheduled_samples + report.poll_samples;
        if let Some(monitor) = &watchdog {
            report.self_monitor_samples = monitor.samples();
        }

        // Teardown: stop monitors (crashed ones fail the send, which is
        // fine), join them, then cut the monitor→coordinator channel so
        // the coordinator exits on disconnect.
        for link in &links {
            let _ = link.send(ControlFrame::seal(epoch, CoordinatorToMonitor::Shutdown));
        }
        for handle in monitor_handles.into_iter().chain(retired_handles) {
            handle.join().expect("monitor thread exits cleanly");
        }
        drop(links);
        drop(out_link);
        coord_handle
            .join()
            .expect("coordinator thread exits cleanly");

        // Seal recorded samples only after every monitor has joined, so
        // the flushed segments hold the complete run. (Before reading
        // degradation state: the final flush can itself trip or re-arm
        // the store breaker.)
        if let Some(recorder) = &self.recorder {
            recorder.flush();
        }

        // Degradation accounting: WAL counters sum across coordinator
        // incarnations; store and obs state come from their live handles.
        let d = &mut report.degradation;
        for stats in &wal_stats {
            d.wal_write_failures += stats.write_failures.load(Ordering::Relaxed);
            d.wal_sync_failures += stats.sync_failures.load(Ordering::Relaxed);
            d.wal_trips += stats.trips.load(Ordering::Relaxed);
            d.wal_rearms += stats.rearms.load(Ordering::Relaxed);
            d.wal_ring_dropped += stats.ring_dropped.load(Ordering::Relaxed);
        }
        d.wal_degraded_at_end = wal_stats
            .last()
            .is_some_and(|s| s.degraded.load(Ordering::Relaxed) != 0);
        if let Some(recorder) = &self.recorder {
            d.store_shed_samples = recorder.shed_samples();
            let (trips, rearms) = recorder.breaker_transitions();
            d.store_trips = trips;
            d.store_rearms = rearms;
            d.store_degraded_at_end = recorder.degraded();
        }
        if let Some(writer) = &writer {
            d.obs_snapshots_paused = writer.paused();
            let (trips, rearms) = writer.breaker_transitions();
            d.obs_trips = trips;
            d.obs_rearms = rearms;
            d.obs_degraded_at_end = writer.degraded();
        }
        d.io_faults_injected = io_stats.iter().map(|s| s.total()).sum();

        // Publish the cumulative degradation counters so the final
        // snapshot (and any scraper) carries them.
        if self.obs.enabled() {
            let d = &report.degradation;
            registry
                .counter(names::WAL_WRITE_FAILURES_TOTAL)
                .add(d.wal_write_failures);
            registry
                .counter(names::WAL_SYNC_FAILURES_TOTAL)
                .add(d.wal_sync_failures);
            registry
                .counter(names::WAL_BREAKER_TRIPS_TOTAL)
                .add(d.wal_trips);
            registry
                .counter(names::WAL_BREAKER_REARMS_TOTAL)
                .add(d.wal_rearms);
            registry
                .counter(names::WAL_RING_DROPPED_TOTAL)
                .add(d.wal_ring_dropped);
            registry
                .counter(names::STORE_SHED_SAMPLES_TOTAL)
                .add(d.store_shed_samples);
            registry
                .counter(names::STORE_BREAKER_TRIPS_TOTAL)
                .add(d.store_trips);
            registry
                .counter(names::STORE_BREAKER_REARMS_TOTAL)
                .add(d.store_rearms);
            registry
                .counter(names::OBS_SNAPSHOTS_PAUSED_TOTAL)
                .add(d.obs_snapshots_paused);
            registry
                .counter(names::IO_FAULTS_INJECTED_TOTAL)
                .add(d.io_faults_injected);
        }

        // Final dump after all actors have flushed their instruments;
        // best-effort, like WAL durability.
        if let Some(writer) = writer.as_mut() {
            let _ = writer.write_now(registry, ticks);
            let _ = writer.write_spans(self.obs.spans());
        }
        Ok(report)
    }

    /// A fresh `FaultFs` for one sink when the plan schedules storage
    /// faults, `None` for the plain filesystem. One instance per sink:
    /// independent op counters keep fault decisions order-independent
    /// across the threads the sinks live on.
    fn io_fault_fs(&self) -> Option<FaultFs> {
        let io = self.fault_plan.io();
        (!io.is_benign()).then(|| FaultFs::new(io.clone()))
    }

    /// Opens the checkpoint WAL (best-effort — `None` on I/O failure),
    /// arming any planned WAL corruption, the sync policy and storage
    /// faults. Pushes the sink's fault stats into `io_stats`.
    fn open_wal(&self, io_stats: &mut Vec<Arc<IoFaultStats>>) -> Option<Wal> {
        let (path, _) = self.wal.as_ref()?;
        let created = match self.io_fault_fs() {
            Some(fs) => {
                io_stats.push(fs.stats());
                Wal::create_on(Arc::new(fs), path)
            }
            None => Wal::create(path),
        };
        created.ok().map(|wal| {
            wal.with_sync_policy(self.wal_sync)
                .with_corruption(self.fault_plan.wal_corruptions().to_vec())
        })
    }

    /// Builds and spawns one coordinator incarnation.
    #[allow(clippy::too_many_arguments)]
    fn spawn_coordinator(
        &self,
        epoch: u64,
        resume: Option<(Option<Tick>, Tick)>,
        plan: FaultPlan,
        wal: Option<Wal>,
        from_monitors: Receiver<Bytes>,
        links: &[MonitorLink],
        summary_tx: Sender<Bytes>,
    ) -> Result<std::thread::JoinHandle<()>, VolleyError> {
        let n = self.spec.monitors().len();
        let global_err = self.spec.adaptation().error_allowance();
        let allocator = ErrorAllocator::new(self.allocation, global_err, n)?;
        let local_thresholds: Vec<f64> = self
            .spec
            .monitors()
            .iter()
            .map(|m| m.local_threshold)
            .collect();
        let mut coordinator = CoordinatorActor::new(
            self.spec.global_threshold(),
            local_thresholds,
            allocator,
            self.spec.adaptation().slack_ratio(),
            self.scheme == CoordinationScheme::Adaptive,
            self.failure.clone(),
        )
        .with_fault_plan(plan)
        .with_tick_deadline(self.tick_deadline)
        .with_quarantine_after(self.quarantine_after)
        .with_epoch(epoch)
        .with_obs(&self.obs);
        if let Some((last_tick, next_update_tick)) = resume {
            coordinator = coordinator.with_resume(last_tick, next_update_tick);
        }
        if let Some(wal) = wal {
            let every = self.wal.as_ref().map_or(1, |(_, every)| *every);
            coordinator = coordinator.with_checkpoint(wal, every);
        }
        let coord_links = links.to_vec();
        Ok(std::thread::spawn(move || {
            coordinator.run(from_monitors, coord_links, summary_tx)
        }))
    }

    /// Fails over to a warm standby after the coordinator died while
    /// `tick` was in flight: replay the WAL, fence the fleet at the new
    /// `epoch`, restore checkpointed monitor state (conservative `I_d`
    /// resets where none exists), repoint the shared outbox at a fresh
    /// channel — stranding any frames addressed to the dead incarnation —
    /// and spawn the standby resuming behind the re-driven tick.
    #[allow(clippy::too_many_arguments)]
    fn fail_over(
        &self,
        epoch: u64,
        tick: Tick,
        links: &[MonitorLink],
        out_link: &MonitorLink,
        global_err: f64,
        n: usize,
        report: &mut RuntimeReport,
        io_stats: &mut Vec<Arc<IoFaultStats>>,
        wal_stats: &mut Vec<Arc<WalStats>>,
    ) -> Result<(Receiver<Bytes>, std::thread::JoinHandle<()>), VolleyError> {
        // Recover whatever the dead incarnation managed to persist, then
        // restart the log cleanly (compaction also clears any corrupt
        // tail the replay truncated at). The successor's log runs under
        // the same storage-fault plan as its predecessor's.
        let (snapshot, wal) = match &self.wal {
            Some((path, _)) => {
                let replay = Wal::replay(path).unwrap_or_default();
                let compacted = match self.io_fault_fs() {
                    Some(fs) => {
                        io_stats.push(fs.stats());
                        Wal::compact_to_on(Arc::new(fs), path, replay.snapshot.as_ref())
                    }
                    None => Wal::compact_to(path, replay.snapshot.as_ref()),
                };
                let wal = compacted.ok().map(|wal| {
                    wal.with_sync_policy(self.wal_sync)
                        .with_corruption(self.fault_plan.wal_corruptions().to_vec())
                });
                (replay.snapshot, wal)
            }
            None => (None, None),
        };
        wal_stats.extend(wal.iter().map(Wal::stats));

        // Fence first, then restore: a monitor that consumes the NewEpoch
        // adopts it, so every later reply carries the new stamp. A monitor
        // that cannot hear us (partitioned) keeps its old epoch — its
        // post-heal frames are provably stale and the new coordinator
        // rejects them until epoch repair readmits it.
        for (idx, link) in links.iter().enumerate() {
            let _ = link.send(ControlFrame::seal(
                epoch,
                CoordinatorToMonitor::NewEpoch { epoch },
            ));
            let restored = snapshot
                .as_ref()
                .and_then(|s| s.samplers.get(idx).copied().flatten());
            match restored {
                Some(sampler) => {
                    let _ = link.send(ControlFrame::seal(
                        epoch,
                        CoordinatorToMonitor::RestoreState { snapshot: sampler },
                    ));
                    report.checkpoint_restores += 1;
                }
                None => {
                    // The paper's conservative restart: back to the
                    // default interval and the even allowance share.
                    let _ = link.send(ControlFrame::seal(
                        epoch,
                        CoordinatorToMonitor::ResetSampler,
                    ));
                    let _ = link.send(ControlFrame::seal(
                        epoch,
                        CoordinatorToMonitor::SetAllowance {
                            err: global_err / n as f64,
                        },
                    ));
                    report.conservative_restarts += 1;
                }
            }
        }

        // Fresh channels: monitor frames sent to the dead incarnation are
        // stranded with its receiver instead of leaking into the standby.
        let (to_coord_tx, to_coord_rx) = unbounded::<Bytes>();
        out_link.replace(to_coord_tx);
        let (summary_tx, summary_rx) = unbounded::<Bytes>();

        let resume_last = tick.checked_sub(1);
        let next_update = snapshot.as_ref().map_or_else(
            || tick + self.allocation.update_period_ticks,
            |s| s.next_update_tick,
        );
        let plan = self.fault_plan.without_coordinator_crashes_through(tick);
        let handle = self.spawn_coordinator(
            epoch,
            Some((resume_last, next_update)),
            plan,
            wal,
            to_coord_rx,
            links,
            summary_tx,
        )?;
        Ok((summary_rx, handle))
    }

    /// Replaces a quarantined monitor with a fresh actor: new inbox, a
    /// fresh sampler at the default interval (its learned schedule died
    /// with it), the even share of the error allowance, and the current
    /// coordinator epoch. Process faults (crash/stall) are stripped from
    /// the restarted actor's plan — its predecessor already acted them
    /// out — while network faults (including partitions) keep applying.
    fn restart_monitor(
        &self,
        monitor: MonitorId,
        links: &[MonitorLink],
        out_link: &MonitorLink,
        global_err: f64,
        n: usize,
        epoch: u64,
    ) -> std::thread::JoinHandle<()> {
        let idx = monitor.0 as usize;
        let m = &self.spec.monitors()[idx];
        let (tx, rx) = unbounded::<Bytes>();
        let mut sampler = AdaptiveSampler::new(*self.spec.adaptation(), m.local_threshold);
        sampler.set_error_allowance(global_err / n as f64);
        let mut actor = MonitorActor::new(m.id, sampler)
            .with_faults(self.fault_plan.without_process_faults(monitor))
            .with_epoch(epoch)
            .with_obs(&self.obs);
        if let Some(recorder) = &self.recorder {
            actor = actor.with_recorder(recorder.clone());
        }
        let outbox = out_link.clone();
        let handle = std::thread::spawn(move || actor.run(rx, outbox));
        // Swapping the link drops the old sender: a stalled predecessor
        // sees its inbox disconnect and exits.
        links[idx].replace(tx);
        handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(monitors: usize, threshold: f64, err: f64) -> TaskSpec {
        TaskSpec::builder(threshold)
            .monitors(monitors)
            .error_allowance(err)
            .max_interval(8)
            .patience(3)
            .warmup_samples(3)
            .build()
            .unwrap()
    }

    #[test]
    fn quiet_run_has_no_alerts_and_saves_cost() {
        let spec = spec(3, 1000.0, 0.05);
        let traces = vec![vec![5.0; 800], vec![10.0; 800], vec![20.0; 800]];
        let report = TaskRunner::new(&spec).unwrap().run(&traces).unwrap();
        assert_eq!(report.ticks, 800);
        assert_eq!(report.alerts, 0);
        assert_eq!(report.polls, 0);
        assert_eq!(report.missed_tick_reports, 0);
        assert_eq!(report.quarantines, 0);
        assert_eq!(report.coordinator_failovers, 0);
        assert_eq!(report.stale_epoch_frames, 0);
        assert!(
            report.cost_ratio(3) < 0.7,
            "cost ratio {}",
            report.cost_ratio(3)
        );
    }

    #[test]
    fn global_violation_is_detected() {
        let spec = spec(2, 100.0, 0.01);
        let mut a = vec![10.0; 300];
        let mut b = vec![10.0; 300];
        a[250] = 80.0; // local threshold 50 exceeded
        b[250] = 70.0; // sum 150 > 100
        let report = TaskRunner::new(&spec)
            .unwrap()
            .run([a, b].as_ref())
            .unwrap();
        // Monitors at the default interval early on sample every tick;
        // tick 250 may fall inside a grown interval, but both streams are
        // identical constants so both monitors share the same schedule —
        // if either samples tick 250 the alert fires. Verify the benign
        // case cannot alert and the polled case sums correctly instead.
        assert!(report.alerts <= 1);
        if report.alerts == 1 {
            assert_eq!(report.alert_ticks, vec![250]);
        }
    }

    #[test]
    fn violation_at_default_interval_is_always_caught() {
        // err = 0 keeps every monitor at the default interval.
        let spec = spec(2, 100.0, 0.0);
        let mut a = vec![10.0; 100];
        let b = vec![10.0; 100];
        a[57] = 95.0; // sum 105 > 100, local threshold 50 < 95
        let report = TaskRunner::new(&spec)
            .unwrap()
            .run([a, b].as_ref())
            .unwrap();
        assert_eq!(report.alerts, 1);
        assert_eq!(report.alert_ticks, vec![57]);
        assert_eq!(report.scheduled_samples, 200);
        // At err = 0 every monitor samples every tick, so the poll needs
        // no forced samples.
        assert_eq!(report.poll_samples, 0);
        assert_eq!(report.polls, 1);
    }

    #[test]
    fn trace_count_mismatch_rejected() {
        let spec = spec(2, 100.0, 0.01);
        let err = TaskRunner::new(&spec)
            .unwrap()
            .run(&[vec![1.0; 10]])
            .unwrap_err();
        assert!(matches!(
            err,
            VolleyError::ValueCountMismatch {
                got: 1,
                expected: 2
            }
        ));
    }

    #[test]
    fn full_report_loss_misses_everything() {
        let spec = spec(1, 50.0, 0.0);
        let mut trace = vec![10.0; 100];
        trace[30] = 99.0;
        let report = TaskRunner::new(&spec)
            .unwrap()
            .with_failure(FailureInjector::new(1.0, 3))
            .run([trace].as_ref())
            .unwrap();
        assert_eq!(report.alerts, 0, "all reports dropped → no alerts");
        assert_eq!(report.polls, 0);
    }

    #[test]
    fn matches_reference_distributed_task() {
        // The threaded runtime and the step-driven core implementation
        // must agree on alerts and sample counts for identical inputs.
        let spec = spec(2, 200.0, 0.03);
        let traces: Vec<Vec<f64>> = (0..2)
            .map(|m| {
                (0..1500u64)
                    .map(|t| {
                        let base = 20.0 + 10.0 * (m as f64);
                        let wob = ((t * (7 + m as u64)) % 13) as f64;
                        if t % 400 == 399 {
                            base + 150.0 + wob
                        } else {
                            base + wob
                        }
                    })
                    .collect()
            })
            .collect();
        let runtime_report = TaskRunner::new(&spec).unwrap().run(&traces).unwrap();

        let mut reference = volley_core::DistributedTask::new(&spec).unwrap();
        let mut ref_alerts = Vec::new();
        let mut ref_samples = 0u64;
        for tick in 0..1500u64 {
            let values = [traces[0][tick as usize], traces[1][tick as usize]];
            let out = reference.step(tick, &values).unwrap();
            ref_samples += u64::from(out.total_samples());
            if out.alerted() {
                ref_alerts.push(tick);
            }
        }
        assert_eq!(runtime_report.alert_ticks, ref_alerts);
        assert_eq!(runtime_report.total_samples, ref_samples);
    }

    #[test]
    fn recorder_captures_every_sample_and_alert() {
        use volley_store::{RecordKind, SampleRecorder, ScanRange, Store};
        let dir = std::env::temp_dir().join(format!("volley-runner-rec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = spec(2, 50.0, 0.0);
        let mut traces = vec![vec![5.0; 120], vec![10.0; 120]];
        traces[0][60..70].fill(80.0); // aggregate 90 > 50: a held violation
        let recorder = SampleRecorder::new(Store::open(&dir).unwrap());
        let report = TaskRunner::new(&spec)
            .unwrap()
            .with_recorder(recorder.clone())
            .run(&traces)
            .unwrap();
        assert_eq!(recorder.io_errors(), 0);
        let samples = recorder.with_store(|s| {
            s.scan(&ScanRange::all().kind(RecordKind::Sample))
                .unwrap()
                .count() as u64
        });
        let polls = recorder.with_store(|s| {
            s.scan(&ScanRange::all().kind(RecordKind::PollSample))
                .unwrap()
                .count() as u64
        });
        assert_eq!(samples + polls, report.total_samples);
        let alert_ticks: Vec<Tick> = recorder.with_store(|s| {
            s.scan(&ScanRange::all().kind(RecordKind::Alert))
                .unwrap()
                .map(|r| r.tick)
                .collect()
        });
        assert_eq!(alert_ticks, report.alert_ticks);
        // err = 0 keeps every interval at 1: exactly one initial
        // IntervalChange record per monitor.
        let interval_changes = recorder.with_store(|s| {
            s.scan(&ScanRange::all().kind(RecordKind::IntervalChange))
                .unwrap()
                .count()
        });
        assert_eq!(interval_changes, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn even_scheme_runs() {
        let spec = spec(2, 1000.0, 0.02);
        let traces = vec![vec![1.0; 300], vec![2.0; 300]];
        let report = TaskRunner::new(&spec)
            .unwrap()
            .with_scheme(CoordinationScheme::Even)
            .run(&traces)
            .unwrap();
        assert_eq!(report.alerts, 0);
    }

    #[test]
    fn crashed_monitor_is_restarted_and_run_completes() {
        let spec = spec(2, 1000.0, 0.02);
        let traces = vec![vec![1.0; 60], vec![2.0; 60]];
        let report = TaskRunner::new(&spec)
            .unwrap()
            .with_fault_plan(FaultPlan::new(7).with_crash(MonitorId(1), 5))
            .with_tick_deadline(Duration::from_millis(25))
            .with_quarantine_after(2)
            .run(&traces)
            .unwrap();
        assert_eq!(report.ticks, 60, "the run must not hang or truncate");
        assert_eq!(report.quarantines, 1);
        assert_eq!(report.restarts, 1);
        assert_eq!(report.recoveries, 1, "restarted monitor reports again");
        assert!(
            report.missed_tick_reports >= 2,
            "the dead rounds are accounted for"
        );
    }

    #[test]
    fn unsupervised_crash_runs_degraded_to_completion() {
        let spec = spec(2, 1000.0, 0.02);
        let traces = vec![vec![1.0; 40], vec![2.0; 40]];
        let report = TaskRunner::new(&spec)
            .unwrap()
            .with_fault_plan(FaultPlan::new(7).with_crash(MonitorId(1), 5))
            .with_tick_deadline(Duration::from_millis(25))
            .with_quarantine_after(2)
            .with_supervision(false)
            .run(&traces)
            .unwrap();
        assert_eq!(report.ticks, 40);
        assert_eq!(report.restarts, 0);
        assert_eq!(report.recoveries, 0);
        // Dead from tick 5 onward: every later tick misses its report.
        assert!(report.missed_tick_reports >= 34);
    }

    #[test]
    fn coordinator_crash_without_standby_errors() {
        let spec = spec(2, 1000.0, 0.02);
        let traces = vec![vec![1.0; 40], vec![2.0; 40]];
        let err = TaskRunner::new(&spec)
            .unwrap()
            .with_fault_plan(FaultPlan::new(7).with_coordinator_crash(10))
            .with_tick_deadline(Duration::from_millis(25))
            .run(&traces)
            .unwrap_err();
        assert!(matches!(
            err,
            VolleyError::RuntimeDisconnected {
                component: "coordinator"
            }
        ));
    }

    #[test]
    fn standby_fails_over_and_completes_conservatively() {
        // No WAL: the standby resets every sampler at I_d and the run
        // still finishes every tick.
        let spec = spec(2, 1000.0, 0.02);
        let traces = vec![vec![1.0; 40], vec![2.0; 40]];
        let report = TaskRunner::new(&spec)
            .unwrap()
            .with_fault_plan(FaultPlan::new(7).with_coordinator_crash(10))
            .with_tick_deadline(Duration::from_millis(25))
            .with_standby(true)
            .run(&traces)
            .unwrap();
        assert_eq!(report.ticks, 40, "failover must not lose ticks");
        assert_eq!(report.coordinator_failovers, 1);
        assert_eq!(report.checkpoint_restores, 0);
        assert_eq!(report.conservative_restarts, 2);
        assert_eq!(report.alerts, 0);
    }

    #[test]
    fn standby_restores_from_checkpoint() {
        let dir = std::env::temp_dir().join("volley-runner-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("restore-{}.wal", std::process::id()));
        let spec = spec(2, 1000.0, 0.02);
        let traces = vec![vec![1.0; 60], vec![2.0; 60]];
        let report = TaskRunner::new(&spec)
            .unwrap()
            .with_fault_plan(FaultPlan::new(7).with_coordinator_crash(30))
            .with_tick_deadline(Duration::from_millis(50))
            .with_standby(true)
            .with_wal(&path, 5)
            .run(&traces)
            .unwrap();
        assert_eq!(report.ticks, 60);
        assert_eq!(report.coordinator_failovers, 1);
        assert_eq!(
            report.checkpoint_restores, 2,
            "both samplers restored from the tick-25 snapshot"
        );
        assert_eq!(report.conservative_restarts, 0);
        std::fs::remove_file(&path).ok();
    }
}
