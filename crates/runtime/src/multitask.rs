//! Multi-task correlation suppression on the threaded runtime (§II.B).
//!
//! A [`MultiTaskRunner`] drives several distributed monitoring tasks in
//! lock-step on real threads — each with its own monitor actors and
//! coordinator — and layers the paper's multi-task scheme on top: for a
//! **training window** it feeds every task's detected violation activity
//! into a [`CorrelationDetector`]; once the window closes it derives a
//! two-level [`MonitoringPlan`] and thereafter paces each *gated
//! follower* task at the coarse gated interval while its *leader*
//! (precondition) task's violation likelihood is low, snapping the
//! follower back to its adaptive schedule the moment the leader fires.
//!
//! Leaders are never gated — the plan keeps the leader/follower sets
//! disjoint — so the tasks whose violations *precede* others always run
//! at full fidelity.
//!
//! # Determinism
//!
//! Gate propagation is runner-driven: the runner sends
//! [`CoordinatorToMonitor::SetGate`] frames on each follower monitor's
//! inbox link itself, FIFO-ordered with that tick's
//! [`CoordinatorToMonitor::Tick`] frame, so the tick at which a gate
//! engages or releases is a pure function of the traces. The follower's
//! coordinator is configured with
//! [`CoordinatorActor::with_external_gate_driver`]: it still consumes
//! the [`MonitorToCoordinator::LeaderState`] notices (sent ahead of the
//! tick's data frames on the shared monitor→coordinator channel), tracks
//! engage/release state, counts suppressed samples and checkpoints the
//! gate through the WAL/snapshot plane — it just does not race its own
//! `SetGate` broadcast against the runner's.
//!
//! ```
//! use volley_core::correlation::CorrelationConfig;
//! use volley_core::task::TaskSpec;
//! use volley_runtime::multitask::{MultiTask, MultiTaskConfig, MultiTaskRunner};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = TaskSpec::builder(100.0).monitors(1).error_allowance(0.05).build()?;
//! // Leader bursts at ticks 10..20 of every 40; the follower echoes it
//! // two ticks later — a violation cascade the detector can learn.
//! let burst = |offset: u64| -> Vec<f64> {
//!     (0..400u64)
//!         .map(|t| if (10 + offset..20 + offset).contains(&(t % 40)) { 200.0 } else { 5.0 })
//!         .collect()
//! };
//! let tasks = vec![
//!     MultiTask::new(spec.clone(), vec![burst(0)]),
//!     MultiTask::new(spec, vec![burst(2)]),
//! ];
//! let config = MultiTaskConfig {
//!     correlation: CorrelationConfig { min_support: 5, min_confidence: 0.8, ..Default::default() },
//!     train_ticks: 200,
//!     costs: None,
//! };
//! let outcome = MultiTaskRunner::new(config)?.run(&tasks)?;
//! assert_eq!(outcome.gates.len(), 1, "follower gated behind the leader");
//! # Ok(())
//! # }
//! ```
//!
//! [`CorrelationDetector`]: volley_core::correlation::CorrelationDetector
//! [`MonitoringPlan`]: volley_core::correlation::MonitoringPlan
//! [`CoordinatorToMonitor::SetGate`]: crate::message::CoordinatorToMonitor::SetGate
//! [`CoordinatorToMonitor::Tick`]: crate::message::CoordinatorToMonitor::Tick
//! [`MonitorToCoordinator::LeaderState`]: crate::message::MonitorToCoordinator::LeaderState
//! [`CoordinatorActor::with_external_gate_driver`]: crate::coordinator::CoordinatorActor::with_external_gate_driver

use std::path::PathBuf;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver};
use serde::Serialize;

use volley_core::allocation::{AllocationConfig, ErrorAllocator};
use volley_core::correlation::{CorrelationConfig, CorrelationDetector, MonitoringPlan};
use volley_core::task::{TaskId, TaskSpec};
use volley_core::time::Tick;
use volley_core::{AdaptiveSampler, VolleyError};
use volley_obs::Obs;
use volley_store::SampleRecorder;

use crate::checkpoint::Wal;
use crate::coordinator::CoordinatorActor;
use crate::failure::FailureInjector;
use crate::link::MonitorLink;
use crate::message::{
    decode, ControlFrame, CoordinatorToMonitor, CoordinatorToRunner, MonitorFrame,
    MonitorToCoordinator, TickData,
};
use crate::monitor::MonitorActor;
use crate::runner::{MultitaskReport, RuntimeReport};

/// One task submission for a multi-task run.
#[derive(Debug, Clone)]
pub struct MultiTask {
    /// The task specification.
    pub spec: TaskSpec,
    /// Per-monitor ground-truth traces (`traces[i][t]`).
    pub traces: Vec<Vec<f64>>,
}

impl MultiTask {
    /// Creates a submission.
    pub fn new(spec: TaskSpec, traces: Vec<Vec<f64>>) -> Self {
        MultiTask { spec, traces }
    }
}

/// Configuration for the multi-task scheme.
#[derive(Debug, Clone)]
pub struct MultiTaskConfig {
    /// Correlation thresholds and the gated (coarse) interval.
    pub correlation: CorrelationConfig,
    /// Ticks spent learning correlations before the plan is derived and
    /// gating starts. A window at least as long as the run disables
    /// gating entirely (pure observation).
    pub train_ticks: Tick,
    /// Optional per-task sampling costs for
    /// [`CorrelationDetector::plan_with_costs`]; uniform costs
    /// ([`CorrelationDetector::plan`]) when `None`.
    pub costs: Option<Vec<f64>>,
}

impl Default for MultiTaskConfig {
    fn default() -> Self {
        MultiTaskConfig {
            correlation: CorrelationConfig::default(),
            train_ticks: 200,
            costs: None,
        }
    }
}

/// One gate of the derived [`MonitoringPlan`], flattened for reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PlanGate {
    /// The gated follower task (index into the submissions).
    pub follower: u64,
    /// The leader (precondition) task pacing it.
    pub leader: u64,
    /// Necessity confidence `P(leader active within lag | follower
    /// violates)` estimated over the training window.
    pub confidence: f64,
    /// Coarse interval applied while the leader is calm (ticks).
    pub gated_interval: u32,
}

/// Aggregate result of a multi-task run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTaskOutcome {
    /// Per-task reports in submission order. Gated followers carry a
    /// populated [`RuntimeReport::multitask`] section.
    pub reports: Vec<RuntimeReport>,
    /// The gates of the derived plan (empty when training never closed
    /// or nothing correlated).
    pub gates: Vec<PlanGate>,
    /// Ticks driven.
    pub ticks: u64,
    /// Ticks spent training before gating could start.
    pub train_ticks: u64,
    /// Scheduled samples suppressed by gates across all tasks.
    pub suppressed_samples: u64,
    /// Gate engage/release transitions across all tasks.
    pub gate_flips: u64,
}

impl MultiTaskOutcome {
    /// Total sampling operations across all tasks.
    pub fn total_samples(&self) -> u64 {
        self.reports.iter().map(|r| r.total_samples).sum()
    }
}

/// Per-task actor handles for one lock-step run.
struct TaskActors {
    links: Vec<MonitorLink>,
    out_link: MonitorLink,
    summary_rx: Receiver<Bytes>,
    monitor_handles: Vec<std::thread::JoinHandle<()>>,
    coord_handle: std::thread::JoinHandle<()>,
}

/// Drives several monitoring tasks in lock-step with live §II.B
/// correlation suppression (see the [module docs](self)).
#[derive(Debug)]
pub struct MultiTaskRunner {
    config: MultiTaskConfig,
    recorder: Option<SampleRecorder>,
    obs: Obs,
    /// Checkpoint directory and snapshot cadence; each task logs to
    /// `task-{index}.wal` inside it.
    wal: Option<(PathBuf, u64)>,
}

impl MultiTaskRunner {
    /// Creates a runner.
    ///
    /// # Errors
    ///
    /// Returns [`VolleyError::InvalidConfig`] for an invalid
    /// [`CorrelationConfig`].
    pub fn new(config: MultiTaskConfig) -> Result<Self, VolleyError> {
        config.correlation.validate()?;
        Ok(MultiTaskRunner {
            config,
            recorder: None,
            obs: Obs::disabled(),
            wal: None,
        })
    }

    /// Attaches a [`SampleRecorder`]: each task records under its
    /// submission index (via [`SampleRecorder::for_task`]), producing the
    /// multi-task store that `volley analyze correlate` consumes.
    #[must_use]
    pub fn with_recorder(mut self, recorder: SampleRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Shares an observability bundle with every task's actors (the
    /// multi-task counters `volley_multitask_*` land in it).
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Checkpoints every coordinator into `dir/task-{index}.wal` with a
    /// snapshot every `every` ticks, persisting each follower's gate
    /// state through the WAL/snapshot plane.
    #[must_use]
    pub fn with_wal_dir(mut self, dir: impl Into<PathBuf>, every: u64) -> Self {
        self.wal = Some((dir.into(), every.max(1)));
        self
    }

    /// Runs all submissions in lock-step and returns per-task reports
    /// plus the derived gating plan.
    ///
    /// # Errors
    ///
    /// Returns [`VolleyError::EmptyTask`] for a spec without monitors,
    /// [`VolleyError::ValueCountMismatch`] when a submission's trace
    /// count differs from its monitor count, and
    /// [`VolleyError::RuntimeDisconnected`] if a coordinator dies
    /// mid-run (the multi-task runner arms no standby).
    pub fn run(&self, tasks: &[MultiTask]) -> Result<MultiTaskOutcome, VolleyError> {
        let n_tasks = tasks.len();
        let mut ticks = u64::MAX;
        for task in tasks {
            if task.spec.monitors().is_empty() {
                return Err(VolleyError::EmptyTask);
            }
            if task.traces.len() != task.spec.monitors().len() {
                return Err(VolleyError::ValueCountMismatch {
                    got: task.traces.len(),
                    expected: task.spec.monitors().len(),
                });
            }
            for trace in &task.traces {
                ticks = ticks.min(trace.len() as u64);
            }
        }
        if n_tasks == 0 || ticks == u64::MAX {
            return Ok(MultiTaskOutcome {
                reports: Vec::new(),
                gates: Vec::new(),
                ticks: 0,
                train_ticks: self.config.train_ticks,
                suppressed_samples: 0,
                gate_flips: 0,
            });
        }

        let mut actors = Vec::with_capacity(n_tasks);
        for (index, task) in tasks.iter().enumerate() {
            actors.push(self.spawn_task(index, task)?);
        }

        let mut detector = CorrelationDetector::new(
            self.config.correlation,
            (0..n_tasks as u64).map(TaskId).collect(),
        );
        let mut plan: Option<MonitoringPlan> = None;
        // Submission order with every gated follower moved after the
        // ungated tasks, so a follower's gate decision at tick `t` sees
        // its leader's activity *including* tick `t`.
        let mut order: Vec<usize> = (0..n_tasks).collect();
        // Last tick each task's violation activity was *detected*
        // (locally reported or alerted), the §II.B precondition signal.
        let mut last_active: Vec<Option<Tick>> = vec![None; n_tasks];
        let mut engaged = vec![false; n_tasks];
        let mut active_now = vec![false; n_tasks];
        let mut reports = vec![RuntimeReport::default(); n_tasks];
        let mut sections = vec![MultitaskReport::default(); n_tasks];

        for tick in 0..ticks {
            for &index in &order {
                let task = &tasks[index];
                let actor = &actors[index];
                // Drive this follower's gate ahead of its tick frame:
                // SetGate shares the monitor inbox FIFO with Tick, and the
                // LeaderState notice shares the monitor→coordinator FIFO
                // with the TickDones it must precede.
                if let Some(gate) = plan.as_ref().and_then(|p| p.gate(TaskId(index as u64))) {
                    let leader_active = last_active[gate.leader.0 as usize].is_some_and(|at| {
                        tick - at <= u64::from(self.config.correlation.lag_window)
                    });
                    let engage = !leader_active;
                    if engage != engaged[index] {
                        engaged[index] = engage;
                        sections[index].gate_flips += 1;
                        let interval = engage.then(|| gate.gated_interval.get());
                        let set = ControlFrame::seal(0, CoordinatorToMonitor::SetGate { interval });
                        for link in &actor.links {
                            let _ = link.send(set.clone());
                        }
                        let _ = actor.out_link.send(MonitorFrame::seal(
                            0,
                            MonitorToCoordinator::LeaderState {
                                tick,
                                active: leader_active,
                            },
                        ));
                    }
                    if engaged[index] {
                        sections[index].gated_ticks += 1;
                    }
                }
                for (i, link) in actor.links.iter().enumerate() {
                    let data = TickData {
                        tick,
                        value: task.traces[i][tick as usize],
                    };
                    let _ = link.send(ControlFrame::seal(0, CoordinatorToMonitor::Tick(data)));
                }
                let summary = loop {
                    let Ok(frame) = actor.summary_rx.recv() else {
                        return Err(VolleyError::RuntimeDisconnected {
                            component: "coordinator",
                        });
                    };
                    match decode::<CoordinatorToRunner>(&frame) {
                        Ok(CoordinatorToRunner::Summary(summary)) => break summary,
                        Ok(CoordinatorToRunner::MonitorQuarantined { .. }) => {
                            reports[index].quarantines += 1;
                        }
                        Ok(CoordinatorToRunner::MonitorRecovered { .. }) => {
                            reports[index].recoveries += 1;
                        }
                        Err(_) => {} // never produced by our coordinator
                    }
                };
                active_now[index] = summary.local_violations > 0 || summary.alerted;
                if active_now[index] {
                    last_active[index] = Some(tick);
                }
                let report = &mut reports[index];
                report.ticks += 1;
                report.scheduled_samples += u64::from(summary.scheduled_samples);
                report.poll_samples += u64::from(summary.poll_samples);
                report.local_violation_reports += u64::from(summary.local_violations);
                report.missed_tick_reports += u64::from(summary.missing_reports);
                sections[index].suppressed_samples += u64::from(summary.suppressed_samples);
                if summary.polled {
                    report.polls += 1;
                    if summary.degraded {
                        report.degraded_polls += 1;
                    }
                }
                if summary.alerted {
                    report.alerts += 1;
                    report.alert_ticks.push(summary.tick);
                    if summary.degraded {
                        report.degraded_alerts += 1;
                    }
                    if let Some(recorder) = &self.recorder {
                        recorder
                            .for_task(index as u32)
                            .record_alert(summary.tick, summary.degraded);
                    }
                }
            }
            detector.observe(tick, &active_now);
            // Derive the plan only when gating still has ticks to act on;
            // a training window at least as long as the run stays pure
            // observation and reports no gates.
            if tick + 1 == self.config.train_ticks && tick + 1 < ticks {
                let derived = match &self.config.costs {
                    Some(costs) => detector.plan_with_costs(costs),
                    None => detector.plan(),
                };
                order.sort_by_key(|&i| derived.gate(TaskId(i as u64)).is_some());
                plan = Some(derived);
            }
        }

        // Teardown: stop monitors, join them, cut the monitor→coordinator
        // channel so each coordinator exits on disconnect.
        for actor in actors {
            for link in &actor.links {
                let _ = link.send(ControlFrame::seal(0, CoordinatorToMonitor::Shutdown));
            }
            for handle in actor.monitor_handles {
                handle.join().expect("monitor thread exits cleanly");
            }
            drop(actor.links);
            drop(actor.out_link);
            actor
                .coord_handle
                .join()
                .expect("coordinator thread exits cleanly");
        }
        if let Some(recorder) = &self.recorder {
            recorder.flush();
        }

        let mut gates = Vec::new();
        if let Some(plan) = &plan {
            for (follower, gate) in plan.iter() {
                gates.push(PlanGate {
                    follower: follower.0,
                    leader: gate.leader.0,
                    confidence: gate.confidence,
                    gated_interval: gate.gated_interval.get(),
                });
            }
            gates.sort_by_key(|g| g.follower);
        }
        let mut suppressed_samples = 0;
        let mut gate_flips = 0;
        for (index, report) in reports.iter_mut().enumerate() {
            report.total_samples = report.scheduled_samples + report.poll_samples;
            if let Some(gate) = plan.as_ref().and_then(|p| p.gate(TaskId(index as u64))) {
                let section = MultitaskReport {
                    leader: gate.leader.0,
                    ..sections[index]
                };
                suppressed_samples += section.suppressed_samples;
                gate_flips += section.gate_flips;
                report.multitask = Some(section);
            }
        }
        Ok(MultiTaskOutcome {
            reports,
            gates,
            ticks,
            train_ticks: self.config.train_ticks,
            suppressed_samples,
            gate_flips,
        })
    }

    /// Spawns one task's monitor actors and coordinator.
    fn spawn_task(&self, index: usize, task: &MultiTask) -> Result<TaskActors, VolleyError> {
        let n = task.spec.monitors().len();
        let global_err = task.spec.adaptation().error_allowance();
        let (to_coord_tx, to_coord_rx) = unbounded::<Bytes>();
        let out_link = MonitorLink::new(to_coord_tx);
        let mut links = Vec::with_capacity(n);
        let mut monitor_handles = Vec::with_capacity(n);
        for m in task.spec.monitors() {
            let (tx, rx) = unbounded::<Bytes>();
            links.push(MonitorLink::new(tx));
            let mut sampler = AdaptiveSampler::new(*task.spec.adaptation(), m.local_threshold);
            sampler.set_error_allowance(global_err / n as f64);
            let mut actor = MonitorActor::new(m.id, sampler).with_obs(&self.obs);
            if let Some(recorder) = &self.recorder {
                actor = actor.with_recorder(recorder.for_task(index as u32));
            }
            let outbox = out_link.clone();
            monitor_handles.push(std::thread::spawn(move || actor.run(rx, outbox)));
        }
        let allocator = ErrorAllocator::new(AllocationConfig::default(), global_err, n)?;
        let local_thresholds = task
            .spec
            .monitors()
            .iter()
            .map(|m| m.local_threshold)
            .collect();
        let mut coordinator = CoordinatorActor::new(
            task.spec.global_threshold(),
            local_thresholds,
            allocator,
            task.spec.adaptation().slack_ratio(),
            true,
            FailureInjector::lossless(),
        )
        .with_multitask(self.config.correlation.gated_interval.get())
        .with_external_gate_driver()
        .with_obs(&self.obs);
        if let Some((dir, every)) = &self.wal {
            let path = dir.join(format!("task-{index}.wal"));
            if let Ok(wal) = Wal::create(&path) {
                coordinator = coordinator.with_checkpoint(wal, *every);
            }
        }
        let coord_links = links.clone();
        let (summary_tx, summary_rx) = unbounded::<Bytes>();
        let coord_handle =
            std::thread::spawn(move || coordinator.run(to_coord_rx, coord_links, summary_tx));
        Ok(TaskActors {
            links,
            out_link,
            summary_rx,
            monitor_handles,
            coord_handle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::Replay;

    fn spec(threshold: f64) -> TaskSpec {
        TaskSpec::builder(threshold)
            .monitors(1)
            .error_allowance(0.05)
            .max_interval(4)
            .patience(2)
            .warmup_samples(2)
            .build()
            .unwrap()
    }

    /// A value trace violating (200 > 100) on `offset..offset+8` of every
    /// 40-tick period, calm (5) otherwise.
    fn burst_trace(ticks: u64, offset: u64) -> Vec<f64> {
        (0..ticks)
            .map(|t| {
                if (offset..offset + 8).contains(&(t % 40)) {
                    200.0
                } else {
                    5.0
                }
            })
            .collect()
    }

    fn cascade(ticks: u64) -> Vec<MultiTask> {
        vec![
            // Leader: bursts open each period.
            MultiTask::new(spec(100.0), vec![burst_trace(ticks, 10)]),
            // Follower: echoes the leader two ticks later.
            MultiTask::new(spec(100.0), vec![burst_trace(ticks, 12)]),
            // Bystander: never violates, correlates with nothing.
            MultiTask::new(spec(100.0), vec![vec![5.0; ticks as usize]]),
        ]
    }

    fn config() -> MultiTaskConfig {
        MultiTaskConfig {
            correlation: CorrelationConfig {
                min_confidence: 0.8,
                min_support: 5,
                ..Default::default()
            },
            train_ticks: 200,
            costs: None,
        }
    }

    #[test]
    fn follower_is_gated_behind_its_leader_and_saves_samples() {
        let outcome = MultiTaskRunner::new(config())
            .unwrap()
            .run(&cascade(600))
            .unwrap();
        assert_eq!(outcome.ticks, 600);
        assert_eq!(
            outcome.gates.len(),
            1,
            "exactly the cascade pair gates: {:?}",
            outcome.gates
        );
        assert_eq!(outcome.gates[0].follower, 1);
        assert_eq!(outcome.gates[0].leader, 0);
        assert!(outcome.gates[0].confidence >= 0.8);
        // The leader runs ungated at full fidelity.
        assert!(outcome.reports[0].multitask.is_none());
        assert!(outcome.reports[0].alerts > 0);
        // The follower is paced while the leader is calm…
        let section = outcome.reports[1].multitask.expect("follower gated");
        assert_eq!(section.leader, 0);
        assert!(section.suppressed_samples > 0, "gate suppressed samples");
        assert!(section.gated_ticks > 0);
        assert!(section.gate_flips >= 2, "engages and releases every burst");
        // …yet still detects its post-training bursts: snap-back works.
        let post_train_alerts = outcome.reports[1]
            .alert_ticks
            .iter()
            .filter(|&&t| t >= 200)
            .count();
        assert!(post_train_alerts > 0, "gated follower still alerts");
        // Savings against the identical run with gating disabled.
        let mut ungated_config = config();
        ungated_config.train_ticks = 600;
        let ungated = MultiTaskRunner::new(ungated_config)
            .unwrap()
            .run(&cascade(600))
            .unwrap();
        assert!(ungated.gates.is_empty());
        assert!(
            outcome.reports[1].total_samples < ungated.reports[1].total_samples,
            "gating saves follower samples ({} vs {})",
            outcome.reports[1].total_samples,
            ungated.reports[1].total_samples,
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let runner = MultiTaskRunner::new(config()).unwrap();
        let first = runner.run(&cascade(400)).unwrap();
        let second = runner.run(&cascade(400)).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn gate_state_checkpoints_through_the_wal_plane() {
        let dir = std::env::temp_dir().join(format!("volley-multitask-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let outcome = MultiTaskRunner::new(config())
            .unwrap()
            .with_wal_dir(&dir, 1)
            .run(&cascade(400))
            .unwrap();
        let section = outcome.reports[1].multitask.expect("follower gated");
        let replay: Replay = Wal::replay(dir.join("task-1.wal")).unwrap();
        let snap = replay.snapshot.expect("snapshot persisted");
        let persisted = snap.multitask.expect("gate state checkpointed");
        assert_eq!(persisted.flips, section.gate_flips);
        // The final tick's suppression lands after that tick's snapshot,
        // so the persisted counter may trail by at most one monitor-tick.
        assert!(persisted.suppressed <= section.suppressed_samples);
        assert!(persisted.suppressed + 1 >= section.suppressed_samples);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_traces_are_rejected() {
        let bad = vec![MultiTask::new(spec(100.0), vec![])];
        let err = MultiTaskRunner::new(config())
            .unwrap()
            .run(&bad)
            .unwrap_err();
        assert!(matches!(err, VolleyError::ValueCountMismatch { .. }));
    }

    #[test]
    fn empty_submission_list_is_trivial() {
        let outcome = MultiTaskRunner::new(config()).unwrap().run(&[]).unwrap();
        assert!(outcome.reports.is_empty());
        assert_eq!(outcome.ticks, 0);
    }
}
