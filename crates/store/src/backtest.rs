//! Offline backtesting: replay a recorded range through a candidate
//! [`TaskSpec`] and compare against what production actually did.
//!
//! The recorded `Sample`/`PollSample` series are treated as ground
//! truth. A recording made at `error_allowance = 0` samples every
//! monitor every tick, so the step-hold reconstruction *is* the true
//! signal and a same-config replay must reproduce the recorded alert
//! set exactly — the determinism gate `volley backtest --verify`
//! enforces. Candidate configs then trade that exactness for cost: the
//! replay reports the paper's Fig. 5 axes (sampling-cost ratio and
//! missed/extra alerts) against the recorded baseline.
//!
//! Replays reuse the deterministic sim clock: each tick advances a
//! fixed [`SimDuration`] window (default 15 s, the paper's monitoring
//! window), so reported elapsed time is simulated, reproducible, and
//! independent of wall-clock.

use std::collections::BTreeMap;
use std::io;

use serde::Serialize;
use volley_core::{DistributedTask, TaskSpec, Tick, VolleyError};
use volley_sim::{SimDuration, SimTime};

use crate::record::{RecordKind, TASK_WIDE};
use crate::store::{ScanRange, Store, TaskMeta};

/// Default simulated span of one tick: the paper's 15-second monitoring
/// window.
pub const DEFAULT_TICK_WINDOW: SimDuration = SimDuration::from_micros(15_000_000);

/// A recorded range loaded for replay: per-monitor step-hold series plus
/// the production alert set and sampling cost.
#[derive(Debug, Clone)]
pub struct Backtest {
    series: Vec<BTreeMap<Tick, f64>>,
    recorded_alerts: Vec<Tick>,
    recorded_samples: u64,
    from: Tick,
    to: Tick,
    window: SimDuration,
}

/// What a replay did, compared against the recording.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReplayOutcome {
    /// The candidate config's error allowance.
    pub error_allowance: f64,
    /// Ticks replayed.
    pub ticks: u64,
    /// Samples the candidate config paid for.
    pub samples: u64,
    /// Candidate sampling-cost ratio versus the periodic baseline.
    pub cost_ratio: f64,
    /// Cost ratio the recording paid over the same range.
    pub recorded_cost_ratio: f64,
    /// `cost_ratio - recorded_cost_ratio` (negative = candidate cheaper).
    pub cost_delta: f64,
    /// Ticks the replay alerted on.
    pub alert_ticks: Vec<Tick>,
    /// Recorded alerts the replay also raised.
    pub matched_alerts: usize,
    /// Recorded alerts the replay missed (mis-detections).
    pub missed_alerts: Vec<Tick>,
    /// Replay alerts the recording never raised.
    pub extra_alerts: Vec<Tick>,
    /// Whether the replay reproduced the recorded alert set exactly.
    pub exact_match: bool,
    /// Simulated time the replayed range spans.
    pub sim_elapsed: SimDuration,
}

impl Backtest {
    /// Loads task `task`'s records in `range` from the store. Returns
    /// `None` when the range holds no samples. The caller's `task` and
    /// tick bounds compose with any filters already on `range`; kind and
    /// monitor filters are overridden (a backtest needs all of them).
    pub fn load(store: &Store, task: u32, range: &ScanRange) -> io::Result<Option<Backtest>> {
        let range = ScanRange {
            task: Some(task),
            monitor: None,
            kind: None,
            ..*range
        };
        let mut series: Vec<BTreeMap<Tick, f64>> = Vec::new();
        let mut recorded_alerts = Vec::new();
        let mut recorded_samples = 0u64;
        let mut from = Tick::MAX;
        let mut to = 0;
        for record in store.scan(&range)? {
            match record.kind {
                RecordKind::Sample | RecordKind::PollSample if record.monitor != TASK_WIDE => {
                    let slot = record.monitor as usize;
                    if slot >= series.len() {
                        series.resize_with(slot + 1, BTreeMap::new);
                    }
                    series[slot].insert(record.tick, record.value);
                    recorded_samples += 1;
                    from = from.min(record.tick);
                    to = to.max(record.tick);
                }
                RecordKind::Alert => recorded_alerts.push(record.tick),
                _ => {}
            }
        }
        if recorded_samples == 0 {
            return Ok(None);
        }
        recorded_alerts.sort_unstable();
        recorded_alerts.dedup();
        // Alerts outside the sampled span can't be reproduced from the
        // data at hand; keep the comparison honest by clipping.
        recorded_alerts.retain(|&t| t >= from && t <= to);
        Ok(Some(Backtest {
            series,
            recorded_alerts,
            recorded_samples,
            from,
            to,
            window: DEFAULT_TICK_WINDOW,
        }))
    }

    /// Overrides the simulated span of one tick.
    #[must_use]
    pub fn with_window(mut self, window: SimDuration) -> Self {
        self.window = window;
        self
    }

    /// Monitors in the recording.
    pub fn monitors(&self) -> usize {
        self.series.len()
    }

    /// Ticks in the replayed range (inclusive bounds).
    pub fn ticks(&self) -> u64 {
        self.to - self.from + 1
    }

    /// The production alert ticks inside the range.
    pub fn recorded_alert_ticks(&self) -> &[Tick] {
        &self.recorded_alerts
    }

    /// Samples the recording paid for inside the range.
    pub fn recorded_samples(&self) -> u64 {
        self.recorded_samples
    }

    /// The recording's sampling-cost ratio versus the periodic baseline.
    pub fn recorded_cost_ratio(&self) -> f64 {
        let baseline = self.ticks() * self.series.len() as u64;
        if baseline == 0 {
            1.0
        } else {
            self.recorded_samples as f64 / baseline as f64
        }
    }

    /// A spec candidate built from recorded metadata with one knob
    /// swapped: the error allowance. `None` keeps the recorded value
    /// (the determinism candidate).
    pub fn candidate_spec(
        meta: &TaskMeta,
        error_allowance: Option<f64>,
    ) -> Result<TaskSpec, VolleyError> {
        TaskSpec::builder(meta.global_threshold)
            .monitors(meta.monitors)
            .error_allowance(error_allowance.unwrap_or(meta.error_allowance))
            .build()
    }

    /// Replays the range through `spec` on the sim clock.
    ///
    /// # Errors
    ///
    /// [`VolleyError::ValueCountMismatch`] when `spec` has a different
    /// monitor count than the recording; otherwise propagates task
    /// construction errors.
    pub fn replay(&self, spec: &TaskSpec) -> Result<ReplayOutcome, VolleyError> {
        let mut task = DistributedTask::new(spec)?;
        if task.monitor_count() != self.series.len() {
            return Err(VolleyError::ValueCountMismatch {
                got: task.monitor_count(),
                expected: self.series.len(),
            });
        }
        // Step-hold reconstruction: each monitor's value holds at its
        // most recent sample; before the first sample it backfills from
        // it (at error allowance 0 every tick is sampled, so backfill
        // never actually engages there).
        let mut values: Vec<f64> = self
            .series
            .iter()
            .map(|s| s.values().next().copied().unwrap_or(0.0))
            .collect();
        let mut clock = SimTime::ZERO;
        let mut alert_ticks = Vec::new();
        for tick in self.from..=self.to {
            for (slot, series) in self.series.iter().enumerate() {
                if let Some(&v) = series.get(&tick) {
                    values[slot] = v;
                }
            }
            let outcome = task.step(tick, &values)?;
            if outcome.alerted() {
                alert_ticks.push(tick);
            }
            clock += self.window;
        }
        let matched = alert_ticks
            .iter()
            .filter(|t| self.recorded_alerts.binary_search(t).is_ok())
            .count();
        let missed_alerts: Vec<Tick> = self
            .recorded_alerts
            .iter()
            .filter(|t| !alert_ticks.contains(t))
            .copied()
            .collect();
        let extra_alerts: Vec<Tick> = alert_ticks
            .iter()
            .filter(|t| self.recorded_alerts.binary_search(t).is_err())
            .copied()
            .collect();
        let recorded_cost_ratio = self.recorded_cost_ratio();
        let cost_ratio = task.cost_ratio();
        let exact_match = missed_alerts.is_empty() && extra_alerts.is_empty();
        Ok(ReplayOutcome {
            error_allowance: spec.adaptation().error_allowance(),
            ticks: self.ticks(),
            samples: task.total_samples(),
            cost_ratio,
            recorded_cost_ratio,
            cost_delta: cost_ratio - recorded_cost_ratio,
            alert_ticks,
            matched_alerts: matched,
            missed_alerts,
            extra_alerts,
            exact_match,
            sim_elapsed: clock.duration_since(SimTime::ZERO),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use std::path::PathBuf;

    const MONITORS: usize = 4;
    const TICKS: u64 = 150;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("volley-backtest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// The CLI's bursty workload: quiet baseline with synchronized
    /// bursts every 50 ticks that push the aggregate over threshold.
    fn bursty(monitor: usize, tick: u64) -> f64 {
        let local = 100.0;
        let wobble = ((tick * (3 + monitor as u64)) % 7) as f64;
        if tick % 50 == 49 {
            local * 1.4 + wobble
        } else {
            local * 0.2 + wobble
        }
    }

    /// Record a fault-free err=0 production run: every value sampled
    /// every tick, alerts from a reference DistributedTask.
    fn record_production(dir: &PathBuf) -> (Store, TaskMeta) {
        let meta = TaskMeta {
            monitors: MONITORS,
            global_threshold: 100.0 * MONITORS as f64,
            error_allowance: 0.0,
            ticks: TICKS,
            seed: 7,
        };
        let spec = Backtest::candidate_spec(&meta, None).unwrap();
        let mut reference = DistributedTask::new(&spec).unwrap();
        let mut store = Store::open(dir).unwrap().with_flush_limits(64, 40);
        for tick in 0..TICKS {
            let values: Vec<f64> = (0..MONITORS).map(|m| bursty(m, tick)).collect();
            for (m, &v) in values.iter().enumerate() {
                store
                    .append(Record {
                        task: 0,
                        monitor: m as u32,
                        kind: RecordKind::Sample,
                        tick,
                        value: v,
                    })
                    .unwrap();
            }
            if reference.step(tick, &values).unwrap().alerted() {
                store
                    .append(Record {
                        task: 0,
                        monitor: TASK_WIDE,
                        kind: RecordKind::Alert,
                        tick,
                        value: 1.0,
                    })
                    .unwrap();
            }
        }
        store.flush().unwrap();
        store.write_meta(&meta).unwrap();
        (store, meta)
    }

    #[test]
    fn same_config_replay_is_exact() {
        let dir = temp_dir("exact");
        let (store, meta) = record_production(&dir);
        let bt = Backtest::load(&store, 0, &ScanRange::all())
            .unwrap()
            .unwrap();
        assert_eq!(bt.monitors(), MONITORS);
        assert_eq!(bt.ticks(), TICKS);
        assert_eq!(bt.recorded_alert_ticks(), &[49, 99, 149]);
        assert!((bt.recorded_cost_ratio() - 1.0).abs() < 1e-12);
        let spec = Backtest::candidate_spec(&meta, None).unwrap();
        let outcome = bt.replay(&spec).unwrap();
        assert!(outcome.exact_match, "{outcome:?}");
        assert_eq!(outcome.alert_ticks, vec![49, 99, 149]);
        assert_eq!(outcome.matched_alerts, 3);
        assert!((outcome.cost_delta).abs() < 1e-12);
        assert_eq!(
            outcome.sim_elapsed,
            DEFAULT_TICK_WINDOW.saturating_mul(TICKS)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn looser_allowance_trades_cost_for_detection() {
        let dir = temp_dir("tradeoff");
        let (store, meta) = record_production(&dir);
        let bt = Backtest::load(&store, 0, &ScanRange::all())
            .unwrap()
            .unwrap();
        let candidate = Backtest::candidate_spec(&meta, Some(0.05)).unwrap();
        let outcome = bt.replay(&candidate).unwrap();
        assert!(
            outcome.cost_ratio < 1.0,
            "adaptive sampling must be cheaper: {outcome:?}"
        );
        assert!(outcome.cost_delta < 0.0);
        // The delta report stays coherent even if detection degrades.
        assert_eq!(
            outcome.matched_alerts + outcome.missed_alerts.len(),
            bt.recorded_alert_ticks().len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tick_range_clips_the_replay() {
        let dir = temp_dir("clip");
        let (store, meta) = record_production(&dir);
        let bt = Backtest::load(&store, 0, &ScanRange::all().from(60).to(120))
            .unwrap()
            .unwrap();
        assert_eq!(bt.ticks(), 61);
        assert_eq!(bt.recorded_alert_ticks(), &[99]);
        let spec = Backtest::candidate_spec(&meta, None).unwrap();
        let outcome = bt.replay(&spec).unwrap();
        // Replays of a clipped range still detect the burst inside it.
        assert!(outcome.alert_ticks.contains(&99));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_range_loads_none() {
        let dir = temp_dir("empty");
        let (store, _) = record_production(&dir);
        assert!(Backtest::load(&store, 9, &ScanRange::all())
            .unwrap()
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
