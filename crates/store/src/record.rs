//! The store's record model: one row per monitoring event.

use std::fmt;

use serde::{Deserialize, Serialize};
use volley_core::Tick;

/// The monitor index used by task-wide records ([`RecordKind::Alert`]),
/// which have no single owning monitor.
pub const TASK_WIDE: u32 = u32::MAX;

/// What a [`Record`] describes. The discriminants are part of the
/// on-disk segment format — append new kinds, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RecordKind {
    /// A scheduled sample: the monitor's sampler observed the value.
    Sample,
    /// A forced sample taken to answer a global poll.
    PollSample,
    /// A task-level state alert (`value` is 1.0, or 2.0 when the
    /// aggregation ran degraded). Monitor is [`TASK_WIDE`].
    Alert,
    /// The monitor's sampling interval changed (`value` is the new
    /// interval in default-interval units).
    IntervalChange,
    /// An observability gauge reading (`monitor` is the interned metric
    /// name id, see [`Store::metric_name`](crate::Store::metric_name)).
    Gauge,
    /// An observability counter reading (same id scheme as `Gauge`).
    Counter,
}

impl RecordKind {
    /// All kinds, in on-disk discriminant order.
    pub const ALL: [RecordKind; 6] = [
        RecordKind::Sample,
        RecordKind::PollSample,
        RecordKind::Alert,
        RecordKind::IntervalChange,
        RecordKind::Gauge,
        RecordKind::Counter,
    ];

    /// The on-disk discriminant.
    pub fn as_u8(self) -> u8 {
        match self {
            RecordKind::Sample => 0,
            RecordKind::PollSample => 1,
            RecordKind::Alert => 2,
            RecordKind::IntervalChange => 3,
            RecordKind::Gauge => 4,
            RecordKind::Counter => 5,
        }
    }

    /// Decodes an on-disk discriminant (`None` for unknown bytes, so old
    /// readers skip blocks written by newer code instead of panicking).
    pub fn from_u8(byte: u8) -> Option<RecordKind> {
        RecordKind::ALL.get(byte as usize).copied()
    }

    /// The CLI spelling (`sample`, `poll`, `alert`, `interval`, `gauge`,
    /// `counter`).
    pub fn as_str(self) -> &'static str {
        match self {
            RecordKind::Sample => "sample",
            RecordKind::PollSample => "poll",
            RecordKind::Alert => "alert",
            RecordKind::IntervalChange => "interval",
            RecordKind::Gauge => "gauge",
            RecordKind::Counter => "counter",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(text: &str) -> Option<RecordKind> {
        RecordKind::ALL.into_iter().find(|k| k.as_str() == text)
    }
}

impl fmt::Display for RecordKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One stored monitoring event. Records are tiny and `Copy`; a scan
/// yields them by value without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Owning task index.
    pub task: u32,
    /// Monitor index within the task ([`TASK_WIDE`] for task-level
    /// records, interned metric-name id for obs kinds).
    pub monitor: u32,
    /// What happened.
    pub kind: RecordKind,
    /// When it happened.
    pub tick: Tick,
    /// The payload (sample value, 0/1 flags, interval, metric reading).
    pub value: f64,
}

impl Record {
    /// The series identity a record belongs to: segments store one
    /// columnar block run per distinct key.
    pub fn key(&self) -> SeriesKey {
        SeriesKey {
            task: self.task,
            monitor: self.monitor,
            kind: self.kind,
        }
    }

    /// Total order used everywhere — by series key, then tick. Value bits
    /// never participate, so NaN payloads sort fine.
    pub fn sort_key(&self) -> (u32, u32, u8, Tick) {
        (self.task, self.monitor, self.kind.as_u8(), self.tick)
    }
}

/// The identity of one stored series: `(task, monitor, kind)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeriesKey {
    /// Owning task index.
    pub task: u32,
    /// Monitor index (or [`TASK_WIDE`] / metric-name id).
    pub monitor: u32,
    /// Record kind.
    pub kind: RecordKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_discriminants_round_trip() {
        for kind in RecordKind::ALL {
            assert_eq!(RecordKind::from_u8(kind.as_u8()), Some(kind));
            assert_eq!(RecordKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(RecordKind::from_u8(200), None);
        assert_eq!(RecordKind::parse("bogus"), None);
    }

    #[test]
    fn sort_key_orders_by_series_then_tick() {
        let a = Record {
            task: 0,
            monitor: 1,
            kind: RecordKind::Sample,
            tick: 9,
            value: 1.0,
        };
        let b = Record {
            task: 0,
            monitor: 1,
            kind: RecordKind::Sample,
            tick: 10,
            value: f64::NAN,
        };
        let c = Record {
            task: 0,
            monitor: 2,
            kind: RecordKind::Sample,
            tick: 0,
            value: 0.0,
        };
        assert!(a.sort_key() < b.sort_key());
        assert!(b.sort_key() < c.sort_key());
    }
}
