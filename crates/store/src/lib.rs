//! # volley-store
//!
//! Embedded, append-only, segmented time-series store for the Volley
//! reproduction — plus record/replay and offline backtesting on top.
//!
//! The paper's premise is that samples are expensive; this crate stops
//! throwing them away. Every sampled value, alert, and
//! interval-adaptation event the runtime produces can be recorded
//! through a [`SampleRecorder`] into a directory of immutable segment
//! files, then queried back ([`Store::scan`] + [`ScanRange`]) or
//! replayed through a candidate `AdaptationConfig` ([`Backtest`]) to
//! measure what an alternative tuning *would have* cost and missed on
//! real history — Fig. 5-style cost/accuracy curves on your own data.
//!
//! ## Layout
//!
//! - [`record`]: the row model — [`Record`], [`RecordKind`],
//!   [`SeriesKey`].
//! - [`segment`]: the on-disk columnar format — CRC-framed like the
//!   runtime WAL, delta-of-delta tick encoding, XOR-compressed values,
//!   sparse per-chunk index, never-panic recovery.
//! - [`store`]: the directory of segments — buffered appends, merged
//!   scans, compaction, retention, recording metadata.
//! - [`recorder`]: the thread-safe runtime sink.
//! - [`backtest`]: deterministic replay on the sim clock.
//! - [`query`]: shared range resolution, pagination and rendering for
//!   `volley store query` and the HTTP query endpoint (byte-identical
//!   output on both surfaces).
//!
//! ## Determinism
//!
//! Records sort by `(task, monitor, kind, tick)` at segment-encode
//! time, and scans merge segments in that same order with ties broken
//! by segment sequence. Since the runtime records at most one record
//! per `(task, monitor, kind, tick)`, sealed bytes and scan results are
//! identical across runs regardless of thread scheduling or where
//! segment boundaries happened to fall.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backtest;
pub mod query;
pub mod record;
pub mod recorder;
pub mod segment;
pub mod store;

pub use backtest::{Backtest, ReplayOutcome, DEFAULT_TICK_WINDOW};
pub use query::{QueryParams, QueryReport, RecordRow};
pub use record::{Record, RecordKind, SeriesKey, TASK_WIDE};
pub use recorder::SampleRecorder;
pub use segment::{crc32, encode_segment, ChunkEntry, SegmentReader, SEGMENT_VERSION};
pub use store::{
    CompactionStats, Scan, ScanRange, Store, TaskMeta, DEFAULT_FLUSH_RECORDS,
    DEFAULT_FLUSH_TICK_SPAN,
};
