//! The embedded store: a directory of immutable segment files behind a
//! bounded in-memory write buffer.
//!
//! Appends land in the buffer and seal into a new `seg-NNNNNNNN.vseg`
//! when either flush limit trips (record count or buffered tick span) or
//! on an explicit [`Store::flush`]. Segments are immutable once written
//! (temp file + atomic rename, like WAL compaction); [`Store::compact`]
//! merge-rewrites all sealed segments into one and [`Store::retain_from`]
//! drops cold segments entirely below a tick horizon.
//!
//! Scans k-way-merge the per-segment cursors, so the result order —
//! `(task, monitor, kind, tick)`, ties by segment sequence — never
//! depends on how appends happened to be split across segments. Two
//! scans of the same directory are byte-identical.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use volley_core::vfs::{CircuitBreaker, StdFs, Vfs};
use volley_core::Tick;

use crate::record::{Record, RecordKind};
use crate::segment::{encode_segment, ChunkEntry, SegmentReader};

/// Default flush threshold: buffered records.
pub const DEFAULT_FLUSH_RECORDS: usize = 8192;
/// Default flush threshold: buffered tick span (a time-based bound — at
/// one record per tick this seals a segment every ~512 ticks even if the
/// record bound is never hit).
pub const DEFAULT_FLUSH_TICK_SPAN: u64 = 512;

const SEGMENT_PREFIX: &str = "seg-";
const SEGMENT_SUFFIX: &str = ".vseg";
const META_FILE: &str = "task-meta.json";
const NAMES_FILE: &str = "metric-names.txt";

/// Recording-time context persisted next to the segments so `volley
/// backtest` can rebuild the production [`TaskSpec`]
/// (`volley_core::task::TaskSpec`) without the user re-typing it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskMeta {
    /// Monitors in the recorded task.
    pub monitors: usize,
    /// The global violation threshold `T`.
    pub global_threshold: f64,
    /// The error allowance the recording ran with.
    pub error_allowance: f64,
    /// Ticks the recording was driven for.
    pub ticks: u64,
    /// The recording's seed (workload / fault plan).
    pub seed: u64,
}

/// Filter for a scan: every field is optional; an unset field matches
/// everything. Tick bounds are inclusive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanRange {
    /// Restrict to one task.
    pub task: Option<u32>,
    /// Restrict to one monitor (or metric-name id for obs kinds).
    pub monitor: Option<u32>,
    /// Restrict to one record kind.
    pub kind: Option<RecordKind>,
    /// First tick (inclusive).
    pub from: Tick,
    /// Last tick (inclusive).
    pub to: Tick,
}

impl Default for ScanRange {
    fn default() -> Self {
        ScanRange::all()
    }
}

impl ScanRange {
    /// Matches every record.
    pub fn all() -> Self {
        ScanRange {
            task: None,
            monitor: None,
            kind: None,
            from: 0,
            to: Tick::MAX,
        }
    }

    /// Restricts to one task.
    #[must_use]
    pub fn task(mut self, task: u32) -> Self {
        self.task = Some(task);
        self
    }

    /// Restricts to one monitor.
    #[must_use]
    pub fn monitor(mut self, monitor: u32) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Restricts to one record kind.
    #[must_use]
    pub fn kind(mut self, kind: RecordKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Sets the first tick (inclusive).
    #[must_use]
    pub fn from(mut self, tick: Tick) -> Self {
        self.from = tick;
        self
    }

    /// Sets the last tick (inclusive).
    #[must_use]
    pub fn to(mut self, tick: Tick) -> Self {
        self.to = tick;
        self
    }

    /// Whether `record` passes the filter.
    pub fn matches(&self, record: &Record) -> bool {
        self.task.is_none_or(|t| t == record.task)
            && self.monitor.is_none_or(|m| m == record.monitor)
            && self.kind.is_none_or(|k| k == record.kind)
            && record.tick >= self.from
            && record.tick <= self.to
    }

    /// Whether a chunk could contain matching records — the sparse-index
    /// skip test (chunks failing it are never decoded).
    fn overlaps(&self, entry: &ChunkEntry) -> bool {
        self.task.is_none_or(|t| t == entry.task)
            && self.monitor.is_none_or(|m| m == entry.monitor)
            && self.kind.is_none_or(|k| k == entry.kind)
            && entry.max_tick >= self.from
            && entry.min_tick <= self.to
    }
}

/// Outcome of a [`Store::compact`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CompactionStats {
    /// Sealed segments before the pass.
    pub segments_before: usize,
    /// Sealed segments after (0 or 1).
    pub segments_after: usize,
    /// Segment bytes before.
    pub bytes_before: u64,
    /// Segment bytes after.
    pub bytes_after: u64,
    /// Records carried over.
    pub records: u64,
}

/// The embedded time-series store. Single-writer; concurrent writers
/// share one store behind [`SampleRecorder`](crate::SampleRecorder).
///
/// All file I/O goes through a [`Vfs`], so chaos runs can inject storage
/// faults underneath. On sustained flush failure a [`CircuitBreaker`]
/// trips the store into lossy degraded mode: new appends are *shed*
/// (counted, dropped) instead of growing the buffer without bound, while
/// deterministically backed-off probe appends keep testing the disk; the
/// first successful probe flush re-arms the store and the retained
/// buffer — at most one segment's worth — is sealed normally.
#[derive(Debug)]
pub struct Store {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    buffer: Vec<Record>,
    flush_records: usize,
    flush_tick_span: u64,
    buffered_min: Tick,
    buffered_max: Tick,
    next_seq: u64,
    names: Vec<String>,
    name_ids: BTreeMap<String, u32>,
    names_dirty: bool,
    breaker: CircuitBreaker,
    shed_samples: u64,
}

impl Store {
    /// Opens (creating if needed) a store directory, discovering existing
    /// segments and the metric-name dictionary.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Store> {
        Store::open_on(Arc::new(StdFs), dir)
    }

    /// Opens a store whose file I/O goes through an arbitrary [`Vfs`] —
    /// the fault-injection entry point.
    pub fn open_on(vfs: Arc<dyn Vfs>, dir: impl Into<PathBuf>) -> io::Result<Store> {
        let dir = dir.into();
        vfs.create_dir_all(&dir)?;
        let next_seq = segment_files(vfs.as_ref(), &dir)?
            .last()
            .map_or(0, |&(seq, _)| seq + 1);
        let mut store = Store {
            vfs,
            dir,
            buffer: Vec::new(),
            flush_records: DEFAULT_FLUSH_RECORDS,
            flush_tick_span: DEFAULT_FLUSH_TICK_SPAN,
            buffered_min: Tick::MAX,
            buffered_max: 0,
            next_seq,
            names: Vec::new(),
            name_ids: BTreeMap::new(),
            names_dirty: false,
            breaker: CircuitBreaker::default(),
            shed_samples: 0,
        };
        store.load_names()?;
        Ok(store)
    }

    /// Overrides the write-buffer flush limits (floored at 1 record /
    /// 1 tick).
    #[must_use]
    pub fn with_flush_limits(mut self, records: usize, tick_span: u64) -> Self {
        self.flush_records = records.max(1);
        self.flush_tick_span = tick_span.max(1);
        self
    }

    /// Replaces the circuit breaker (tests tune trip threshold/backoff).
    #[must_use]
    pub fn with_breaker(mut self, breaker: CircuitBreaker) -> Self {
        self.breaker = breaker;
        self
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records currently buffered (unsealed).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// True while the circuit breaker is open and appends are shed.
    pub fn degraded(&self) -> bool {
        self.breaker.is_open()
    }

    /// Records dropped in degraded mode (`store_shed_samples_total`).
    pub fn shed_samples(&self) -> u64 {
        self.shed_samples
    }

    /// Times the store entered degraded mode.
    pub fn trips(&self) -> u64 {
        self.breaker.trips()
    }

    /// Times the store re-armed after a successful probe flush.
    pub fn rearms(&self) -> u64 {
        self.breaker.rearms()
    }

    /// Appends one record, sealing a segment when a flush limit trips.
    ///
    /// In degraded mode the record is shed (and counted) unless the
    /// breaker's deterministic backoff admits a probe, in which case the
    /// record is accepted and a flush is forced to test the disk.
    pub fn append(&mut self, record: Record) -> io::Result<()> {
        self.vfs.set_tick(record.tick);
        let probing = if self.breaker.is_open() {
            if !self.breaker.should_attempt() {
                self.shed_samples += 1;
                return Ok(());
            }
            true
        } else {
            false
        };
        self.buffered_min = self.buffered_min.min(record.tick);
        self.buffered_max = self.buffered_max.max(record.tick);
        self.buffer.push(record);
        if probing
            || self.buffer.len() >= self.flush_records
            || self.buffered_max.saturating_sub(self.buffered_min) >= self.flush_tick_span
        {
            self.flush()?;
        }
        Ok(())
    }

    /// Seals the write buffer into a new segment (no-op when empty).
    /// Also persists the metric-name dictionary if it grew.
    ///
    /// Every flush outcome feeds the circuit breaker: sustained failure
    /// trips the store into lossy degraded mode, a success after a trip
    /// re-arms it. A failed flush keeps the buffer, so no accepted record
    /// is lost before the disk definitively comes back or the run ends.
    pub fn flush(&mut self) -> io::Result<()> {
        if self.names_dirty {
            if let Err(e) = self.save_names() {
                self.breaker.record_failure();
                return Err(e);
            }
        }
        if self.buffer.is_empty() {
            return Ok(());
        }
        let bytes = encode_segment(&self.buffer);
        let path = self.segment_path(self.next_seq);
        match write_atomic(self.vfs.as_ref(), &self.dir, &path, &bytes) {
            Ok(()) => {
                self.breaker.record_success();
                self.next_seq += 1;
                self.buffer.clear();
                self.buffered_min = Tick::MAX;
                self.buffered_max = 0;
                Ok(())
            }
            Err(e) => {
                self.breaker.record_failure();
                Err(e)
            }
        }
    }

    fn segment_path(&self, seq: u64) -> PathBuf {
        self.dir
            .join(format!("{SEGMENT_PREFIX}{seq:08}{SEGMENT_SUFFIX}"))
    }

    /// Sealed segment files as `(sequence, path)`, in sequence order.
    pub fn segments(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        segment_files(self.vfs.as_ref(), &self.dir)
    }

    /// Scans sealed segments, merged into one globally ordered iterator.
    /// Buffered records are not visible — [`flush`](Store::flush) first
    /// for read-your-writes.
    pub fn scan(&self, range: &ScanRange) -> io::Result<Scan> {
        let mut cursors = Vec::new();
        for (_, path) in self.segments()? {
            let bytes = self.vfs.read(&path)?;
            let cursor = SegmentCursor::new(bytes, *range);
            if !cursor.exhausted() {
                cursors.push(cursor);
            }
        }
        Ok(Scan { cursors })
    }

    /// Merge-rewrites all sealed segments into a single one. Scans
    /// before and after return identical record sequences; the rewrite
    /// also drops torn tails and reclaims their framing.
    pub fn compact(&mut self) -> io::Result<CompactionStats> {
        self.flush()?;
        let old = self.segments()?;
        let bytes_before: u64 = old.iter().map(|(_, p)| self.vfs.len(p).unwrap_or(0)).sum();
        let records: Vec<Record> = self.scan(&ScanRange::all())?.collect();
        let count = records.len() as u64;
        let stats = if records.is_empty() {
            CompactionStats {
                segments_before: old.len(),
                segments_after: 0,
                bytes_before,
                bytes_after: 0,
                records: 0,
            }
        } else {
            let merged = encode_segment(&records);
            let path = self.segment_path(self.next_seq);
            write_atomic(self.vfs.as_ref(), &self.dir, &path, &merged)?;
            self.next_seq += 1;
            CompactionStats {
                segments_before: old.len(),
                segments_after: 1,
                bytes_before,
                bytes_after: merged.len() as u64,
                records: count,
            }
        };
        for (_, path) in old {
            self.vfs.remove_file(&path)?;
        }
        Ok(stats)
    }

    /// Retention: deletes sealed segments whose every record is below
    /// `horizon` (cold segments). Segments straddling the horizon are
    /// kept whole — pair with [`compact`](Store::compact) to tighten.
    /// Returns the number of segments dropped.
    pub fn retain_from(&mut self, horizon: Tick) -> io::Result<usize> {
        self.flush()?;
        let mut dropped = 0;
        for (_, path) in self.segments()? {
            let bytes = self.vfs.read(&path)?;
            let reader = SegmentReader::open(&bytes);
            let max_tick = reader.entries().iter().map(|e| e.max_tick).max();
            if max_tick.is_some_and(|t| t < horizon) {
                self.vfs.remove_file(&path)?;
                dropped += 1;
            }
        }
        Ok(dropped)
    }

    // -- recording-time metadata ---------------------------------------

    /// Persists the recording context (atomic rename).
    pub fn write_meta(&self, meta: &TaskMeta) -> io::Result<()> {
        let json = serde_json::to_string_pretty(meta).expect("serializable");
        write_atomic(
            self.vfs.as_ref(),
            &self.dir,
            &self.dir.join(META_FILE),
            json.as_bytes(),
        )
    }

    /// Reads back the recording context, if one was written.
    pub fn read_meta(&self) -> io::Result<Option<TaskMeta>> {
        match self.vfs.read(&self.dir.join(META_FILE)) {
            Ok(bytes) => serde_json::from_slice(&bytes)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    // -- metric-name dictionary (obs series) ---------------------------

    /// Interns a metric name, returning its stable id. Ids are assigned
    /// in first-seen order and persisted at the next flush.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.name_ids.insert(name.to_string(), id);
        self.names_dirty = true;
        id
    }

    /// The metric name behind an interned id.
    pub fn metric_name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Persists an observability snapshot's counters and gauges as
    /// [`RecordKind::Counter`] / [`RecordKind::Gauge`] series keyed by
    /// interned metric-name ids — the store replaces loose `obs-*.json`
    /// files as the snapshot sink.
    pub fn record_snapshot(
        &mut self,
        task: u32,
        snapshot: &volley_obs::Snapshot,
    ) -> io::Result<()> {
        for (name, &value) in &snapshot.counters {
            let monitor = self.intern(name);
            self.append(Record {
                task,
                monitor,
                kind: RecordKind::Counter,
                tick: snapshot.tick,
                value: value as f64,
            })?;
        }
        for (name, &value) in &snapshot.gauges {
            let monitor = self.intern(name);
            self.append(Record {
                task,
                monitor,
                kind: RecordKind::Gauge,
                tick: snapshot.tick,
                value,
            })?;
        }
        Ok(())
    }

    /// Reads back one persisted obs series as `(tick, value)` pairs.
    pub fn snapshot_series(
        &self,
        task: u32,
        kind: RecordKind,
        name: &str,
        range: &ScanRange,
    ) -> io::Result<Vec<(Tick, f64)>> {
        let Some(&id) = self.name_ids.get(name) else {
            return Ok(Vec::new());
        };
        let range = range.task(task).monitor(id).kind(kind);
        Ok(self.scan(&range)?.map(|r| (r.tick, r.value)).collect())
    }

    fn load_names(&mut self) -> io::Result<()> {
        let text = match self.vfs.read(&self.dir.join(NAMES_FILE)) {
            Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        for line in text.lines() {
            let Some((id, name)) = line.split_once(' ') else {
                continue;
            };
            let (Ok(id), name) = (id.parse::<u32>(), name.trim()) else {
                continue;
            };
            if id as usize == self.names.len() && !name.is_empty() {
                self.names.push(name.to_string());
                self.name_ids.insert(name.to_string(), id);
            }
        }
        Ok(())
    }

    fn save_names(&mut self) -> io::Result<()> {
        let mut text = String::new();
        for (id, name) in self.names.iter().enumerate() {
            text.push_str(&format!("{id} {name}\n"));
        }
        write_atomic(
            self.vfs.as_ref(),
            &self.dir,
            &self.dir.join(NAMES_FILE),
            text.as_bytes(),
        )?;
        self.names_dirty = false;
        Ok(())
    }
}

/// Writes via a temp file + `sync_all` + atomic rename, the
/// WAL-compaction idiom: the sync-before-rename guarantees a crash can
/// never expose a renamed-but-half-written file, so a visible
/// `seg-*.vseg` is always fully written.
fn write_atomic(vfs: &dyn Vfs, dir: &Path, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join(".tmp-write");
    let mut file = vfs.create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    vfs.rename(&tmp, path)
}

/// Lists `seg-NNNNNNNN.vseg` files in `dir`, sorted by sequence.
fn segment_files(vfs: &dyn Vfs, dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for path in vfs.list(dir)? {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name
            .strip_prefix(SEGMENT_PREFIX)
            .and_then(|s| s.strip_suffix(SEGMENT_SUFFIX))
        else {
            continue;
        };
        if let Ok(seq) = stem.parse::<u64>() {
            found.push((seq, path));
        }
    }
    found.sort_by_key(|&(seq, _)| seq);
    Ok(found)
}

/// One segment's scan state: owned bytes, the filtered chunk list, and
/// at most one decoded chunk at a time (bounded memory regardless of
/// segment size).
#[derive(Debug)]
struct SegmentCursor {
    bytes: Vec<u8>,
    entries: Vec<ChunkEntry>,
    next_entry: usize,
    chunk: Vec<Record>,
    chunk_pos: usize,
    range: ScanRange,
}

impl SegmentCursor {
    fn new(bytes: Vec<u8>, range: ScanRange) -> SegmentCursor {
        let entries: Vec<ChunkEntry> = SegmentReader::open(&bytes)
            .entries()
            .iter()
            .filter(|e| range.overlaps(e))
            .copied()
            .collect();
        let mut cursor = SegmentCursor {
            bytes,
            entries,
            next_entry: 0,
            chunk: Vec::new(),
            chunk_pos: 0,
            range,
        };
        cursor.refill();
        cursor
    }

    /// Ensures the current chunk has an unconsumed record, decoding
    /// forward as needed.
    fn refill(&mut self) {
        while self.chunk_pos >= self.chunk.len() {
            let Some(entry) = self.entries.get(self.next_entry) else {
                return;
            };
            self.next_entry += 1;
            let reader = SegmentReader::open(&self.bytes);
            let decoded = reader.decode_entry(entry).unwrap_or_default();
            self.chunk = decoded
                .into_iter()
                .filter(|r| self.range.matches(r))
                .collect();
            self.chunk_pos = 0;
        }
    }

    fn exhausted(&self) -> bool {
        self.chunk_pos >= self.chunk.len()
    }

    fn peek(&self) -> Option<&Record> {
        self.chunk.get(self.chunk_pos)
    }

    fn advance(&mut self) -> Option<Record> {
        let record = *self.chunk.get(self.chunk_pos)?;
        self.chunk_pos += 1;
        self.refill();
        Some(record)
    }
}

/// A merged scan over every sealed segment: yields records in
/// `(task, monitor, kind, tick)` order, ties broken by segment
/// sequence — deterministic regardless of segment boundaries.
#[derive(Debug)]
pub struct Scan {
    cursors: Vec<SegmentCursor>,
}

impl Iterator for Scan {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        let mut best: Option<usize> = None;
        for (i, cursor) in self.cursors.iter().enumerate() {
            let Some(head) = cursor.peek() else { continue };
            let better = match best {
                None => true,
                // Strict `<` keeps the lowest segment sequence on ties
                // (cursors are in sequence order).
                Some(b) => head.sort_key() < self.cursors[b].peek()?.sort_key(),
            };
            if better {
                best = Some(i);
            }
        }
        self.cursors[best?].advance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("volley-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(monitor: u32, tick: u64, value: f64) -> Record {
        Record {
            task: 0,
            monitor,
            kind: RecordKind::Sample,
            tick,
            value,
        }
    }

    #[test]
    fn append_flush_scan_round_trip() {
        let dir = temp_dir("round-trip");
        let mut store = Store::open(&dir).unwrap();
        for t in 0..100u64 {
            store.append(rec(t as u32 % 4, t, t as f64 * 0.5)).unwrap();
        }
        store.flush().unwrap();
        let got: Vec<Record> = store.scan(&ScanRange::all()).unwrap().collect();
        assert_eq!(got.len(), 100);
        // Global order: by monitor, then tick.
        assert!(got.windows(2).all(|w| w[0].sort_key() <= w[1].sort_key()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_order_is_independent_of_segment_boundaries() {
        let dir_a = temp_dir("boundary-a");
        let dir_b = temp_dir("boundary-b");
        let mut a = Store::open(&dir_a).unwrap().with_flush_limits(7, 1_000_000);
        let mut b = Store::open(&dir_b)
            .unwrap()
            .with_flush_limits(1000, 1_000_000);
        // Interleaved appends (as concurrent monitors would produce).
        for t in 0..60u64 {
            for m in [2u32, 0, 1] {
                a.append(rec(m, t, f64::from(m) + t as f64)).unwrap();
                b.append(rec(m, t, f64::from(m) + t as f64)).unwrap();
            }
        }
        a.flush().unwrap();
        b.flush().unwrap();
        assert!(a.segments().unwrap().len() > b.segments().unwrap().len());
        let scan_a: Vec<Record> = a.scan(&ScanRange::all()).unwrap().collect();
        let scan_b: Vec<Record> = b.scan(&ScanRange::all()).unwrap().collect();
        assert_eq!(scan_a, scan_b);
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn range_filters_apply() {
        let dir = temp_dir("filters");
        let mut store = Store::open(&dir).unwrap();
        for t in 0..50u64 {
            store.append(rec(0, t, 1.0)).unwrap();
            store.append(rec(1, t, 2.0)).unwrap();
            store
                .append(Record {
                    kind: RecordKind::Alert,
                    ..rec(crate::TASK_WIDE, t, 1.0)
                })
                .unwrap();
        }
        store.flush().unwrap();
        let samples: Vec<Record> = store
            .scan(&ScanRange::all().monitor(1).from(10).to(19))
            .unwrap()
            .collect();
        assert_eq!(samples.len(), 10);
        assert!(samples
            .iter()
            .all(|r| r.monitor == 1 && (10..20).contains(&r.tick)));
        let alerts: Vec<Record> = store
            .scan(&ScanRange::all().kind(RecordKind::Alert))
            .unwrap()
            .collect();
        assert_eq!(alerts.len(), 50);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_preserves_scans_and_shrinks() {
        let dir = temp_dir("compact");
        let mut store = Store::open(&dir).unwrap().with_flush_limits(16, 1_000_000);
        for t in 0..400u64 {
            store.append(rec((t % 3) as u32, t, 25.0)).unwrap();
        }
        store.flush().unwrap();
        let before: Vec<Record> = store.scan(&ScanRange::all()).unwrap().collect();
        let stats = store.compact().unwrap();
        assert!(stats.segments_before > 1);
        assert_eq!(stats.segments_after, 1);
        assert_eq!(stats.records, 400);
        assert!(
            stats.bytes_after < stats.bytes_before,
            "merging cold segments reclaims framing: {stats:?}"
        );
        let after: Vec<Record> = store.scan(&ScanRange::all()).unwrap().collect();
        assert_eq!(before, after);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_drops_cold_segments_only() {
        let dir = temp_dir("retain");
        let mut store = Store::open(&dir).unwrap().with_flush_limits(10, 1_000_000);
        for t in 0..100u64 {
            store.append(rec(0, t, 1.0)).unwrap();
        }
        store.flush().unwrap();
        let dropped = store.retain_from(50).unwrap();
        assert!(dropped >= 4, "dropped {dropped}");
        let left: Vec<Record> = store.scan(&ScanRange::all()).unwrap().collect();
        assert!(
            left.iter().all(|r| r.tick >= 40),
            "only warm segments remain"
        );
        assert!(left.iter().any(|r| r.tick >= 50));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_the_sequence() {
        let dir = temp_dir("reopen");
        let mut store = Store::open(&dir).unwrap();
        store.append(rec(0, 1, 1.0)).unwrap();
        store.flush().unwrap();
        drop(store);
        let mut store = Store::open(&dir).unwrap();
        store.append(rec(0, 2, 2.0)).unwrap();
        store.flush().unwrap();
        assert_eq!(store.segments().unwrap().len(), 2);
        assert_eq!(store.scan(&ScanRange::all()).unwrap().count(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_storm_sheds_then_rearms_and_resumes() {
        use volley_core::vfs::{CircuitBreaker, FaultFs, IoFaultPlan};
        let dir = temp_dir("enospc");
        // Disk full for ticks [20, 60): flushes fail, the breaker trips,
        // appends shed; after the window a probe re-arms and recording
        // resumes.
        let vfs = Arc::new(FaultFs::new(
            IoFaultPlan::new(11).with_enospc_window(20, 40),
        ));
        let mut store = Store::open_on(vfs, &dir)
            .unwrap()
            .with_flush_limits(8, 1_000_000)
            .with_breaker(CircuitBreaker::with_backoff(2, 2, 8));
        for t in 0..120u64 {
            let _ = store.append(rec(0, t, t as f64));
        }
        store.flush().unwrap();
        assert!(store.trips() >= 1, "breaker tripped during the storm");
        assert!(store.rearms() >= 1, "store re-armed after the storm");
        assert!(!store.degraded(), "fault cleared");
        assert!(store.shed_samples() > 0, "degraded mode shed records");
        let got: Vec<Record> = store.scan(&ScanRange::all()).unwrap().collect();
        assert!(
            got.iter().any(|r| r.tick >= 100),
            "recording resumed after re-arm"
        );
        assert!(
            got.iter().filter(|r| r.tick < 20).count() >= 8,
            "pre-storm records persisted"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_round_trips() {
        let dir = temp_dir("meta");
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.read_meta().unwrap(), None);
        let meta = TaskMeta {
            monitors: 5,
            global_threshold: 500.0,
            error_allowance: 0.0,
            ticks: 150,
            seed: 42,
        };
        store.write_meta(&meta).unwrap();
        assert_eq!(store.read_meta().unwrap(), Some(meta));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_persistence_round_trips_names() {
        let dir = temp_dir("snapshot");
        let mut store = Store::open(&dir).unwrap();
        let obs = volley_obs::Obs::new(true);
        obs.registry().counter("volley_test_ticks_total").add(7);
        obs.registry().gauge("volley_test_latency_us").set(1.5);
        store.record_snapshot(0, &obs.snapshot(10)).unwrap();
        store.record_snapshot(0, &obs.snapshot(20)).unwrap();
        store.flush().unwrap();
        drop(store);
        // A fresh open resolves the persisted dictionary.
        let store = Store::open(&dir).unwrap();
        let series = store
            .snapshot_series(
                0,
                RecordKind::Counter,
                "volley_test_ticks_total",
                &ScanRange::all(),
            )
            .unwrap();
        assert_eq!(series, vec![(10, 7.0), (20, 7.0)]);
        let gauges = store
            .snapshot_series(
                0,
                RecordKind::Gauge,
                "volley_test_latency_us",
                &ScanRange::all(),
            )
            .unwrap();
        assert_eq!(gauges, vec![(10, 1.5), (20, 1.5)]);
        let _ = fs::remove_dir_all(&dir);
    }
}
