//! The columnar segment format: pure, never-panicking encode/decode.
//!
//! A segment is a sequence of CRC-framed chunks, framed exactly like the
//! checkpoint WAL (`[len: u32 LE][crc: u32 LE][payload]`):
//!
//! ```text
//! segment   := header data* index?
//! header    := frame{ 0x00 "VSEG" version:u32 }
//! data      := frame{ 0x01 task:u32 monitor:u32 kind:u8 count:u32
//!                     tick_len:u32 tick-stream value-bitstream }
//! index     := frame{ 0x02 entry-count:u32 entry* }
//! entry     := task:u32 monitor:u32 kind:u8 min:u64 max:u64
//!              offset:u64 count:u32
//! ```
//!
//! Each data chunk holds one series run, columnar: the **tick stream** is
//! the first tick as a varint, the first delta as a varint, then
//! zigzag-varint delta-of-deltas (a steady cadence costs one byte per
//! sample regardless of the interval); the **value stream** is
//! Gorilla-style XOR bit packing — the first value raw, then a `0` bit
//! for an unchanged value or `1` + 6-bit leading-zero count + 6-bit
//! length + the meaningful XOR bits. Both encodings are lossless for
//! every `f64` bit pattern, NaN and infinities included.
//!
//! The trailing sparse index lets a scan skip whole chunks by series key
//! and tick range without touching their payloads. It is advisory: when
//! missing or corrupt, [`SegmentReader::open`] rebuilds the entries from
//! the data chunks themselves.
//!
//! Torn or corrupted tails follow the WAL's rule: everything before the
//! first bad frame is trusted, everything after it is ignored. Decoding
//! never panics on arbitrary input.

use crate::record::{Record, RecordKind};

/// Upper bound on one frame's payload, mirroring the WAL's cap: anything
/// larger is treated as corruption rather than a 4 GB allocation.
pub const MAX_CHUNK_LEN: usize = 16 * 1024 * 1024;

/// Bytes of framing per chunk (length + CRC prefixes).
pub const FRAME_OVERHEAD: usize = 8;

/// Records per data chunk: small enough that a scan materializes at most
/// one chunk at a time, large enough that framing amortizes away.
pub const MAX_CHUNK_RECORDS: usize = 4096;

/// Segment format version; readers refuse segments from the future.
pub const SEGMENT_VERSION: u32 = 1;

const TAG_HEADER: u8 = 0x00;
const TAG_DATA: u8 = 0x01;
const TAG_INDEX: u8 = 0x02;
const MAGIC: &[u8; 4] = b"VSEG";

/// CRC-32 (IEEE) lookup table, built at compile time — same polynomial
/// and construction as the checkpoint WAL.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Varints and bit streams.

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag so small magnitudes of either sign stay one byte. `i128`
/// because a delta-of-delta of `u64` ticks can exceed `i64`.
fn put_signed_varint(out: &mut Vec<u8>, v: i128) {
    let zig = ((v << 1) ^ (v >> 127)) as u128;
    let mut z = zig;
    loop {
        let byte = (z & 0x7F) as u8;
        z >>= 7;
        if z == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A bounds-checked byte cursor; every read returns `Option`.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn varint(&mut self) -> Option<u64> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                // Reject non-canonical encodings that would overflow.
                if shift == 63 && byte > 1 {
                    return None;
                }
                return Some(v);
            }
        }
        None
    }

    fn signed_varint(&mut self) -> Option<i128> {
        let mut z = 0u128;
        for shift in (0..128).step_by(7) {
            let byte = self.u8()?;
            z |= u128::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                if shift == 126 && byte > 3 {
                    return None;
                }
                let v = ((z >> 1) as i128) ^ -((z & 1) as i128);
                return Some(v);
            }
        }
        None
    }

    fn remaining(&self) -> &'a [u8] {
        &self.bytes[self.pos.min(self.bytes.len())..]
    }
}

/// MSB-first bit writer over a byte vector.
struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the last byte (0 = byte boundary).
    used: u8,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            bytes: Vec::new(),
            used: 0,
        }
    }

    fn write_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.len() - 1;
            self.bytes[last] |= 1 << (7 - self.used);
        }
        self.used = (self.used + 1) % 8;
    }

    fn write_bits(&mut self, value: u64, count: u8) {
        for i in (0..count).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// MSB-first bit reader; returns `None` past the end.
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // in bits
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    fn read_bit(&mut self) -> Option<bool> {
        let byte = self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8) as u8)) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    fn read_bits(&mut self, count: u8) -> Option<u64> {
        let mut v = 0u64;
        for _ in 0..count {
            v = (v << 1) | u64::from(self.read_bit()?);
        }
        Some(v)
    }
}

// ---------------------------------------------------------------------
// Chunk encode/decode.

/// One index entry: where a data chunk lives and what it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Series task index.
    pub task: u32,
    /// Series monitor index.
    pub monitor: u32,
    /// Series record kind.
    pub kind: RecordKind,
    /// Smallest tick in the chunk.
    pub min_tick: u64,
    /// Largest tick in the chunk.
    pub max_tick: u64,
    /// Byte offset of the chunk's frame within the segment.
    pub offset: u64,
    /// Records in the chunk.
    pub count: u32,
}

/// Encodes one series run (all records share a key, ticks
/// non-decreasing) into a data-chunk payload.
fn encode_chunk(records: &[Record]) -> Vec<u8> {
    debug_assert!(!records.is_empty() && records.len() <= MAX_CHUNK_RECORDS);
    let first = records[0];
    let mut payload = Vec::with_capacity(records.len() * 3 + 32);
    payload.push(TAG_DATA);
    payload.extend_from_slice(&first.task.to_le_bytes());
    payload.extend_from_slice(&first.monitor.to_le_bytes());
    payload.push(first.kind.as_u8());
    payload.extend_from_slice(&(records.len() as u32).to_le_bytes());

    // Tick stream: first raw, first delta, then delta-of-deltas.
    let mut ticks = Vec::with_capacity(records.len() + 8);
    put_varint(&mut ticks, first.tick);
    let mut prev_tick = first.tick;
    let mut prev_delta: Option<u64> = None;
    for r in &records[1..] {
        let delta = r.tick.saturating_sub(prev_tick);
        match prev_delta {
            None => put_varint(&mut ticks, delta),
            Some(pd) => put_signed_varint(&mut ticks, i128::from(delta) - i128::from(pd)),
        }
        prev_delta = Some(delta);
        prev_tick = r.tick;
    }
    payload.extend_from_slice(&(ticks.len() as u32).to_le_bytes());
    payload.extend_from_slice(&ticks);

    // Value stream: XOR bit packing.
    let mut bits = BitWriter::new();
    let mut prev = first.value.to_bits();
    bits.write_bits(prev, 64);
    for r in &records[1..] {
        let cur = r.value.to_bits();
        let xor = cur ^ prev;
        if xor == 0 {
            bits.write_bit(false);
        } else {
            let lz = xor.leading_zeros() as u8; // ≤ 63 since xor != 0
            let tz = xor.trailing_zeros() as u8;
            let meaningful = 64 - lz - tz; // ≥ 1
            bits.write_bit(true);
            bits.write_bits(u64::from(lz), 6);
            bits.write_bits(u64::from(meaningful - 1), 6);
            bits.write_bits(xor >> tz, meaningful);
        }
        prev = cur;
    }
    payload.extend_from_slice(&bits.into_bytes());
    payload
}

/// Decodes a data-chunk payload (tag byte included). `None` on any
/// malformation — never panics.
fn decode_chunk(payload: &[u8]) -> Option<Vec<Record>> {
    let mut cur = Cursor::new(payload);
    if cur.u8()? != TAG_DATA {
        return None;
    }
    let task = cur.u32()?;
    let monitor = cur.u32()?;
    let kind = RecordKind::from_u8(cur.u8()?)?;
    let count = cur.u32()? as usize;
    let tick_len = cur.u32()? as usize;
    // Every tick costs at least one byte, which bounds allocations from a
    // corrupt count that slipped past the CRC.
    if count == 0 || count > MAX_CHUNK_RECORDS || count > tick_len {
        return None;
    }
    let tick_bytes = cur.take(tick_len)?;
    let mut ticks = Cursor::new(tick_bytes);
    let mut tick_list = Vec::with_capacity(count);
    let first_tick = ticks.varint()?;
    tick_list.push(first_tick);
    let mut prev_tick = first_tick;
    let mut prev_delta: Option<i128> = None;
    for _ in 1..count {
        let delta = match prev_delta {
            None => i128::from(ticks.varint()?),
            Some(pd) => pd.checked_add(ticks.signed_varint()?)?,
        };
        if delta < 0 {
            return None;
        }
        prev_delta = Some(delta);
        prev_tick = prev_tick.checked_add(u64::try_from(delta).ok()?)?;
        tick_list.push(prev_tick);
    }

    let mut bits = BitReader::new(cur.remaining());
    let mut records = Vec::with_capacity(count);
    let mut prev = bits.read_bits(64)?;
    records.push(Record {
        task,
        monitor,
        kind,
        tick: tick_list[0],
        value: f64::from_bits(prev),
    });
    for &tick in &tick_list[1..] {
        if bits.read_bit()? {
            let lz = bits.read_bits(6)? as u8;
            let meaningful = bits.read_bits(6)? as u8 + 1;
            if u32::from(lz) + u32::from(meaningful) > 64 {
                return None;
            }
            let xor = bits.read_bits(meaningful)? << (64 - lz - meaningful);
            prev ^= xor;
        }
        records.push(Record {
            task,
            monitor,
            kind,
            tick,
            value: f64::from_bits(prev),
        });
    }
    Some(records)
}

/// Reads just enough of a data-chunk payload to build its index entry
/// (series key, tick bounds, count) — the rebuild path when the trailing
/// index is missing or corrupt.
fn chunk_entry(payload: &[u8], offset: u64) -> Option<ChunkEntry> {
    let records = decode_chunk(payload)?;
    let first = records.first()?;
    let last = records.last()?;
    Some(ChunkEntry {
        task: first.task,
        monitor: first.monitor,
        kind: first.kind,
        min_tick: first.tick,
        max_tick: last.tick,
        offset,
        count: records.len() as u32,
    })
}

// ---------------------------------------------------------------------
// Segment encode.

/// Appends one CRC frame.
fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encodes `records` into a complete segment: header, sorted data
/// chunks, trailing sparse index. Input order does not matter — records
/// are sorted by `(task, monitor, kind, tick)` first, which is what
/// makes concurrently-recorded runs byte-deterministic.
pub fn encode_segment(records: &[Record]) -> Vec<u8> {
    let mut sorted: Vec<Record> = records.to_vec();
    sorted.sort_by_key(Record::sort_key);

    let mut out = Vec::with_capacity(sorted.len() * 4 + 64);
    let mut header = Vec::with_capacity(9);
    header.push(TAG_HEADER);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    put_frame(&mut out, &header);

    let mut entries: Vec<ChunkEntry> = Vec::new();
    let mut start = 0;
    while start < sorted.len() {
        let key = sorted[start].key();
        let mut end = start + 1;
        while end < sorted.len() && sorted[end].key() == key && end - start < MAX_CHUNK_RECORDS {
            end += 1;
        }
        let run = &sorted[start..end];
        let offset = out.len() as u64;
        put_frame(&mut out, &encode_chunk(run));
        entries.push(ChunkEntry {
            task: key.task,
            monitor: key.monitor,
            kind: key.kind,
            min_tick: run[0].tick,
            max_tick: run[run.len() - 1].tick,
            offset,
            count: run.len() as u32,
        });
        start = end;
    }

    let mut index = Vec::with_capacity(entries.len() * 37 + 5);
    index.push(TAG_INDEX);
    index.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in &entries {
        index.extend_from_slice(&e.task.to_le_bytes());
        index.extend_from_slice(&e.monitor.to_le_bytes());
        index.push(e.kind.as_u8());
        index.extend_from_slice(&e.min_tick.to_le_bytes());
        index.extend_from_slice(&e.max_tick.to_le_bytes());
        index.extend_from_slice(&e.offset.to_le_bytes());
        index.extend_from_slice(&e.count.to_le_bytes());
    }
    put_frame(&mut out, &index);
    out
}

// ---------------------------------------------------------------------
// Segment read path.

fn decode_index(payload: &[u8]) -> Option<Vec<ChunkEntry>> {
    let mut cur = Cursor::new(payload);
    if cur.u8()? != TAG_INDEX {
        return None;
    }
    let count = cur.u32()? as usize;
    // 37 bytes per entry bounds allocation by the payload length.
    if count > payload.len() / 37 + 1 {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(ChunkEntry {
            task: cur.u32()?,
            monitor: cur.u32()?,
            kind: RecordKind::from_u8(cur.u8()?)?,
            min_tick: cur.u64()?,
            max_tick: cur.u64()?,
            offset: cur.u64()?,
            count: cur.u32()?,
        });
    }
    Some(entries)
}

/// A decoded view over one segment's bytes: trusted chunk entries plus
/// lazy, zero-copy access to their payloads (chunk payloads are slices
/// into the segment buffer; nothing is materialized until a scan decodes
/// a matching chunk).
#[derive(Debug)]
pub struct SegmentReader<'a> {
    bytes: &'a [u8],
    entries: Vec<ChunkEntry>,
    truncated: bool,
}

impl<'a> SegmentReader<'a> {
    /// Opens a segment from raw bytes. Never panics: a torn or corrupted
    /// tail simply truncates the trusted prefix (`truncated()` reports
    /// it), garbage yields an empty reader.
    pub fn open(bytes: &'a [u8]) -> SegmentReader<'a> {
        // Pass 1: walk the CRC frames, stopping at the first bad one.
        let mut frames: Vec<(u64, &[u8])> = Vec::new();
        let mut pos = 0usize;
        let truncated;
        loop {
            let Some(head) = bytes.get(pos..pos + FRAME_OVERHEAD) else {
                truncated = pos != bytes.len();
                break;
            };
            let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
            let crc = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
            if len > MAX_CHUNK_LEN {
                truncated = true;
                break;
            }
            let Some(payload) = bytes.get(pos + FRAME_OVERHEAD..pos + FRAME_OVERHEAD + len) else {
                truncated = true;
                break;
            };
            if crc32(payload) != crc {
                truncated = true;
                break;
            }
            frames.push((pos as u64, payload));
            pos += FRAME_OVERHEAD + len;
        }

        // The header frame anchors trust: without it nothing is a record.
        let valid_header = frames.first().is_some_and(|(_, p)| {
            let mut cur = Cursor::new(p);
            cur.u8() == Some(TAG_HEADER)
                && cur.take(4) == Some(&MAGIC[..])
                && cur.u32().is_some_and(|v| v <= SEGMENT_VERSION)
        });
        if !valid_header {
            return SegmentReader {
                bytes,
                entries: Vec::new(),
                truncated: true,
            };
        }

        // Fast path: an intact trailing index whose offsets all point at
        // intact data frames. Otherwise rebuild from the chunks.
        let data_frames: Vec<(u64, &[u8])> = frames
            .iter()
            .skip(1)
            .filter(|(_, p)| p.first() == Some(&TAG_DATA))
            .map(|&(o, p)| (o, p))
            .collect();
        let indexed = (!truncated)
            .then(|| frames.last())
            .flatten()
            .and_then(|(_, p)| decode_index(p))
            .filter(|entries| {
                entries
                    .iter()
                    .all(|e| data_frames.iter().any(|&(o, _)| o == e.offset))
            });
        let entries = match indexed {
            Some(entries) => entries,
            None => data_frames
                .iter()
                .filter_map(|&(offset, payload)| chunk_entry(payload, offset))
                .collect(),
        };
        SegmentReader {
            bytes,
            entries,
            truncated,
        }
    }

    /// The chunk index (stored or rebuilt).
    pub fn entries(&self) -> &[ChunkEntry] {
        &self.entries
    }

    /// Whether a torn/corrupt tail cut this segment short.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Total records across all trusted chunks.
    pub fn record_count(&self) -> u64 {
        self.entries.iter().map(|e| u64::from(e.count)).sum()
    }

    /// Decodes the chunk behind `entry`; `None` if its payload is
    /// malformed (possible only via a colliding CRC or a lying index).
    pub fn decode_entry(&self, entry: &ChunkEntry) -> Option<Vec<Record>> {
        let pos = usize::try_from(entry.offset).ok()?;
        let head = self.bytes.get(pos..pos + FRAME_OVERHEAD)?;
        let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
        let payload = self
            .bytes
            .get(pos + FRAME_OVERHEAD..pos + FRAME_OVERHEAD + len)?;
        decode_chunk(payload)
    }

    /// All trusted records, in `(task, monitor, kind, tick)` order.
    pub fn records(&self) -> Vec<Record> {
        self.entries
            .iter()
            .filter_map(|e| self.decode_entry(e))
            .flatten()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(monitor: u32, tick: u64, value: f64) -> Record {
        Record {
            task: 0,
            monitor,
            kind: RecordKind::Sample,
            tick,
            value,
        }
    }

    #[test]
    fn round_trips_multiple_series() {
        let mut records = Vec::new();
        for m in 0..3u32 {
            for t in 0..50u64 {
                records.push(rec(m, t * 5, (t as f64).sin() * 100.0 + f64::from(m)));
            }
        }
        let bytes = encode_segment(&records);
        let reader = SegmentReader::open(&bytes);
        assert!(!reader.truncated());
        assert_eq!(reader.entries().len(), 3);
        let mut expect = records.clone();
        expect.sort_by_key(Record::sort_key);
        assert_eq!(reader.records(), expect);
    }

    #[test]
    fn round_trips_special_values() {
        let values = [
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::MAX,
            -1.0e-300,
        ];
        let records: Vec<Record> = values
            .iter()
            .enumerate()
            .map(|(t, &v)| rec(0, t as u64, v))
            .collect();
        let bytes = encode_segment(&records);
        let got = SegmentReader::open(&bytes).records();
        assert_eq!(got.len(), records.len());
        for (a, b) in got.iter().zip(&records) {
            assert_eq!(a.value.to_bits(), b.value.to_bits(), "bit-exact values");
        }
    }

    #[test]
    fn steady_cadence_compresses_well() {
        // 1000 samples at a fixed interval with a slowly-drifting value:
        // the whole point of dod + XOR packing.
        let records: Vec<Record> = (0..1000u64).map(|t| rec(0, t * 4, 25.0)).collect();
        let bytes = encode_segment(&records);
        let raw = records.len() * 16; // tick + value, uncompressed
        assert!(
            bytes.len() * 4 < raw,
            "expected ≥4x compression, got {} vs {raw}",
            bytes.len()
        );
        assert_eq!(SegmentReader::open(&bytes).record_count(), 1000);
    }

    #[test]
    fn truncated_tail_keeps_prefix() {
        let records: Vec<Record> = (0..200u64)
            .map(|t| rec(t as u32 % 2, t, t as f64))
            .collect();
        let bytes = encode_segment(&records);
        let full = SegmentReader::open(&bytes).records();
        for cut in [bytes.len() - 1, bytes.len() / 2, 13, 0] {
            let reader = SegmentReader::open(&bytes[..cut]);
            let got = reader.records();
            assert!(got.len() <= full.len());
            // Whatever survives matches the full decode prefix per chunk.
            for r in &got {
                assert!(full.contains(r), "trusted record {r:?} must be real");
            }
        }
    }

    #[test]
    fn corrupt_index_falls_back_to_rebuild() {
        let records: Vec<Record> = (0..100u64).map(|t| rec(0, t, t as f64)).collect();
        let mut bytes = encode_segment(&records);
        // Flip a bit in the last frame (the index): its CRC fails, the
        // reader rebuilds entries from the data chunks.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let reader = SegmentReader::open(&bytes);
        assert!(reader.truncated());
        assert_eq!(reader.records().len(), 100);
    }

    #[test]
    fn garbage_never_panics_and_yields_nothing() {
        for src in [&b""[..], b"not a segment", &[0xFF; 64][..]] {
            let reader = SegmentReader::open(src);
            assert!(reader.records().is_empty());
        }
    }
}
