//! Shared range resolution, pagination and rendering for store
//! queries — one module used by both `volley store query` and the HTTP
//! `GET /api/v1/query` endpoint, so the two surfaces produce
//! byte-identical output for the same range and cannot drift.

use std::io::{self, Write};

use serde::Serialize;
use volley_core::Tick;

use crate::record::{RecordKind, TASK_WIDE};
use crate::store::{ScanRange, Store};

/// Filter and pagination parameters of one query. Field defaults match
/// [`ScanRange::all`]: everything matches, no limit, cursor at 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryParams {
    /// Restrict to one task.
    pub task: Option<u32>,
    /// Restrict to one monitor (or metric-name id for obs kinds).
    pub monitor: Option<u32>,
    /// Restrict to one record kind.
    pub kind: Option<RecordKind>,
    /// First tick (inclusive).
    pub from: Tick,
    /// Last tick (inclusive).
    pub to: Tick,
    /// Most records to return in this page (`None` = unbounded).
    pub limit: Option<usize>,
    /// Matching records to skip — the `next_cursor` of the previous
    /// page. Scans are deterministic, so offset pagination is stable.
    pub cursor: u64,
}

impl Default for QueryParams {
    fn default() -> Self {
        QueryParams {
            task: None,
            monitor: None,
            kind: None,
            from: 0,
            to: Tick::MAX,
            limit: None,
            cursor: 0,
        }
    }
}

impl QueryParams {
    /// The scan range these parameters describe.
    pub fn range(&self) -> ScanRange {
        let mut range = ScanRange::all().from(self.from).to(self.to);
        if let Some(task) = self.task {
            range = range.task(task);
        }
        if let Some(monitor) = self.monitor {
            range = range.monitor(monitor);
        }
        if let Some(kind) = self.kind {
            range = range.kind(kind);
        }
        range
    }
}

/// One rendered record row.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RecordRow {
    /// Owning task index.
    pub task: u32,
    /// Monitor index (or [`TASK_WIDE`] / metric-name id).
    pub monitor: u32,
    /// The record kind's CLI spelling.
    pub kind: &'static str,
    /// When it happened.
    pub tick: Tick,
    /// The payload.
    pub value: f64,
}

/// The report of one query page — the `report` payload of the
/// versioned envelope on both the CLI and HTTP surfaces.
#[derive(Debug, Serialize)]
pub struct QueryReport {
    /// The store directory, as the caller named it.
    pub dir: String,
    /// Records matching the range, across all pages.
    pub matched: u64,
    /// Records in this page.
    pub shown: usize,
    /// Cursor of the next page, when the range has more records past
    /// this page; `null` on the last page.
    pub next_cursor: Option<u64>,
    /// This page's rows, in deterministic scan order.
    pub records: Vec<RecordRow>,
}

/// Runs one query page against `store`. `dir_label` is echoed in the
/// report verbatim so CLI and HTTP surfaces agree byte-for-byte when
/// given the same store path spelling.
///
/// # Errors
///
/// Propagates scan I/O errors.
pub fn run_query(store: &Store, dir_label: &str, params: &QueryParams) -> io::Result<QueryReport> {
    let limit = params.limit.unwrap_or(usize::MAX);
    let mut matched = 0u64;
    let mut records = Vec::new();
    for record in store.scan(&params.range())? {
        matched += 1;
        if matched <= params.cursor || records.len() >= limit {
            continue;
        }
        records.push(RecordRow {
            task: record.task,
            monitor: record.monitor,
            kind: record.kind.as_str(),
            tick: record.tick,
            value: record.value,
        });
    }
    let consumed = params.cursor + records.len() as u64;
    let next_cursor = (matched > consumed).then_some(consumed);
    Ok(QueryReport {
        dir: dir_label.to_string(),
        matched,
        shown: records.len(),
        next_cursor,
        records,
    })
}

/// Renders the human-readable table — the CLI's non-`--json` output.
///
/// # Errors
///
/// Propagates writer errors.
pub fn render_text<W: Write>(out: &mut W, report: &QueryReport) -> io::Result<()> {
    writeln!(out, "store:            {}", report.dir)?;
    writeln!(
        out,
        "matched:          {} records (showing {})",
        report.matched, report.shown
    )?;
    if let Some(cursor) = report.next_cursor {
        writeln!(out, "next cursor:      {cursor}")?;
    }
    if !report.records.is_empty() {
        writeln!(
            out,
            "{:>6} {:>8} {:>9} {:>8} value",
            "task", "monitor", "kind", "tick"
        )?;
        for row in &report.records {
            // Task-wide records (alerts) have no single monitor.
            let monitor = if row.monitor == TASK_WIDE {
                "-".to_string()
            } else {
                row.monitor.to_string()
            };
            writeln!(
                out,
                "{:>6} {monitor:>8} {:>9} {:>8} {}",
                row.task, row.kind, row.tick, row.value
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;

    fn sample_store(dir: &std::path::Path) -> Store {
        let mut store = Store::open(dir).expect("open");
        for tick in 0..10u64 {
            store
                .append(Record {
                    task: 0,
                    monitor: (tick % 2) as u32,
                    kind: RecordKind::Sample,
                    tick,
                    value: tick as f64,
                })
                .expect("append");
        }
        store.flush().expect("flush");
        store
    }

    #[test]
    fn pagination_walks_the_full_range() {
        let dir = std::env::temp_dir().join(format!("volley-query-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = sample_store(&dir);
        let mut params = QueryParams {
            limit: Some(4),
            ..QueryParams::default()
        };
        let mut seen = Vec::new();
        loop {
            let page = run_query(&store, "label", &params).expect("query");
            assert_eq!(page.matched, 10);
            assert!(page.shown <= 4);
            seen.extend(page.records.iter().map(|r| (r.monitor, r.tick)));
            match page.next_cursor {
                Some(cursor) => params.cursor = cursor,
                None => break,
            }
        }
        // Every record exactly once, in deterministic scan order.
        assert_eq!(seen.len(), 10);
        let full = run_query(&store, "label", &QueryParams::default()).expect("query");
        assert_eq!(
            full.records
                .iter()
                .map(|r| (r.monitor, r.tick))
                .collect::<Vec<_>>(),
            seen
        );
        assert_eq!(full.next_cursor, None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn text_rendering_is_stable() {
        let dir = std::env::temp_dir().join(format!("volley-query-text-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = sample_store(&dir);
        let params = QueryParams {
            limit: Some(2),
            ..QueryParams::default()
        };
        let report = run_query(&store, "the-store", &params).expect("query");
        let mut out = Vec::new();
        render_text(&mut out, &report).expect("render");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("store:            the-store\n"));
        assert!(text.contains("matched:          10 records (showing 2)\n"));
        assert!(text.contains("next cursor:      2\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
