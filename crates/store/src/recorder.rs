//! `SampleRecorder`: the thread-safe recording sink the runtime hangs
//! off every monitor actor.
//!
//! Monitors run on their own threads, so the recorder is a cheap
//! `Clone` handle over one shared [`Store`]. Recording must never take
//! the runtime down: every append is best-effort — I/O failures bump a
//! counter instead of propagating, and the caller checks
//! [`io_errors`](SampleRecorder::io_errors) at teardown.
//!
//! Determinism note: monitors append concurrently, so *arrival* order
//! into the store is racy — but segments sort records by
//! `(task, monitor, kind, tick)` at encode time and every recorded key
//! is unique per tick, so the sealed bytes (and every scan) are
//! identical across runs regardless of thread scheduling.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use volley_core::Tick;
use volley_obs::Snapshot;

use crate::record::{Record, RecordKind, TASK_WIDE};
use crate::store::Store;

#[derive(Debug)]
struct RecorderInner {
    store: Mutex<Store>,
    io_errors: AtomicU64,
}

/// A cloneable, thread-safe handle recording monitoring events into a
/// shared [`Store`].
#[derive(Debug, Clone)]
pub struct SampleRecorder {
    inner: Arc<RecorderInner>,
    task: u32,
}

impl SampleRecorder {
    /// Wraps a store; records carry task index 0 until
    /// [`for_task`](SampleRecorder::for_task) re-tags the handle.
    pub fn new(store: Store) -> SampleRecorder {
        SampleRecorder {
            inner: Arc::new(RecorderInner {
                store: Mutex::new(store),
                io_errors: AtomicU64::new(0),
            }),
            task: 0,
        }
    }

    /// A handle tagging its records with `task` — same underlying store,
    /// so one store can absorb a whole fleet.
    #[must_use]
    pub fn for_task(&self, task: u32) -> SampleRecorder {
        SampleRecorder {
            inner: Arc::clone(&self.inner),
            task,
        }
    }

    /// The task index this handle tags records with.
    pub fn task(&self) -> u32 {
        self.task
    }

    fn lock(&self) -> MutexGuard<'_, Store> {
        // A panic mid-append leaves the store consistent (Vec push /
        // file write), so recover the guard rather than poisoning all
        // recording forever.
        self.inner
            .store
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn append(&self, monitor: u32, kind: RecordKind, tick: Tick, value: f64) {
        let record = Record {
            task: self.task,
            monitor,
            kind,
            tick,
            value,
        };
        if self.lock().append(record).is_err() {
            self.inner.io_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a scheduled sample observation.
    pub fn record_sample(&self, monitor: u32, tick: Tick, value: f64) {
        self.append(monitor, RecordKind::Sample, tick, value);
    }

    /// Records a forced sample taken to answer a global poll.
    pub fn record_poll_sample(&self, monitor: u32, tick: Tick, value: f64) {
        self.append(monitor, RecordKind::PollSample, tick, value);
    }

    /// Records a task-level alert (`degraded` marks alerts raised while
    /// aggregation ran in degraded mode).
    pub fn record_alert(&self, tick: Tick, degraded: bool) {
        let value = if degraded { 2.0 } else { 1.0 };
        self.append(TASK_WIDE, RecordKind::Alert, tick, value);
    }

    /// Records a monitor's sampling-interval change.
    pub fn record_interval_change(&self, monitor: u32, tick: Tick, interval: u32) {
        self.append(
            monitor,
            RecordKind::IntervalChange,
            tick,
            f64::from(interval),
        );
    }

    /// Persists an obs snapshot's counters and gauges into the store
    /// (see [`Store::record_snapshot`]).
    pub fn record_snapshot(&self, tick: Tick, snapshot: &Snapshot) {
        let task = self.task;
        let mut snapshot = snapshot.clone();
        snapshot.tick = tick;
        if self.lock().record_snapshot(task, &snapshot).is_err() {
            self.inner.io_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Seals any buffered records into a segment. Best-effort like every
    /// recording call; failures land in [`io_errors`](Self::io_errors).
    pub fn flush(&self) {
        if self.lock().flush().is_err() {
            self.inner.io_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Appends swallowed by I/O failures so far.
    pub fn io_errors(&self) -> u64 {
        self.inner.io_errors.load(Ordering::Relaxed)
    }

    /// Records shed while the store's circuit breaker was open
    /// (`store_shed_samples_total`).
    pub fn shed_samples(&self) -> u64 {
        self.lock().shed_samples()
    }

    /// True while the store is in lossy degraded mode.
    pub fn degraded(&self) -> bool {
        self.lock().degraded()
    }

    /// `(trips, rearms)` of the store's circuit breaker: degraded-mode
    /// entries and recoveries.
    pub fn breaker_transitions(&self) -> (u64, u64) {
        let store = self.lock();
        (store.trips(), store.rearms())
    }

    /// Runs `f` against the underlying store — the escape hatch for
    /// scans and maintenance when the caller owns the only handle.
    pub fn with_store<T>(&self, f: impl FnOnce(&mut Store) -> T) -> T {
        f(&mut self.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ScanRange;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("volley-recorder-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn concurrent_appends_produce_deterministic_scans() {
        let dirs = [temp_dir("conc-a"), temp_dir("conc-b")];
        let mut scans = Vec::new();
        for dir in &dirs {
            let recorder = SampleRecorder::new(Store::open(dir).unwrap());
            let handles: Vec<_> = (0..4u32)
                .map(|m| {
                    let r = recorder.clone();
                    std::thread::spawn(move || {
                        for t in 0..200u64 {
                            r.record_sample(m, t, f64::from(m) * 100.0 + t as f64);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            recorder.record_alert(49, false);
            recorder.flush();
            assert_eq!(recorder.io_errors(), 0);
            let records: Vec<Record> =
                recorder.with_store(|s| s.scan(&ScanRange::all()).unwrap().collect());
            assert_eq!(records.len(), 801);
            scans.push(records);
        }
        // Thread interleaving differs between the two runs; scans don't.
        assert_eq!(scans[0], scans[1]);
        for dir in &dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn task_tagging_partitions_a_shared_store() {
        let dir = temp_dir("tags");
        let recorder = SampleRecorder::new(Store::open(&dir).unwrap());
        let t0 = recorder.for_task(0);
        let t1 = recorder.for_task(1);
        t0.record_sample(0, 5, 1.0);
        t1.record_sample(0, 5, 2.0);
        t1.record_interval_change(0, 6, 4);
        recorder.flush();
        let only_t1: Vec<Record> =
            recorder.with_store(|s| s.scan(&ScanRange::all().task(1)).unwrap().collect());
        assert_eq!(only_t1.len(), 2);
        assert!(only_t1.iter().all(|r| r.task == 1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
