//! Hand-rolled, cap-enforced HTTP/1.1 request parsing in the style of
//! `runtime::net::FrameBuffer`: an incremental buffer that accepts
//! arbitrary fragmentation off a nonblocking socket, pops complete
//! request heads, and trips its size cap as soon as the buffered bytes
//! *prove* the head exceeds it — whether or not the blank-line
//! terminator has arrived. After any error the parser is poisoned and
//! the connection should be closed, exactly as the frame codec's
//! callers do.
//!
//! Only what the serving plane needs is implemented: `GET` requests
//! with no body (a request advertising one is rejected), a request
//! line, and the `Connection` header. Everything else in the head is
//! tolerated and ignored.

use std::fmt;

/// Default cap on one request head, terminator included.
pub const DEFAULT_MAX_REQUEST_BYTES: usize = 8 * 1024;

/// The head terminator: the blank line after the last header.
const TERMINATOR: &[u8] = b"\r\n\r\n";

/// Parse failure. Any variant poisons the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request head provably exceeds the configured cap.
    HeadTooLarge {
        /// Bytes buffered (or proven pending) for the head.
        size: usize,
        /// The configured cap, terminator included.
        max_size: usize,
    },
    /// The head arrived but is not valid HTTP/1.x.
    Malformed(String),
    /// A previous error already poisoned this parser.
    Poisoned,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::HeadTooLarge { size, max_size } => {
                write!(f, "request head of {size} bytes exceeds cap {max_size}")
            }
            HttpError::Malformed(reason) => write!(f, "malformed request: {reason}"),
            HttpError::Poisoned => write!(f, "parser poisoned by a previous error"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The percent-decoded path, query string stripped.
    pub path: String,
    /// Decoded query parameters in wire order.
    pub query: Vec<(String, String)>,
    /// Whether the client sent `Connection: close`.
    pub close: bool,
}

impl Request {
    /// First value of query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Incremental request-head parser over a bounded buffer.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Start of the unconsumed region in `buf`.
    start: usize,
    /// Scan cursor: `buf[start..scanned]` is known terminator-free, so
    /// repeated polls never rescan the same bytes.
    scanned: usize,
    max_head: usize,
    poisoned: bool,
}

impl RequestParser {
    /// Creates a parser enforcing `max_head` as the cap on one request
    /// head, blank-line terminator included.
    pub fn new(max_head: usize) -> Self {
        RequestParser {
            buf: Vec::new(),
            start: 0,
            scanned: 0,
            max_head,
            poisoned: false,
        }
    }

    /// Appends raw bytes read off the wire.
    pub fn extend(&mut self, data: &[u8]) {
        // Compact the consumed prefix before growing, so the buffer is
        // bounded by pending data, not connection lifetime.
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.scanned -= self.start;
            self.start = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet consumed by a parsed request.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether a previous error poisoned this parser.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Pops the next complete request head, `Ok(None)` when more bytes
    /// are needed.
    ///
    /// # Errors
    ///
    /// [`HttpError::HeadTooLarge`] once the current head provably
    /// exceeds the cap — if the terminator has not arrived after
    /// `max_head` buffered bytes, the eventual head cannot fit either.
    /// [`HttpError::Malformed`] when a complete head fails to parse.
    /// Every error poisons the parser; later calls return
    /// [`HttpError::Poisoned`].
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        if self.poisoned {
            return Err(HttpError::Poisoned);
        }
        // Back up 3 bytes so a terminator straddling the previous scan
        // boundary is still found.
        let resume = self.scanned.saturating_sub(3).max(self.start);
        match find_subslice(&self.buf[resume..], TERMINATOR) {
            Some(offset) => {
                let term = resume + offset;
                let head_len = term + TERMINATOR.len() - self.start;
                if head_len > self.max_head {
                    self.poisoned = true;
                    return Err(HttpError::HeadTooLarge {
                        size: head_len,
                        max_size: self.max_head,
                    });
                }
                let head = self.buf[self.start..term].to_vec();
                self.start = term + TERMINATOR.len();
                self.scanned = self.start;
                match parse_head(&head) {
                    Ok(request) => Ok(Some(request)),
                    Err(e) => {
                        self.poisoned = true;
                        Err(e)
                    }
                }
            }
            None => {
                self.scanned = self.buf.len();
                let pending = self.pending();
                // No terminator in `pending` bytes: the eventual head is
                // at least `pending + 1` bytes (at most 3 terminator
                // bytes may already be buffered), so the cap trips as
                // soon as `pending` reaches it.
                if pending >= self.max_head {
                    self.poisoned = true;
                    return Err(HttpError::HeadTooLarge {
                        size: pending,
                        max_size: self.max_head,
                    });
                }
                Ok(None)
            }
        }
    }
}

/// First occurrence of `needle` in `haystack`.
fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Parses a complete head (terminator already stripped).
fn parse_head(head: &[u8]) -> Result<Request, HttpError> {
    let head = String::from_utf8_lossy(head);
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed(format!(
            "bad request line `{request_line}`"
        )));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "bad request line `{request_line}`"
        )));
    }
    let mut close = false;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line `{line}`")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "connection" => {
                close = value
                    .split(',')
                    .any(|t| t.trim().eq_ignore_ascii_case("close"));
            }
            // The serving plane is GET-only; a request advertising a
            // body would desynchronize the head parser.
            "content-length" if value != "0" => {
                return Err(HttpError::Malformed(
                    "request bodies are not supported".to_string(),
                ));
            }
            "transfer-encoding" => {
                return Err(HttpError::Malformed(
                    "request bodies are not supported".to_string(),
                ));
            }
            _ => {}
        }
    }
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };
    let query = query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k, true), percent_decode(v, true))
        })
        .collect();
    Ok(Request {
        method: method.to_string(),
        path: percent_decode(path, false),
        query,
        close,
    })
}

/// Decodes `%XX` escapes (and, in query components, `+` as space).
/// Invalid escapes pass through verbatim — lenient like the rest of the
/// parser: the bytes are already bounded.
fn percent_decode(s: &str, plus_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(&String::from_utf8_lossy(h), 16).ok()) {
                    Some(byte) => {
                        out.push(byte);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_space => {
                out.push(b' ');
                i += 1;
            }
            byte => {
                out.push(byte);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Builds a complete `Connection`-aware response with a body.
pub fn response(status: u16, reason: &str, content_type: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// Builds the head of a chunked transfer-encoding response; follow with
/// [`chunk`] payloads and a [`final_chunk`].
pub fn chunked_head(status: u16, reason: &str, content_type: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\n\r\n"
    )
    .into_bytes()
}

/// Frames one chunk of a chunked response.
pub fn chunk(payload: &[u8]) -> Vec<u8> {
    let mut out = format!("{:x}\r\n", payload.len()).into_bytes();
    out.extend_from_slice(payload);
    out.extend_from_slice(b"\r\n");
    out
}

/// The zero-length chunk terminating a chunked response.
pub fn final_chunk() -> Vec<u8> {
    b"0\r\n\r\n".to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(wire: &[u8]) -> Request {
        let mut parser = RequestParser::new(DEFAULT_MAX_REQUEST_BYTES);
        parser.extend(wire);
        parser.next_request().expect("parses").expect("complete")
    }

    #[test]
    fn parses_a_simple_get() {
        let req = parse_one(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.query.is_empty());
        assert!(!req.close);
    }

    #[test]
    fn decodes_query_parameters() {
        let req =
            parse_one(b"GET /api/v1/query?task=0&kind=alert&from=10&to=%32%30 HTTP/1.1\r\n\r\n");
        assert_eq!(req.path, "/api/v1/query");
        assert_eq!(req.param("task"), Some("0"));
        assert_eq!(req.param("kind"), Some("alert"));
        assert_eq!(req.param("to"), Some("20"));
        assert_eq!(req.param("missing"), None);
    }

    #[test]
    fn honors_connection_close() {
        let req = parse_one(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(req.close);
    }

    #[test]
    fn byte_at_a_time_arrival_parses_identically() {
        let wire = b"GET /api/v1/query?task=1 HTTP/1.1\r\nHost: a\r\nConnection: close\r\n\r\n";
        let mut parser = RequestParser::new(DEFAULT_MAX_REQUEST_BYTES);
        let mut got = None;
        for &b in wire.iter() {
            parser.extend(&[b]);
            if let Some(req) = parser.next_request().expect("never errors") {
                got = Some(req);
            }
        }
        assert_eq!(got, Some(parse_one(wire)));
    }

    #[test]
    fn pipelined_requests_pop_in_order() {
        let mut parser = RequestParser::new(DEFAULT_MAX_REQUEST_BYTES);
        parser.extend(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        assert_eq!(parser.next_request().unwrap().unwrap().path, "/a");
        assert_eq!(parser.next_request().unwrap().unwrap().path, "/b");
        assert_eq!(parser.next_request().unwrap(), None);
        assert_eq!(parser.pending(), 0);
    }

    #[test]
    fn cap_trips_before_the_terminator_arrives() {
        let mut parser = RequestParser::new(32);
        parser.extend(&[b'A'; 32]);
        match parser.next_request() {
            Err(HttpError::HeadTooLarge {
                size: 32,
                max_size: 32,
            }) => {}
            other => panic!("expected cap trip, got {other:?}"),
        }
        // Poisoned from here on, even if valid bytes follow.
        parser.extend(b"\r\n\r\n");
        assert_eq!(parser.next_request(), Err(HttpError::Poisoned));
    }

    #[test]
    fn oversized_head_with_terminator_also_trips() {
        let mut parser = RequestParser::new(16);
        parser.extend(b"GET /a HTTP/1.1\r\n\r\n");
        assert!(matches!(
            parser.next_request(),
            Err(HttpError::HeadTooLarge { .. })
        ));
    }

    #[test]
    fn malformed_request_line_poisons() {
        let mut parser = RequestParser::new(DEFAULT_MAX_REQUEST_BYTES);
        parser.extend(b"NONSENSE\r\n\r\n");
        assert!(matches!(
            parser.next_request(),
            Err(HttpError::Malformed(_))
        ));
        assert!(parser.poisoned());
    }

    #[test]
    fn bodies_are_rejected() {
        let mut parser = RequestParser::new(DEFAULT_MAX_REQUEST_BYTES);
        parser.extend(b"GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
        assert!(matches!(
            parser.next_request(),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn response_builders_frame_correctly() {
        let full = response(200, "OK", "text/plain", b"hi");
        let text = String::from_utf8(full).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
        assert_eq!(chunk(b"abc"), b"3\r\nabc\r\n".to_vec());
        assert_eq!(final_chunk(), b"0\r\n\r\n".to_vec());
        let head = String::from_utf8(chunked_head(200, "OK", "application/x-ndjson")).unwrap();
        assert!(head.contains("Transfer-Encoding: chunked\r\n"));
    }
}
