//! The listener, event loop and endpoint dispatch.
//!
//! Same shape as `runtime::net::server`: one nonblocking
//! readiness-driven loop over a slot-reused connection table, bounded
//! per-connection buffers in both directions, batched writes, idle
//! reaping, and slow clients dropped instead of waited on. The loop
//! runs on its own thread; the runtime's only contact is the
//! [`ServePublisher`] handed back in the [`ServerHandle`].

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use serde::Serialize;
use volley_obs::{names, Obs};
use volley_store::{QueryParams, RecordKind, Store};

use crate::events::{EventRing, ServePublisher, DEFAULT_STREAM_BUFFER};
use crate::http::{self, HttpError, Request, RequestParser, DEFAULT_MAX_REQUEST_BYTES};
use crate::wire;

/// Most bytes written to one connection per loop pass (batched writes,
/// same constant family as the net layer).
const WRITE_BATCH: usize = 64 * 1024;

/// Read chunk size per pass.
const READ_CHUNK: usize = 16 * 1024;

/// Default cap on one page of query results.
pub const DEFAULT_PAGE_LIMIT: usize = 4096;

/// Default bound on one connection's outbound buffer; a subscriber
/// that falls further behind than this is a slow client and is
/// dropped, like a net peer overflowing its frame queue.
const DEFAULT_WRITE_CAP: usize = 256 * 1024;

/// Default idle reap horizon for non-streaming connections.
const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Serving-plane configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:9464` (`:0` picks a free port).
    pub addr: String,
    /// Store directory served by `/api/v1/query` (`None` disables the
    /// endpoint with `503`). The string is echoed verbatim in query
    /// reports, so spell it the way `volley store query` would.
    pub store_dir: Option<String>,
    /// Cap on one request head, terminator included.
    pub max_request_bytes: usize,
    /// Idle reap horizon for non-streaming connections.
    pub idle_timeout: Duration,
    /// Broadcast ring capacity, in events.
    pub stream_buffer: usize,
    /// Hard cap on one page of query results (`limit` is clamped).
    pub page_limit: usize,
    /// Bound on one connection's outbound buffer before it is dropped
    /// as a slow client.
    pub write_cap: usize,
}

impl ServeConfig {
    /// A configuration with defaults, listening on `addr`.
    pub fn new(addr: impl Into<String>) -> Self {
        ServeConfig {
            addr: addr.into(),
            store_dir: None,
            max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            stream_buffer: DEFAULT_STREAM_BUFFER,
            page_limit: DEFAULT_PAGE_LIMIT,
            write_cap: DEFAULT_WRITE_CAP,
        }
    }

    /// Serves `/api/v1/query` from `dir`.
    #[must_use]
    pub fn with_store_dir(mut self, dir: impl Into<String>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }
}

/// Counters the event loop accumulates and returns at shutdown.
#[derive(Debug, Default, Clone, Serialize)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: u64,
    /// `/metrics` scrapes served.
    pub metrics_requests: u64,
    /// `/api/v1/query` pages served.
    pub query_requests: u64,
    /// `/api/v1/alerts/stream` subscriptions opened.
    pub stream_requests: u64,
    /// Requests for unknown paths or non-GET methods.
    pub other_requests: u64,
    /// Malformed or oversized requests rejected.
    pub bad_requests: u64,
    /// Stream events subscribers missed to ring overflow.
    pub stream_lag_drops: u64,
    /// Connections dropped for draining slower than their write cap.
    pub slow_client_drops: u64,
}

/// Obs instruments the loop records into (pre-resolved handles; the
/// registry lookup is the cold path).
struct Instruments {
    connections: volley_obs::Gauge,
    metrics_requests: volley_obs::Counter,
    query_requests: volley_obs::Counter,
    stream_requests: volley_obs::Counter,
    other_requests: volley_obs::Counter,
    bad_requests: volley_obs::Counter,
    stream_lag_drops: volley_obs::Counter,
    slow_client_drops: volley_obs::Counter,
    request_ns: volley_obs::Histogram,
}

impl Instruments {
    fn new(obs: &Obs) -> Self {
        let registry = obs.registry();
        Instruments {
            connections: registry.gauge(names::SERVE_CONNECTIONS),
            metrics_requests: registry.counter(names::SERVE_REQUESTS_METRICS_TOTAL),
            query_requests: registry.counter(names::SERVE_REQUESTS_QUERY_TOTAL),
            stream_requests: registry.counter(names::SERVE_REQUESTS_STREAM_TOTAL),
            other_requests: registry.counter(names::SERVE_REQUESTS_OTHER_TOTAL),
            bad_requests: registry.counter(names::SERVE_BAD_REQUESTS_TOTAL),
            stream_lag_drops: registry.counter(names::SERVE_STREAM_LAG_DROPS_TOTAL),
            slow_client_drops: registry.counter(names::SERVE_SLOW_CLIENT_DROPS_TOTAL),
            request_ns: registry.histogram(names::SERVE_REQUEST_NS),
        }
    }
}

/// One connection slot.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// Outbound bytes not yet written; `out[written..]` is pending.
    out: Vec<u8>,
    written: usize,
    /// Whether this connection holds an open alert stream.
    streaming: bool,
    /// Next ring sequence this subscriber wants.
    stream_cursor: u64,
    /// Close once the outbound buffer drains.
    close_after_write: bool,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream, max_request_bytes: usize) -> Conn {
        Conn {
            stream,
            parser: RequestParser::new(max_request_bytes),
            out: Vec::new(),
            written: 0,
            streaming: false,
            stream_cursor: 0,
            close_after_write: false,
            last_activity: Instant::now(),
        }
    }

    fn queue(&mut self, bytes: &[u8]) {
        // Compact the written prefix before growing, same bound as the
        // parser buffer: pending data, not connection lifetime.
        if self.written > 0 {
            self.out.drain(..self.written);
            self.written = 0;
        }
        self.out.extend_from_slice(bytes);
    }

    fn pending_out(&self) -> usize {
        self.out.len() - self.written
    }
}

/// The embedded HTTP server.
pub struct Server;

impl Server {
    /// Binds `config.addr` and spawns the event loop. The bind happens
    /// on the caller's thread so address errors surface immediately.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: ServeConfig, obs: &Obs) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let ring = EventRing::new(config.stream_buffer);
        let publisher = ServePublisher::new(ring);
        let stop = Arc::new(AtomicBool::new(false));
        let loop_publisher = publisher.clone();
        let loop_stop = Arc::clone(&stop);
        let loop_obs = obs.clone();
        let join = thread::Builder::new()
            .name("volley-serve".to_string())
            .spawn(move || event_loop(listener, config, loop_obs, loop_publisher, loop_stop))
            .expect("spawning the serve thread never fails");
        Ok(ServerHandle {
            local_addr,
            publisher,
            stop,
            join: Some(join),
        })
    }
}

/// Handle to a running server: the publisher to feed, the bound
/// address, and shutdown.
pub struct ServerHandle {
    local_addr: SocketAddr,
    publisher: ServePublisher,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<ServeStats>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0` ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The publisher feeding this server's stream and `/metrics` tick.
    pub fn publisher(&self) -> ServePublisher {
        self.publisher.clone()
    }

    /// Stops the event loop: open streams get their final chunk,
    /// buffers drain best-effort, and the loop's stats come back.
    pub fn shutdown(mut self) -> ServeStats {
        self.stop.store(true, Ordering::Relaxed);
        match self.join.take() {
            Some(join) => join.join().unwrap_or_default(),
            None => ServeStats::default(),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// The readiness-driven loop: accept, read/parse/dispatch, pump
/// streams, write in batches, reap, park 1ms when nothing progressed.
fn event_loop(
    listener: TcpListener,
    config: ServeConfig,
    obs: Obs,
    publisher: ServePublisher,
    stop: Arc<AtomicBool>,
) -> ServeStats {
    let instruments = Instruments::new(&obs);
    let mut stats = ServeStats::default();
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut read_buf = [0u8; READ_CHUNK];
    let mut stopping = false;
    loop {
        let mut progress = false;

        if !stopping && stop.load(Ordering::Relaxed) {
            // Graceful: terminate open streams, then drain what's
            // buffered below and exit.
            stopping = true;
            for conn in conns.iter_mut().flatten() {
                if conn.streaming {
                    let (_, _, lines) = publisher.ring().collect_since(conn.stream_cursor);
                    for line in &lines {
                        let mut payload = line.as_bytes().to_vec();
                        payload.push(b'\n');
                        conn.queue(&http::chunk(&payload));
                    }
                    conn.queue(&http::final_chunk());
                }
                conn.close_after_write = true;
            }
        }

        // Accept phase.
        if !stopping {
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        stats.connections += 1;
                        let conn = Conn::new(stream, config.max_request_bytes);
                        match conns.iter().position(Option::is_none) {
                            Some(slot) => conns[slot] = Some(conn),
                            None => conns.push(Some(conn)),
                        }
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }

        for slot in conns.iter_mut() {
            let Some(conn) = slot.as_mut() else { continue };
            let mut drop_conn = false;

            // Read + parse + dispatch phase.
            if !conn.close_after_write {
                loop {
                    match conn.stream.read(&mut read_buf) {
                        Ok(0) => {
                            drop_conn = true;
                            break;
                        }
                        Ok(n) => {
                            progress = true;
                            conn.last_activity = Instant::now();
                            conn.parser.extend(&read_buf[..n]);
                            loop {
                                match conn.parser.next_request() {
                                    Ok(Some(request)) => {
                                        let started = Instant::now();
                                        dispatch(
                                            &request,
                                            conn,
                                            &config,
                                            &obs,
                                            &publisher,
                                            &instruments,
                                            &mut stats,
                                        );
                                        instruments
                                            .request_ns
                                            .record(started.elapsed().as_nanos() as u64);
                                    }
                                    Ok(None) => break,
                                    Err(error) => {
                                        stats.bad_requests += 1;
                                        instruments.bad_requests.inc();
                                        let body = format!("{error}\n");
                                        let status = match error {
                                            HttpError::HeadTooLarge { .. } => {
                                                (431, "Request Header Fields Too Large")
                                            }
                                            _ => (400, "Bad Request"),
                                        };
                                        conn.queue(&http::response(
                                            status.0,
                                            status.1,
                                            "text/plain; charset=utf-8",
                                            body.as_bytes(),
                                        ));
                                        conn.close_after_write = true;
                                        break;
                                    }
                                }
                            }
                            if conn.close_after_write {
                                break;
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            drop_conn = true;
                            break;
                        }
                    }
                }
            }

            // Stream pump phase: frame any events published since the
            // subscriber's cursor.
            if !drop_conn && conn.streaming && !stopping {
                let (next, lagged, lines) = publisher.ring().collect_since(conn.stream_cursor);
                if lagged > 0 {
                    stats.stream_lag_drops += lagged;
                    instruments.stream_lag_drops.add(lagged);
                }
                if !lines.is_empty() {
                    progress = true;
                    conn.last_activity = Instant::now();
                    for line in &lines {
                        let mut payload = line.as_bytes().to_vec();
                        payload.push(b'\n');
                        conn.queue(&http::chunk(&payload));
                    }
                }
                conn.stream_cursor = next;
            }

            // A client that lets its outbound buffer blow the cap is
            // slow; cut it loose rather than buffer unboundedly.
            if !drop_conn && conn.pending_out() > config.write_cap {
                stats.slow_client_drops += 1;
                instruments.slow_client_drops.inc();
                drop_conn = true;
            }

            // Write phase, batched.
            if !drop_conn && conn.pending_out() > 0 {
                let mut budget = WRITE_BATCH;
                while budget > 0 && conn.pending_out() > 0 {
                    let end = (conn.written + budget.min(conn.pending_out())).min(conn.out.len());
                    match conn.stream.write(&conn.out[conn.written..end]) {
                        Ok(0) => {
                            drop_conn = true;
                            break;
                        }
                        Ok(n) => {
                            progress = true;
                            conn.written += n;
                            budget = budget.saturating_sub(n);
                            conn.last_activity = Instant::now();
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            drop_conn = true;
                            break;
                        }
                    }
                }
                if conn.pending_out() == 0 {
                    conn.out.clear();
                    conn.written = 0;
                }
            }

            // Close/reap phase.
            if !drop_conn && conn.close_after_write && conn.pending_out() == 0 {
                drop_conn = true;
            }
            if !drop_conn
                && !conn.streaming
                && conn.pending_out() == 0
                && conn.last_activity.elapsed() > config.idle_timeout
            {
                drop_conn = true;
            }
            if drop_conn {
                *slot = None;
            }
        }

        let open = conns.iter().filter(|slot| slot.is_some()).count();
        instruments.connections.set(open as f64);
        if stopping && (open == 0 || !progress) {
            // Stopping: exit once buffers drained or no client is
            // making progress (a stalled client doesn't pin shutdown).
            instruments.connections.set(0.0);
            return stats;
        }
        if !progress {
            thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Routes one parsed request, queuing the response (or the stream
/// head) on the connection.
fn dispatch(
    request: &Request,
    conn: &mut Conn,
    config: &ServeConfig,
    obs: &Obs,
    publisher: &ServePublisher,
    instruments: &Instruments,
    stats: &mut ServeStats,
) {
    if request.close {
        conn.close_after_write = true;
    }
    if request.method != "GET" {
        stats.other_requests += 1;
        instruments.other_requests.inc();
        conn.queue(&http::response(
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            b"only GET is served\n",
        ));
        return;
    }
    match request.path.as_str() {
        "/metrics" => {
            stats.metrics_requests += 1;
            instruments.metrics_requests.inc();
            let body = obs.snapshot(publisher.tick()).to_prometheus();
            conn.queue(&http::response(
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                body.as_bytes(),
            ));
        }
        "/api/v1/query" => {
            stats.query_requests += 1;
            instruments.query_requests.inc();
            let response = query_endpoint(request, config);
            conn.queue(&response);
        }
        "/api/v1/alerts/stream" => {
            stats.stream_requests += 1;
            instruments.stream_requests.inc();
            conn.queue(&http::chunked_head(200, "OK", "application/x-ndjson"));
            conn.streaming = true;
            // Cursor 0: replay whatever history the ring retains, so
            // alerts raised before this subscriber arrived still show.
            conn.stream_cursor = 0;
        }
        _ => {
            stats.other_requests += 1;
            instruments.other_requests.inc();
            conn.queue(&http::response(
                404,
                "Not Found",
                "text/plain; charset=utf-8",
                b"unknown path\n",
            ));
        }
    }
}

/// Parses one `u64`-ish query parameter.
fn parse_param<T: std::str::FromStr>(request: &Request, name: &str) -> Result<Option<T>, String> {
    match request.param(name) {
        None | Some("") => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("bad {name} `{raw}`")),
    }
}

/// Builds the `/api/v1/query` response: params → [`QueryParams`] →
/// shared query module → shared envelope. Byte-identical to
/// `volley store query --json` for the same range.
fn query_endpoint(request: &Request, config: &ServeConfig) -> Vec<u8> {
    let Some(dir) = config.store_dir.as_deref() else {
        return http::response(
            503,
            "Service Unavailable",
            "text/plain; charset=utf-8",
            b"no store attached to this server\n",
        );
    };
    let bad = |reason: String| {
        http::response(
            400,
            "Bad Request",
            "text/plain; charset=utf-8",
            format!("{reason}\n").as_bytes(),
        )
    };
    let kind = match request.param("kind") {
        None | Some("") => None,
        Some(raw) => match RecordKind::parse(raw) {
            Some(kind) => Some(kind),
            None => return bad(format!("bad kind `{raw}`")),
        },
    };
    let params = QueryParams {
        task: match parse_param(request, "task") {
            Ok(v) => v,
            Err(e) => return bad(e),
        },
        monitor: match parse_param(request, "monitor") {
            Ok(v) => v,
            Err(e) => return bad(e),
        },
        kind,
        from: match parse_param(request, "from") {
            Ok(v) => v.unwrap_or(0),
            Err(e) => return bad(e),
        },
        to: match parse_param(request, "to") {
            Ok(v) => v.unwrap_or(u64::MAX),
            Err(e) => return bad(e),
        },
        limit: match parse_param::<usize>(request, "limit") {
            Ok(v) => Some(v.unwrap_or(config.page_limit).min(config.page_limit)),
            Err(e) => return bad(e),
        },
        cursor: match parse_param(request, "cursor") {
            Ok(v) => v.unwrap_or(0),
            Err(e) => return bad(e),
        },
    };
    let store = match Store::open(dir) {
        Ok(store) => store,
        Err(e) => {
            return http::response(
                503,
                "Service Unavailable",
                "text/plain; charset=utf-8",
                format!("cannot open store {dir}: {e}\n").as_bytes(),
            )
        }
    };
    match volley_store::query::run_query(&store, dir, &params) {
        Ok(report) => http::response(
            200,
            "OK",
            "application/json; charset=utf-8",
            wire::envelope("store", &report).as_bytes(),
        ),
        Err(e) => http::response(
            500,
            "Internal Server Error",
            "text/plain; charset=utf-8",
            format!("scan failed: {e}\n").as_bytes(),
        ),
    }
}
