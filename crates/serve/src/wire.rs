//! The versioned JSON report envelope — one renderer shared by the CLI
//! (`--json` reports) and the HTTP query endpoint, so the two surfaces
//! cannot drift: for the same report they are byte-identical.

use serde::Serialize;

/// The version of the JSON report envelope shared by every subcommand
/// and by the HTTP API. Bump when the envelope or any embedded report
/// shape changes; consumers should refuse versions they don't
/// understand.
///
/// Version history: 1 = the original `run` report (flat, `schema` field
/// inline); 2 = the `chaos` report with the durability counters; 3 = one
/// envelope for all subcommands — `{schema, command, report}` with the
/// per-command payload under `report`; 4 = the `chaos` report gains the
/// storage-fault `degradation` section; 5 = the `store query` report
/// gains the pagination `next_cursor` field and the envelope is also
/// served over HTTP (`/api/v1/query`); 6 = the `sim` and `run` reports
/// gain an `engine` section with the sharded engine's execution counters
/// (epochs, merges, lane swaps, arena reuses — the deterministic subset
/// of `EngineStats`).
pub const REPORT_SCHEMA_VERSION: u32 = 6;

/// Renders `report` wrapped in the versioned envelope —
/// `{"schema": N, "command": "<subcommand>", "report": {…}}` — as
/// 2-space-indented JSON with a trailing newline, exactly as the CLI
/// prints it.
pub fn envelope<T: Serialize + ?Sized>(command: &str, report: &T) -> String {
    let envelope = serde::Value::Object(vec![
        ("schema".to_string(), REPORT_SCHEMA_VERSION.to_value()),
        ("command".to_string(), command.to_value()),
        ("report".to_string(), report.to_value()),
    ]);
    let mut out = serde_json::to_string_pretty(&envelope).expect("serializable");
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Sample {
        matched: u64,
    }

    #[test]
    fn envelope_is_pretty_with_trailing_newline() {
        let text = envelope("store", &Sample { matched: 3 });
        assert!(text.starts_with("{\n  \"schema\": 6,\n  \"command\": \"store\",\n"));
        assert!(text.ends_with("}\n"));
        assert!(text.contains("\"matched\": 3"));
    }
}
