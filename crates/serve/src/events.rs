//! The bounded broadcast ring feeding `/api/v1/alerts/stream`, and the
//! [`ServePublisher`] handle the runtime pushes events through.
//!
//! The design mirrors the net layer's backpressure contract: the
//! runtime side never blocks and never grows unbounded state. Each
//! publish is one mutex push into a fixed-capacity ring; when the ring
//! wraps past a slow subscriber's cursor the missed events are
//! *counted* (like `net_backpressure_stalls_total`) and the subscriber
//! keeps going from the oldest retained event. Late subscribers replay
//! whatever history the ring still holds, so an alert raised before
//! the first client connects is still delivered.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::Serialize;

/// Default capacity of the broadcast ring, in events.
pub const DEFAULT_STREAM_BUFFER: usize = 1024;

struct RingInner {
    /// `(sequence, NDJSON line)` pairs, oldest first.
    buf: VecDeque<(u64, Arc<str>)>,
    /// Sequence number the next published event receives.
    next_seq: u64,
    cap: usize,
}

/// A bounded multi-subscriber broadcast ring of NDJSON event lines.
///
/// Cloning is cheap; all clones share the ring.
#[derive(Clone)]
pub struct EventRing {
    inner: Arc<Mutex<RingInner>>,
}

impl EventRing {
    /// Creates a ring retaining at most `cap` events (minimum 1).
    pub fn new(cap: usize) -> Self {
        EventRing {
            inner: Arc::new(Mutex::new(RingInner {
                buf: VecDeque::new(),
                next_seq: 0,
                cap: cap.max(1),
            })),
        }
    }

    /// Publishes one event line (no trailing newline), evicting the
    /// oldest retained event if the ring is full. Never blocks beyond
    /// the mutex.
    pub fn publish_line(&self, line: impl Into<Arc<str>>) {
        let mut inner = self.inner.lock().expect("event ring lock never poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() == inner.cap {
            inner.buf.pop_front();
        }
        inner.buf.push_back((seq, line.into()));
    }

    /// Total events ever published.
    pub fn published(&self) -> u64 {
        self.inner
            .lock()
            .expect("event ring lock never poisoned")
            .next_seq
    }

    /// Collects every retained event with sequence `>= cursor`.
    ///
    /// Returns `(next_cursor, lagged, lines)` where `lagged` counts
    /// events that were published past `cursor` but already evicted —
    /// the subscriber's overflow, charged like net backpressure.
    pub fn collect_since(&self, cursor: u64) -> (u64, u64, Vec<Arc<str>>) {
        let inner = self.inner.lock().expect("event ring lock never poisoned");
        let oldest = inner.buf.front().map_or(inner.next_seq, |(seq, _)| *seq);
        let lagged = oldest.saturating_sub(cursor);
        let lines = inner
            .buf
            .iter()
            .filter(|(seq, _)| *seq >= cursor)
            .map(|(_, line)| Arc::clone(line))
            .collect();
        (inner.next_seq, lagged, lines)
    }
}

impl fmt::Debug for EventRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventRing")
            .field("published", &self.published())
            .finish_non_exhaustive()
    }
}

/// The runtime-facing handle: formats lifecycle events as NDJSON and
/// publishes them into the ring, plus a relaxed atomic carrying the
/// current tick for `/metrics` snapshot stamping.
///
/// Every method is a couple of allocations and one bounded ring push —
/// safe to call from the tick path.
#[derive(Clone)]
pub struct ServePublisher {
    ring: EventRing,
    tick: Arc<AtomicU64>,
}

impl fmt::Debug for ServePublisher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServePublisher")
            .field("tick", &self.tick())
            .field("ring", &self.ring)
            .finish()
    }
}

impl ServePublisher {
    /// Creates a publisher over `ring`.
    pub fn new(ring: EventRing) -> Self {
        ServePublisher {
            ring,
            tick: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The ring this publisher feeds.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// Records the runtime's current tick (stamps `/metrics` scrapes).
    pub fn set_tick(&self, tick: u64) {
        self.tick.store(tick, Ordering::Relaxed);
    }

    /// The most recently recorded tick.
    pub fn tick(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    fn publish(&self, event: &str, fields: Vec<(String, serde::Value)>) {
        let mut object = vec![("event".to_string(), event.to_value())];
        object.extend(fields);
        let line = serde_json::to_string(&serde::Value::Object(object)).expect("serializable");
        self.ring.publish_line(line.as_str());
    }

    /// A state alert fired at `tick`.
    pub fn alert(&self, tick: u64, degraded: bool) {
        self.publish(
            "alert",
            vec![
                ("tick".to_string(), tick.to_value()),
                ("degraded".to_string(), degraded.to_value()),
            ],
        );
    }

    /// A coordinator failover began epoch `epoch` around `tick`.
    pub fn epoch(&self, epoch: u64, tick: u64) {
        self.publish(
            "epoch",
            vec![
                ("epoch".to_string(), epoch.to_value()),
                ("tick".to_string(), tick.to_value()),
            ],
        );
    }

    /// A persistence sink entered or left degraded mode at `tick`.
    pub fn degradation(&self, sink: &str, degraded: bool, tick: u64) {
        self.publish(
            "degradation",
            vec![
                ("sink".to_string(), sink.to_value()),
                ("degraded".to_string(), degraded.to_value()),
                ("tick".to_string(), tick.to_value()),
            ],
        );
    }

    /// The run completed after `ticks` ticks. Streaming clients can
    /// hang up once they see this.
    pub fn run_end(&self, ticks: u64) {
        self.publish("run_end", vec![("ticks".to_string(), ticks.to_value())]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn late_subscriber_replays_history() {
        let ring = EventRing::new(8);
        let publisher = ServePublisher::new(ring.clone());
        publisher.alert(10, false);
        publisher.alert(20, true);
        let (next, lagged, lines) = ring.collect_since(0);
        assert_eq!(next, 2);
        assert_eq!(lagged, 0);
        assert_eq!(
            lines
                .iter()
                .map(|l| l.as_ref().to_owned())
                .collect::<Vec<_>>(),
            vec![
                r#"{"event":"alert","tick":10,"degraded":false}"#,
                r#"{"event":"alert","tick":20,"degraded":true}"#,
            ]
        );
        // Caught up: nothing new, no lag.
        let (next, lagged, lines) = ring.collect_since(next);
        assert_eq!((next, lagged, lines.len()), (2, 0, 0));
    }

    #[test]
    fn overflow_is_counted_not_blocking() {
        let ring = EventRing::new(4);
        for tick in 0..10 {
            ring.publish_line(format!("line-{tick}").as_str());
        }
        // Cursor 0 missed everything the ring no longer retains.
        let (next, lagged, lines) = ring.collect_since(0);
        assert_eq!(next, 10);
        assert_eq!(lagged, 6);
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].as_ref(), "line-6");
    }

    #[test]
    fn event_shapes_are_stable() {
        let ring = EventRing::new(8);
        let publisher = ServePublisher::new(ring.clone());
        publisher.epoch(2, 60);
        publisher.degradation("wal", true, 61);
        publisher.run_end(150);
        let (_, _, lines) = ring.collect_since(0);
        assert_eq!(
            lines[0].as_ref(),
            r#"{"event":"epoch","epoch":2,"tick":60}"#
        );
        assert_eq!(
            lines[1].as_ref(),
            r#"{"event":"degradation","sink":"wal","degraded":true,"tick":61}"#
        );
        assert_eq!(lines[2].as_ref(), r#"{"event":"run_end","ticks":150}"#);
    }

    #[test]
    fn tick_is_shared_across_clones() {
        let publisher = ServePublisher::new(EventRing::new(4));
        let clone = publisher.clone();
        publisher.set_tick(42);
        assert_eq!(clone.tick(), 42);
    }
}
