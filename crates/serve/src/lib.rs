//! # volley-serve
//!
//! The live traffic surface of the Volley reproduction — an embedded
//! HTTP/1.1 server on `std::net::TcpListener` (no external deps)
//! hosted next to the coordinator, serving the "millions of users"
//! query plane the paper assumes exists around a datacenter monitor.
//!
//! Three endpoint families:
//!
//! - `GET /metrics` — Prometheus text exposition rendered directly
//!   from the **live** obs registry (not the file snapshot).
//! - `GET /api/v1/query?task=&monitor=&from=&to=` — JSON range
//!   queries compiled to a [`volley_store::ScanRange`] over the
//!   recorded sample store, with a bounded page size and a pagination
//!   cursor. The report and its rendering are shared with
//!   `volley store query` so the two surfaces are byte-identical.
//! - `GET /api/v1/alerts/stream` — a chunked transfer-encoding
//!   subscription pushing alert, epoch and degradation events as
//!   NDJSON from a bounded broadcast ring; subscriber overflow is
//!   counted like net backpressure, never blocking the runtime.
//!
//! ## Isolation guarantees
//!
//! The server runs the same nonblocking readiness-driven event-loop
//! pattern as `runtime::net`: bounded per-connection buffers, batched
//! writes, idle reaping, and slow clients dropped rather than waited
//! on. The runtime only ever touches the serving plane through
//! [`ServePublisher`] — a couple of relaxed atomic stores and a
//! bounded ring push per event — so query traffic cannot block a
//! monitoring tick. The existing self-monitor watchdog ("Volley
//! watching Volley") gates that this stays true under load.
//!
//! ## Layout
//!
//! - [`http`]: the cap-enforced incremental request parser (in the
//!   style of `runtime::net::FrameBuffer`) and response builders.
//! - [`events`]: the bounded broadcast ring and [`ServePublisher`].
//! - [`wire`]: the versioned JSON report envelope shared with the CLI.
//! - [`server`]: the listener, event loop and endpoint dispatch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod http;
pub mod server;
pub mod wire;

pub use events::{EventRing, ServePublisher, DEFAULT_STREAM_BUFFER};
pub use http::{HttpError, Request, RequestParser, DEFAULT_MAX_REQUEST_BYTES};
pub use server::{ServeConfig, ServeStats, Server, ServerHandle, DEFAULT_PAGE_LIMIT};
pub use wire::{envelope, REPORT_SCHEMA_VERSION};
