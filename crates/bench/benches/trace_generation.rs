//! Criterion benchmarks of the workload generators (B6 of DESIGN.md):
//! trace-generation throughput determines how fast the figure harnesses
//! and large simulator runs can go.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use volley_traces::http::HttpWorkloadConfig;
use volley_traces::netflow::NetflowConfig;
use volley_traces::sysmetrics::SystemMetricsGenerator;
use volley_traces::zipf::Zipf;

const TICKS: usize = 2000;

fn bench_netflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("netflow");
    group.throughput(Throughput::Elements(TICKS as u64));
    group.bench_function("generate_vm_2000_windows", |b| {
        let config = NetflowConfig::builder().seed(1).build();
        b.iter(|| config.generate_vm(0, TICKS))
    });
    group.finish();
}

fn bench_sysmetrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("sysmetrics");
    group.throughput(Throughput::Elements(TICKS as u64));
    for metric in [0usize, 28] {
        // cpu_user (smooth) vs vmstat_cs (noisy)
        group.bench_with_input(
            BenchmarkId::new("trace_2000_ticks", metric),
            &metric,
            |b, &m| {
                let generator = SystemMetricsGenerator::new(1);
                b.iter(|| generator.trace(0, m, TICKS))
            },
        );
    }
    group.finish();
}

fn bench_http(c: &mut Criterion) {
    let mut group = c.benchmark_group("http");
    group.throughput(Throughput::Elements(TICKS as u64));
    group.bench_function("generate_20_objects_2000_ticks", |b| {
        let config = HttpWorkloadConfig::builder().seed(1).objects(20).build();
        b.iter(|| config.generate(TICKS))
    });
    group.finish();
}

fn bench_zipf(c: &mut Criterion) {
    use rand::SeedableRng;
    let mut group = c.benchmark_group("zipf");
    group.bench_function("sample_n1000", |b| {
        let zipf = Zipf::new(1000, 1.0).expect("valid");
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        b.iter(|| zipf.sample(&mut rng))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_netflow,
    bench_sysmetrics,
    bench_http,
    bench_zipf
);
criterion_main!(benches);
