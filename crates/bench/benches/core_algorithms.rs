//! Criterion micro-benchmarks of the hot algorithmic kernels (B1–B4 of
//! DESIGN.md): the violation-likelihood bound, the online statistics
//! update, the full per-sample adaptation step, and one coordinator
//! allocation round.
//!
//! The paper's efficiency argument rests on "violation likelihood
//! estimation with negligible overhead" (§III): these benches quantify
//! "negligible" — every kernel should sit in the nanosecond-to-
//! sub-microsecond range, orders of magnitude below any real sampling
//! operation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use volley_core::adaptation::PeriodReport;
use volley_core::allocation::{allowance_ladder, AllocationConfig, ErrorAllocator};
use volley_core::likelihood::sustainable_intervals;
use volley_core::{
    exceed_probability_bound, misdetection_bound, AdaptationConfig, AdaptiveSampler, Interval,
    OnlineStats,
};

fn bench_likelihood(c: &mut Criterion) {
    let mut group = c.benchmark_group("likelihood");
    group.bench_function("exceed_probability_bound", |b| {
        b.iter(|| {
            exceed_probability_bound(
                black_box(42.0),
                black_box(100.0),
                black_box(0.3),
                black_box(2.5),
                black_box(4),
            )
        })
    });
    for interval in [1u32, 4, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("misdetection_bound", interval),
            &interval,
            |b, &interval| {
                b.iter(|| {
                    misdetection_bound(
                        black_box(42.0),
                        black_box(100.0),
                        black_box(0.3),
                        black_box(2.5),
                        interval,
                    )
                })
            },
        );
    }
    group.bench_function("sustainable_intervals_8rungs", |b| {
        let limits = allowance_ladder(0.01).map(|e| 0.8 * e);
        let mut out = [0u32; 8];
        b.iter(|| {
            sustainable_intervals(
                black_box(42.0),
                black_box(100.0),
                black_box(0.3),
                black_box(2.5),
                black_box(32),
                &limits,
                &mut out,
            );
            out[7]
        })
    });
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    c.bench_function("online_stats_update", |b| {
        let mut stats = OnlineStats::new();
        let mut x = 0.0f64;
        b.iter(|| {
            x += 0.7;
            if x > 1000.0 {
                x = 0.0;
            }
            stats.update(black_box(x));
            stats.variance()
        })
    });
}

fn bench_adaptation(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptation");
    for (label, max_interval) in [("im8", 8u32), ("im32", 32)] {
        group.bench_function(format!("observe_{label}"), |b| {
            let config = AdaptationConfig::builder()
                .error_allowance(0.01)
                .max_interval(max_interval)
                .build()
                .expect("valid");
            let mut sampler = AdaptiveSampler::new(config, 100.0);
            let mut tick = 0u64;
            b.iter(|| {
                let value = 40.0 + ((tick % 17) as f64);
                let obs = sampler.observe(black_box(tick), black_box(value));
                tick = obs.next_sample_tick;
                obs.beta
            })
        });
    }
    group.finish();
}

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation");
    for monitors in [10usize, 100] {
        group.bench_with_input(
            BenchmarkId::new("update_round", monitors),
            &monitors,
            |b, &monitors| {
                let mut allocator =
                    ErrorAllocator::new(AllocationConfig::default(), 0.01, monitors)
                        .expect("valid");
                let ladder = allowance_ladder(0.01);
                let reports: Vec<PeriodReport> = (0..monitors)
                    .map(|i| {
                        let difficulty = 10f64.powi(-((i % 6) as i32)) * 1e-2;
                        PeriodReport {
                            observations: 1000,
                            avg_beta_current: difficulty,
                            avg_beta_grown: (difficulty * 8.0).min(1.0),
                            avg_potential_reduction: 0.5,
                            interval: Interval::new_clamped(1 + (i as u32 % 4)),
                            at_max_interval: false,
                            cost_curve: ladder.iter().map(|e| (difficulty / e).min(1.0)).collect(),
                        }
                    })
                    .collect();
                b.iter(|| allocator.update(black_box(&reports), 0.2).expect("update"))
            },
        );
    }
    group.finish();
}

fn bench_window(c: &mut Criterion) {
    use volley_core::window::{AggregateKind, SlidingWindow, WindowedSampler};
    let mut group = c.benchmark_group("window");
    group.bench_function("sliding_window_push_w60", |b| {
        let mut window = SlidingWindow::new(60).expect("valid");
        let mut tick = 0u64;
        b.iter(|| {
            window.push(tick, black_box((tick % 97) as f64));
            tick += 1;
            window.aggregate(AggregateKind::Mean)
        })
    });
    group.bench_function("windowed_sampler_observe", |b| {
        let config = AdaptationConfig::builder()
            .error_allowance(0.01)
            .build()
            .expect("valid");
        let mut sampler =
            WindowedSampler::new(config, 1000.0, 60, AggregateKind::Mean).expect("valid");
        let mut tick = 0u64;
        b.iter(|| {
            let obs = sampler.observe(black_box(tick), black_box(40.0 + (tick % 17) as f64));
            tick = obs.next_sample_tick;
            obs.beta
        })
    });
    group.finish();
}

fn bench_condition(c: &mut Criterion) {
    use volley_core::condition::{Condition, ConditionSampler};
    let mut group = c.benchmark_group("condition");
    group.bench_function("band_sampler_observe", |b| {
        let config = AdaptationConfig::builder()
            .error_allowance(0.01)
            .build()
            .expect("valid");
        let mut sampler = ConditionSampler::new(
            config,
            Condition::Outside {
                low: -1000.0,
                high: 1000.0,
            },
        )
        .expect("valid");
        let mut tick = 0u64;
        b.iter(|| {
            let obs = sampler.observe(black_box(tick), black_box((tick % 31) as f64));
            tick = obs.next_sample_tick;
            obs.beta
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_likelihood,
    bench_stats,
    bench_adaptation,
    bench_allocation,
    bench_window,
    bench_condition
);
criterion_main!(benches);
