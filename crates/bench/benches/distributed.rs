//! Criterion benchmarks of the distributed-task and simulator substrates
//! (B5 of DESIGN.md): per-tick stepping cost of a coordinator-managed
//! task and event-queue throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use volley_core::task::TaskSpec;
use volley_core::DistributedTask;
use volley_sim::{EventQueue, SimDuration, SimTime};

fn bench_task_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_task");
    for monitors in [5usize, 40] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(
            BenchmarkId::new("step", monitors),
            &monitors,
            |b, &monitors| {
                let spec = TaskSpec::builder(1e6)
                    .monitors(monitors)
                    .error_allowance(0.01)
                    .max_interval(16)
                    .build()
                    .expect("valid spec");
                let mut task = DistributedTask::new(&spec).expect("valid task");
                let values: Vec<f64> = (0..monitors).map(|m| 10.0 + m as f64).collect();
                let mut tick = 0u64;
                b.iter(|| {
                    let out = task.step(tick, black_box(&values)).expect("step");
                    tick += 1;
                    out.scheduled_samples
                })
            },
        );
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.bench_function("schedule_pop_cycle", |b| {
        let mut queue: EventQueue<u64> = EventQueue::new();
        // Keep a rolling population of 1024 events.
        for i in 0..1024u64 {
            queue.schedule(SimTime::from_micros(i), i);
        }
        b.iter(|| {
            let (t, e) = queue.pop().expect("non-empty");
            queue.schedule(t + SimDuration::from_micros(1024), e);
            e
        })
    });
    group.finish();
}

criterion_group!(benches, bench_task_step, bench_event_queue);
criterion_main!(benches);
