//! The shared sweep machinery behind the Figure 5/7 binaries.

use serde::{Deserialize, Serialize};

use volley_core::accuracy::{evaluate_policy, AccuracyReport};
use volley_core::{AdaptationConfig, AdaptiveSampler};

use crate::params::SweepParams;
use crate::workloads::{TraceFamily, WorkloadSet};

/// One cell of an `err × k` sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Error allowance used.
    pub error_allowance: f64,
    /// Alert selectivity `k` in percent.
    pub selectivity: f64,
    /// Cost/accuracy merged over all tasks.
    pub report: AccuracyReport,
}

impl SweepResult {
    /// The sampling ratio vs the periodic baseline (Figure 5 y-axis).
    pub fn sampling_ratio(&self) -> f64 {
        self.report.cost_ratio()
    }

    /// The actual mis-detection rate (Figure 7 y-axis).
    pub fn misdetection_rate(&self) -> f64 {
        self.report.misdetection_rate()
    }
}

/// Runs one `(err, k)` cell over a workload set: every task gets its own
/// selectivity-derived threshold and adaptive sampler; reports are merged.
pub fn run_cell(
    workload: &WorkloadSet,
    error_allowance: f64,
    selectivity: f64,
    params: &SweepParams,
) -> SweepResult {
    let adaptation = AdaptationConfig::builder()
        .error_allowance(error_allowance)
        .max_interval(params.max_interval)
        .patience(params.patience)
        .build()
        .expect("sweep parameters are valid");
    let mut merged: Option<AccuracyReport> = None;
    for trace in workload.traces() {
        let threshold = volley_core::selectivity_threshold(trace, selectivity)
            .expect("non-empty trace, valid selectivity");
        let mut policy = AdaptiveSampler::new(adaptation, threshold);
        let report = evaluate_policy(&mut policy, trace);
        merged = Some(match merged {
            Some(m) => m.merged(&report),
            None => report,
        });
    }
    SweepResult {
        error_allowance,
        selectivity,
        report: merged.expect("workload sets are non-empty"),
    }
}

/// Full `err × k` sampling-ratio sweep for one family (Figure 5 a/b/c).
pub fn sweep_sampling_ratio(
    family: TraceFamily,
    errs: &[f64],
    selectivities: &[f64],
    params: &SweepParams,
) -> Vec<SweepResult> {
    let workload = WorkloadSet::generate(family, params);
    let mut out = Vec::with_capacity(errs.len() * selectivities.len());
    for &k in selectivities {
        for &err in errs {
            out.push(run_cell(&workload, err, k, params));
        }
    }
    out
}

/// Full `err × k` mis-detection sweep (Figure 7) — same cells, different
/// projection; kept separate so binaries read naturally.
pub fn sweep_misdetection(
    family: TraceFamily,
    errs: &[f64],
    selectivities: &[f64],
    params: &SweepParams,
) -> Vec<SweepResult> {
    sweep_sampling_ratio(family, errs, selectivities, params)
}

/// Builds the Figure 5-style matrix (rows = error allowances, columns =
/// selectivities, cells = sampling ratio) for one family.
pub fn sampling_ratio_matrix(
    family: TraceFamily,
    errs: &[f64],
    selectivities: &[f64],
    params: &SweepParams,
) -> crate::report::Matrix {
    let results = sweep_sampling_ratio(family, errs, selectivities, params);
    project_matrix(
        format!(
            "{} monitoring: sampling ratio vs periodic baseline",
            family.name()
        ),
        errs,
        selectivities,
        &results,
        SweepResult::sampling_ratio,
    )
}

/// Builds the Figure 7-style matrix (cells = actual mis-detection rate).
pub fn misdetection_matrix(
    family: TraceFamily,
    errs: &[f64],
    selectivities: &[f64],
    params: &SweepParams,
) -> crate::report::Matrix {
    let results = sweep_misdetection(family, errs, selectivities, params);
    project_matrix(
        format!("{} monitoring: actual mis-detection rate", family.name()),
        errs,
        selectivities,
        &results,
        SweepResult::misdetection_rate,
    )
}

fn project_matrix(
    title: String,
    errs: &[f64],
    selectivities: &[f64],
    results: &[SweepResult],
    project: impl Fn(&SweepResult) -> f64,
) -> crate::report::Matrix {
    let rows: Vec<String> = errs.iter().map(|e| crate::report::err_label(*e)).collect();
    let cols: Vec<String> = selectivities
        .iter()
        .map(|k| format!("k={}", crate::report::percent_label(*k)))
        .collect();
    let mut values = vec![vec![0.0; selectivities.len()]; errs.len()];
    for result in results {
        let row = errs
            .iter()
            .position(|e| *e == result.error_allowance)
            .expect("known err");
        let col = selectivities
            .iter()
            .position(|k| *k == result.selectivity)
            .expect("known selectivity");
        values[row][col] = project(result);
    }
    crate::report::Matrix::new(title, "err", rows, cols, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SweepParams {
        SweepParams {
            ticks: 1200,
            tasks: 4,
            patience: 5,
            ..SweepParams::quick()
        }
    }

    #[test]
    fn zero_allowance_cell_is_periodic() {
        let params = quick();
        let w = WorkloadSet::generate(TraceFamily::System, &params);
        let cell = run_cell(&w, 0.0, 1.0, &params);
        assert!((cell.sampling_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(cell.misdetection_rate(), 0.0);
    }

    #[test]
    fn larger_allowance_never_costs_more() {
        let params = quick();
        let w = WorkloadSet::generate(TraceFamily::Network, &params);
        let tight = run_cell(&w, 0.002, 1.0, &params);
        let loose = run_cell(&w, 0.032, 1.0, &params);
        assert!(
            loose.sampling_ratio() <= tight.sampling_ratio() + 0.02,
            "loose {} vs tight {}",
            loose.sampling_ratio(),
            tight.sampling_ratio()
        );
    }

    #[test]
    fn adaptation_saves_cost_on_every_family() {
        let params = quick();
        for family in [
            TraceFamily::Network,
            TraceFamily::System,
            TraceFamily::Application,
        ] {
            let w = WorkloadSet::generate(family, &params);
            let cell = run_cell(&w, 0.016, 0.4, &params);
            assert!(
                cell.sampling_ratio() < 0.9,
                "{}: ratio {}",
                family.name(),
                cell.sampling_ratio()
            );
        }
    }

    #[test]
    fn matrices_have_sweep_shape() {
        let params = quick();
        let m = sampling_ratio_matrix(TraceFamily::System, &[0.002, 0.032], &[0.4], &params);
        assert_eq!(m.rows.len(), 2);
        assert_eq!(m.cols.len(), 1);
        assert!(m.values.iter().flatten().all(|v| (0.0..=1.0).contains(v)));
        let m7 = misdetection_matrix(TraceFamily::System, &[0.032], &[0.4, 6.4], &params);
        assert_eq!(m7.values[0].len(), 2);
    }

    #[test]
    fn sweep_covers_grid() {
        let params = quick();
        let results =
            sweep_sampling_ratio(TraceFamily::System, &[0.002, 0.032], &[0.4, 6.4], &params);
        assert_eq!(results.len(), 4);
        let ks: std::collections::BTreeSet<u64> = results
            .iter()
            .map(|r| (r.selectivity * 10.0) as u64)
            .collect();
        assert_eq!(ks.len(), 2);
    }
}
