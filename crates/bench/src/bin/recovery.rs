//! Crash-recovery cost: checkpointed failover versus the paper's
//! conservative default-interval restart.
//!
//! Kills the coordinator halfway through a quiet-heavy workload (after
//! the samplers have grown their intervals) and fails over to a warm
//! standby, once per checkpoint cadence plus once with no WAL at all —
//! the conservative baseline that resets every sampler to `I_d`. Two
//! sustained bursts after the crash measure post-recovery detection.
//! The claim under test: restoring checkpointed adaptation state keeps
//! post-recovery detection at the no-fault level while sampling strictly
//! less than the conservative restart, and the residual cost of recovery
//! shrinks as checkpoints get more frequent.
//!
//! Writes `reproduction/recovery.txt` and `reproduction/recovery.json`
//! and prints the table. Accepts the standard sizing flags (`--quick`,
//! `--ticks`, `--seed`, `--out <dir>`).

use std::path::PathBuf;
use std::time::Duration;

use volley_bench::params::SweepParams;
use volley_bench::report::Matrix;
use volley_core::task::TaskSpec;
use volley_runtime::{FaultPlan, RuntimeReport, TaskRunner};

const MONITORS: usize = 4;
const BURST_LEN: u64 = 12;
const CHECKPOINT_INTERVALS: [u64; 3] = [10, 25, 50];

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            if let Some(dir) = it.next() {
                return PathBuf::from(dir);
            }
        }
    }
    PathBuf::from("reproduction")
}

/// Both bursts land after the mid-run crash, so they measure
/// *post-recovery* detection; the quiet lead-in is what lets the
/// samplers grow the intervals whose survival is being priced.
fn burst_windows(ticks: u64) -> [(u64, u64); 2] {
    [
        (ticks * 13 / 20, ticks * 13 / 20 + BURST_LEN),
        (ticks * 17 / 20, ticks * 17 / 20 + BURST_LEN),
    ]
}

fn detection_rate(report: &RuntimeReport, windows: &[(u64, u64)]) -> f64 {
    let detected = windows
        .iter()
        .filter(|(s, e)| report.alert_ticks.iter().any(|t| t >= s && t < e))
        .count();
    detected as f64 / windows.len() as f64
}

fn main() {
    let params = SweepParams::from_args(std::env::args().skip(1));
    let quick = std::env::args().any(|a| a == "--quick");
    let ticks = if quick {
        400
    } else {
        params.ticks.clamp(400, 2000) as u64
    } as u64;
    let crash = ticks / 2;
    eprintln!("recovery: {params:?}, {MONITORS} monitors, {ticks} ticks, crash at {crash}");

    let global = 100.0 * MONITORS as f64;
    let local = global / MONITORS as f64;
    let spec = TaskSpec::builder(global)
        .monitors(MONITORS)
        .error_allowance(0.05)
        .max_interval(8)
        .patience(3)
        .warmup_samples(3)
        .build()
        .expect("valid spec");
    let windows = burst_windows(ticks);
    let traces: Vec<Vec<f64>> = (0..MONITORS as u64)
        .map(|m| {
            (0..ticks)
                .map(|t| {
                    let wobble = ((t * (3 + m)) % 7) as f64 * 0.1;
                    if windows.iter().any(|&(s, e)| (s..e).contains(&t)) {
                        local * 1.4 + wobble
                    } else {
                        local * 0.2 + wobble
                    }
                })
                .collect()
        })
        .collect();

    let wal_dir = std::env::temp_dir().join("volley-recovery-bench");
    std::fs::create_dir_all(&wal_dir).expect("wal directory is creatable");

    let run = |wal: Option<u64>, crashed: bool| -> RuntimeReport {
        let mut plan = FaultPlan::new(params.seed);
        if crashed {
            plan = plan.with_coordinator_crash(crash);
        }
        let mut runner = TaskRunner::new(&spec)
            .expect("valid runner")
            .with_fault_plan(plan)
            .with_tick_deadline(Duration::from_millis(50))
            .with_standby(true);
        if let Some(every) = wal {
            let path = wal_dir.join(format!("recovery-{}-{every}.wal", std::process::id()));
            runner = runner.with_wal(path, every);
        }
        runner.run(&traces).expect("run completes despite faults")
    };

    let mut rows = Vec::new();
    let mut cells = Vec::new();
    let mut push = |name: &str, report: &RuntimeReport| {
        rows.push(name.to_string());
        cells.push(vec![
            detection_rate(report, &windows),
            report.total_samples as f64,
            report.cost_ratio(MONITORS),
            report.coordinator_failovers as f64,
            report.checkpoint_restores as f64,
        ]);
    };

    let no_fault = run(None, false);
    push("no-fault", &no_fault);
    let conservative = run(None, true);
    push("conservative", &conservative);
    let mut checkpointed = Vec::new();
    for every in CHECKPOINT_INTERVALS {
        let report = run(Some(every), true);
        push(&format!("ckpt-{every}"), &report);
        checkpointed.push(report);
    }

    let matrix = Matrix::new(
        format!(
            "Crash recovery: checkpointed vs conservative restart \
             ({MONITORS} monitors, {ticks} ticks, crash at {crash})"
        ),
        "recovery",
        rows,
        vec![
            "detect".into(),
            "samples".into(),
            "cost".into(),
            "failovers".into(),
            "restores".into(),
        ],
        cells,
    );
    print!("{}", matrix.render());

    // Acceptance: post-recovery detection within 2% of the no-fault run,
    // and every checkpointed failover strictly cheaper than the
    // conservative I_d restart.
    let reference = detection_rate(&no_fault, &windows);
    assert!(
        detection_rate(&conservative, &windows) >= reference * 0.98,
        "conservative restart loses detection"
    );
    for (every, report) in CHECKPOINT_INTERVALS.iter().zip(&checkpointed) {
        assert!(
            detection_rate(report, &windows) >= reference * 0.98,
            "ckpt-{every} loses detection"
        );
        assert!(
            report.total_samples < conservative.total_samples,
            "ckpt-{every} samples {} not below conservative {}",
            report.total_samples,
            conservative.total_samples
        );
    }

    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("output directory is creatable");
    std::fs::write(dir.join("recovery.txt"), matrix.render()).expect("write txt");
    std::fs::write(dir.join("recovery.json"), matrix.to_json()).expect("write json");
    println!("wrote {}", dir.join("recovery.{txt,json}").display());
}
