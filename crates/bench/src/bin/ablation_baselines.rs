//! Ablation A4: does the violation-*likelihood* estimation actually
//! matter, or would any adaptive scheme do?
//!
//! Compares four sampling policies on identical workloads:
//!
//! - `periodic-1` — the accuracy baseline (samples every default interval);
//! - `periodic-4` — a coarser fixed interval (what an operator might pick
//!   by hand to save cost);
//! - `reactive` — a naive double-on-quiet / reset-on-violation scheme
//!   with no likelihood estimation and therefore no accuracy control;
//! - `volley` — the paper's controller at `err = 1%`.
//!
//! Expected shape: the reactive scheme often matches Volley's *cost*, but
//! its miss rate is uncontrolled — it lands wherever the data's burst
//! structure puts it — while Volley keeps misses at the allowance scale.

use volley_bench::params::SweepParams;
use volley_bench::workloads::{TraceFamily, WorkloadSet};
use volley_core::accuracy::{evaluate_policy, AccuracyReport};
use volley_core::{
    AdaptationConfig, AdaptiveSampler, Interval, PeriodicSampler, ReactiveSampler, SamplingPolicy,
};

/// A named policy constructor: threshold → boxed policy.
type PolicyFactory = Box<dyn Fn(f64) -> Box<dyn SamplingPolicy>>;

fn run_policy<F>(workload: &WorkloadSet, make: F) -> AccuracyReport
where
    F: Fn(f64) -> Box<dyn SamplingPolicy>,
{
    let mut merged: Option<AccuracyReport> = None;
    for trace in workload.traces() {
        let threshold = volley_core::selectivity_threshold(trace, 1.0).expect("valid trace");
        let mut policy = make(threshold);
        let report = evaluate_policy(policy.as_mut(), trace);
        merged = Some(merged.map(|m| m.merged(&report)).unwrap_or(report));
    }
    merged.expect("non-empty workload")
}

fn main() {
    let params = SweepParams::from_args(std::env::args().skip(1));
    eprintln!("ablation_baselines: {params:?}");
    println!("# Baseline comparison (k=1%, err=1% where applicable)");
    println!(
        "{:<14}{:<14}{:>12}{:>12}",
        "family", "policy", "cost-ratio", "miss-rate"
    );
    for family in [
        TraceFamily::Network,
        TraceFamily::System,
        TraceFamily::Application,
    ] {
        let workload = WorkloadSet::generate(family, &params);
        let adaptation = AdaptationConfig::builder()
            .error_allowance(0.01)
            .max_interval(params.max_interval)
            .patience(params.patience)
            .build()
            .expect("valid adaptation");
        let policies: Vec<(&str, PolicyFactory)> = vec![
            (
                "periodic-1",
                Box::new(|t| Box::new(PeriodicSampler::new(Interval::DEFAULT, t))),
            ),
            (
                "periodic-4",
                Box::new(|t| {
                    Box::new(PeriodicSampler::new(Interval::new(4).expect("non-zero"), t))
                }),
            ),
            (
                "reactive",
                Box::new(move |t| {
                    Box::new(ReactiveSampler::new(
                        t,
                        Interval::new_clamped(params.max_interval),
                        5,
                    ))
                }),
            ),
            (
                "volley",
                Box::new(move |t| Box::new(AdaptiveSampler::new(adaptation, t))),
            ),
        ];
        for (name, make) in policies {
            let report = run_policy(&workload, make.as_ref());
            println!(
                "{:<14}{:<14}{:>12.4}{:>12.4}",
                family.name(),
                name,
                report.cost_ratio(),
                report.misdetection_rate()
            );
        }
    }
}
