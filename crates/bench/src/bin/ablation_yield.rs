//! Ablation A2: the yield and allowance-cost formula variants of the
//! coordinator's reallocation rule (§IV-B).
//!
//! The paper prints `r_i = 1 − 1/(I_i+1)` and `e_i = β(I_i)/(1−γ)`; the
//! derivation suggests `r_i` marginal and `e_i` at the *grown* interval.
//! This bench runs Figure 8's skewed setup under all four combinations.

use volley_bench::params::SweepParams;
use volley_core::allocation::{AllocationConfig, AllocationStrategy, AllowanceCostMode, YieldMode};
use volley_core::coordinator::CoordinationScheme;
use volley_core::task::TaskSpec;
use volley_core::DistributedTask;
use volley_traces::netflow::NetflowConfig;
use volley_traces::zipf::zipf_weights;
use volley_traces::DiurnalPattern;

const MONITORS: usize = 10;
const TOTAL_VIOLATION_RATE: f64 = 0.01;

fn run(allocation: AllocationConfig, skew: f64, traces: &[Vec<f64>], params: &SweepParams) -> f64 {
    let weights = zipf_weights(MONITORS, skew);
    let thresholds: Vec<f64> = traces
        .iter()
        .zip(&weights)
        .map(|(trace, w)| {
            let rate = (TOTAL_VIOLATION_RATE * w * MONITORS as f64).min(0.5);
            volley_core::selectivity_threshold(trace, rate * 100.0).expect("valid selectivity")
        })
        .collect();
    let spec = TaskSpec::builder(thresholds.iter().sum())
        .monitors(MONITORS)
        .error_allowance(0.05)
        .max_interval(params.max_interval)
        .patience(params.patience)
        .build()
        .expect("valid spec");
    let mut task = DistributedTask::with_scheme(&spec, CoordinationScheme::Adaptive, allocation)
        .expect("valid task");
    for (i, threshold) in thresholds.iter().enumerate() {
        task.set_local_threshold(i, *threshold)
            .expect("monitor exists");
    }
    let mut values = vec![0.0; MONITORS];
    for tick in 0..traces[0].len() as u64 {
        for (m, trace) in traces.iter().enumerate() {
            values[m] = trace[tick as usize];
        }
        task.step(tick, &values).expect("value count matches");
    }
    task.cost_ratio()
}

fn main() {
    let params = SweepParams::from_args(std::env::args().skip(1));
    eprintln!("ablation_yield: {params:?}");
    let config = NetflowConfig::builder()
        .seed(params.seed)
        .vms(MONITORS)
        .diurnal(DiurnalPattern::new((params.ticks as u64).min(5760), 0.4))
        .build();
    let traces: Vec<Vec<f64>> = config
        .generate(params.ticks)
        .into_iter()
        .map(|t| t.rho)
        .collect();

    println!("# Ablation: allocation strategy × yield formula variants (skewed fig8 setup)");
    println!(
        "{:<14}{:<14}{:<10}{:>10}{:>10}{:>10}",
        "strategy", "yield", "cost", "skew=0", "skew=1", "skew=2"
    );
    let strategies = [
        ("iterative", AllocationStrategy::Iterative),
        ("proportional", AllocationStrategy::Proportional),
        ("greedy-curve", AllocationStrategy::GreedyCurve),
    ];
    for (sname, strategy) in strategies {
        for (yname, ymode) in [
            ("paper-total", YieldMode::PaperTotal),
            ("marginal", YieldMode::Marginal),
        ] {
            for (cname, cmode) in [
                ("grown", AllowanceCostMode::Grown),
                ("current", AllowanceCostMode::Current),
            ] {
                let allocation = AllocationConfig {
                    strategy,
                    yield_mode: ymode,
                    cost_mode: cmode,
                    update_period_ticks: 500,
                    ..AllocationConfig::default()
                };
                let r0 = run(allocation, 0.0, &traces, &params);
                let r1 = run(allocation, 1.0, &traces, &params);
                let r2 = run(allocation, 2.0, &traces, &params);
                println!("{sname:<14}{yname:<14}{cname:<10}{r0:>10.4}{r1:>10.4}{r2:>10.4}");
            }
        }
    }
}
