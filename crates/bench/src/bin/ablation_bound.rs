//! Ablation A3: how loose is the one-sided Chebyshev bound?
//!
//! For each trace family, compares the *predicted* mis-detection bound
//! `β(I)` (averaged over samples) against the *empirical* frequency of
//! violations occurring within the following `I` ticks, for `I = 1..8`.
//! The paper argues the loose bound is acceptable because cost shrinks
//! sublinearly in the interval; this table quantifies the gap.

use volley_bench::params::SweepParams;
use volley_bench::workloads::{TraceFamily, WorkloadSet};
use volley_core::misdetection_bound;
use volley_core::stats::DeltaTracker;
use volley_core::Interval;

fn main() {
    let params = SweepParams::from_args(std::env::args().skip(1));
    eprintln!("ablation_bound: {params:?}");
    println!("# Chebyshev β(I) bound vs empirical violation frequency (k=1%)");
    println!(
        "{:<14}{:<4}{:>14}{:>14}{:>10}",
        "family", "I", "mean-bound", "empirical", "ratio"
    );
    for family in [
        TraceFamily::Network,
        TraceFamily::System,
        TraceFamily::Application,
    ] {
        let workload = WorkloadSet::generate(family, &params);
        for interval in [1u32, 2, 4, 8] {
            let mut bound_sum = 0.0;
            let mut bound_n = 0u64;
            let mut empirical_hits = 0u64;
            let mut empirical_n = 0u64;
            for trace in workload.traces() {
                let threshold =
                    volley_core::selectivity_threshold(trace, 1.0).expect("valid trace");
                let mut tracker = DeltaTracker::new();
                for (t, &v) in trace.iter().enumerate() {
                    tracker.record(t as u64, v, Interval::DEFAULT);
                    let stats = tracker.stats();
                    if stats.count() < 5 {
                        continue;
                    }
                    bound_sum +=
                        misdetection_bound(v, threshold, stats.mean(), stats.std_dev(), interval);
                    bound_n += 1;
                    // Empirical: does any of the next `interval` ticks
                    // violate?
                    let end = (t + 1 + interval as usize).min(trace.len());
                    if trace[t + 1..end].iter().any(|x| *x > threshold) {
                        empirical_hits += 1;
                    }
                    empirical_n += 1;
                }
            }
            let mean_bound = bound_sum / bound_n.max(1) as f64;
            let empirical = empirical_hits as f64 / empirical_n.max(1) as f64;
            let ratio = if empirical > 0.0 {
                mean_bound / empirical
            } else {
                f64::INFINITY
            };
            println!(
                "{:<14}{:<4}{:>14.4}{:>14.4}{:>10.1}",
                family.name(),
                interval,
                mean_bound,
                empirical,
                ratio
            );
        }
    }
    println!("\nratio > 1 everywhere: the bound is safe (conservative) on every family.");

    // Part two: run the full adaptation under each tail bound and compare
    // end-to-end cost and accuracy. The Gaussian variant assumes δ is
    // normal — tighter bounds, longer intervals, cheaper monitoring — but
    // the assumption is false on these traces (episodes make δ heavy-
    // tailed), so its misses exceed the Chebyshev run's.
    use volley_core::accuracy::{evaluate_policy, AccuracyReport};
    use volley_core::{AdaptationConfig, AdaptiveSampler, BoundKind};
    println!("\n# Adaptation under each tail bound (k=1%, err=1%)");
    println!(
        "{:<14}{:<12}{:>12}{:>12}",
        "family", "bound", "cost-ratio", "miss-rate"
    );
    for family in [
        TraceFamily::Network,
        TraceFamily::System,
        TraceFamily::Application,
    ] {
        let workload = WorkloadSet::generate(family, &params);
        for (name, kind) in [
            ("chebyshev", BoundKind::Chebyshev),
            ("gaussian", BoundKind::Gaussian),
        ] {
            let adaptation = AdaptationConfig::builder()
                .error_allowance(0.01)
                .max_interval(params.max_interval)
                .patience(params.patience)
                .bound(kind)
                .build()
                .expect("valid adaptation");
            let mut merged: Option<AccuracyReport> = None;
            for trace in workload.traces() {
                let threshold =
                    volley_core::selectivity_threshold(trace, 1.0).expect("valid trace");
                let mut policy = AdaptiveSampler::new(adaptation, threshold);
                let report = evaluate_policy(&mut policy, trace);
                merged = Some(merged.map(|m| m.merged(&report)).unwrap_or(report));
            }
            let report = merged.expect("non-empty workload");
            println!(
                "{:<14}{:<12}{:>12.4}{:>12.4}",
                family.name(),
                name,
                report.cost_ratio(),
                report.misdetection_rate()
            );
        }
    }
}
