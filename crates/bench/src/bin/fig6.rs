//! Figure 6: distribution of Dom0 CPU utilization caused by network-level
//! monitoring, as the error allowance grows.
//!
//! Paper shape to reproduce: box plots starting at 20–34% CPU for
//! `err = 0` (periodic sampling — "prohibitively high for Dom0") and
//! dropping by at least half, down to ~5%, with increasing allowance.
//!
//! Each row prints the five-number summary over all (server, window)
//! utilization samples of a simulated run on the paper's 20-server ×
//! 40-VM testbed.

use volley_bench::params::SweepParams;
use volley_sim::{ClusterConfig, NetworkScenario, NetworkScenarioConfig};

fn main() {
    let params = SweepParams::from_args(std::env::args().skip(1));
    // --quick shrinks the cluster, not the physics.
    let cluster = if params.tasks <= SweepParams::quick().tasks {
        ClusterConfig::new(4, 40, 2)
    } else {
        ClusterConfig::paper()
    };
    eprintln!("fig6: cluster {cluster:?}, ticks {}", params.ticks);
    println!("# Dom0 CPU utilization distribution vs error allowance (network monitoring)");
    println!(
        "{:<8}{:>8}{:>8}{:>8}{:>8}{:>8}{:>9}{:>12}",
        "err", "min%", "q1%", "med%", "q3%", "max%", "mean%", "miss-rate"
    );
    for err in [0.0, 0.002, 0.004, 0.008, 0.016, 0.032] {
        let config = NetworkScenarioConfig {
            cluster,
            error_allowance: err,
            selectivity_percent: 1.0,
            ticks: params.ticks,
            seed: params.seed,
            max_interval: params.max_interval,
            patience: params.patience,
            ..NetworkScenarioConfig::default()
        };
        let report = NetworkScenario::from_config(config).run();
        let cpu = report.cpu.expect("utilization samples exist");
        println!(
            "{:<8}{:>8.1}{:>8.1}{:>8.1}{:>8.1}{:>8.1}{:>9.1}{:>12.4}",
            err,
            cpu.min * 100.0,
            cpu.q1 * 100.0,
            cpu.median * 100.0,
            cpu.q3 * 100.0,
            cpu.max * 100.0,
            cpu.mean * 100.0,
            report.accuracy.misdetection_rate(),
        );
    }
}
