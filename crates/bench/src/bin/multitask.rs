//! Multi-task correlation suppression cost/accuracy curve (§II.B).
//!
//! Runs the [`DdosCascadeScenario`] — one cheap response-time leader and
//! one expensive traffic-asymmetry follower per VM, attacks driving both
//! — across a sweep of error allowances, each point twice: the plain
//! adaptive baseline (`gated = false`) and the correlation-gated run.
//! The difference prices the multi-task scheme: how many follower
//! samples the learned leader gate saves on top of per-task adaptation,
//! and what mis-detection it costs.
//!
//! Writes `reproduction/multitask.txt` and `reproduction/multitask.json`
//! (the shared schema-6 envelope). Exits non-zero — in smoke *and* full
//! mode — if any gated point mis-detects above its allowance, fails to
//! gate any VM, or fails to save follower samples over its ungated twin.
//!
//! [`DdosCascadeScenario`]: volley_sim::DdosCascadeScenario

use std::path::PathBuf;

use serde::Serialize;
use volley_sim::{ClusterConfig, DdosCascadeConfig, DdosCascadeScenario};

/// Allowances swept; each produces a gated/ungated pair of runs.
const ALLOWANCES: [f64; 3] = [0.02, 0.05, 0.10];

/// One arm (gated or ungated) of a sweep point.
#[derive(Serialize)]
struct ArmReport {
    follower_samples: u64,
    leader_samples: u64,
    cost_ratio: f64,
    misdetection_rate: f64,
    gated_vms: u32,
    mean_confidence: f64,
}

/// One error-allowance point of the curve.
#[derive(Serialize)]
struct SweepPoint {
    error_allowance: f64,
    ungated: ArmReport,
    gated: ArmReport,
    /// Follower samples the gate saved relative to the ungated twin.
    savings_ratio: f64,
    /// Mis-detection the gate added on top of per-task adaptation.
    misdetection_delta: f64,
}

#[derive(Serialize)]
struct MultitaskBenchReport {
    smoke: bool,
    vms: u32,
    ticks: usize,
    train_ticks: usize,
    lag_window: u32,
    points: Vec<SweepPoint>,
}

fn arm(report: &volley_sim::CascadeReport) -> ArmReport {
    ArmReport {
        follower_samples: report.follower_samples,
        leader_samples: report.leader_samples,
        cost_ratio: report.cost_ratio(),
        misdetection_rate: report.misdetection_rate(),
        gated_vms: report.gated_vms,
        mean_confidence: report.mean_confidence,
    }
}

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            if let Some(dir) = it.next() {
                return PathBuf::from(dir);
            }
        }
    }
    PathBuf::from("reproduction")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let base = if smoke {
        DdosCascadeConfig {
            cluster: ClusterConfig::new(2, 4, 1),
            ticks: 2400,
            train_ticks: 1200,
            attack_period: 600,
            ..DdosCascadeConfig::default()
        }
    } else {
        DdosCascadeConfig {
            cluster: ClusterConfig::new(8, 10, 2),
            ticks: 6000,
            train_ticks: 3000,
            ..DdosCascadeConfig::default()
        }
    };
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get().min(8));
    let vms = base.cluster.total_vms();
    eprintln!(
        "multitask: smoke={smoke}, {vms} VM pairs x {} ticks (train {}), {threads} threads",
        base.ticks, base.train_ticks
    );

    let mut failures = Vec::new();
    let mut points = Vec::new();
    for allowance in ALLOWANCES {
        let config = DdosCascadeConfig {
            error_allowance: allowance,
            ..base.clone()
        };
        let ungated = DdosCascadeScenario::from_config(DdosCascadeConfig {
            gated: false,
            ..config.clone()
        })
        .run_parallel(threads);
        let gated = DdosCascadeScenario::from_config(DdosCascadeConfig {
            gated: true,
            ..config
        })
        .run_parallel(threads);

        if gated.gated_vms == 0 {
            failures.push(format!("err={allowance}: training qualified no gates"));
        }
        if gated.follower_samples >= ungated.follower_samples {
            failures.push(format!(
                "err={allowance}: gated follower samples {} did not beat ungated {}",
                gated.follower_samples, ungated.follower_samples
            ));
        }
        if gated.misdetection_rate() > allowance {
            failures.push(format!(
                "err={allowance}: gated mis-detection {:.4} above the allowance",
                gated.misdetection_rate()
            ));
        }

        points.push(SweepPoint {
            error_allowance: allowance,
            savings_ratio: 1.0 - gated.follower_samples as f64 / ungated.follower_samples as f64,
            misdetection_delta: gated.misdetection_rate() - ungated.misdetection_rate(),
            ungated: arm(&ungated),
            gated: arm(&gated),
        });
    }

    let report = MultitaskBenchReport {
        smoke,
        vms,
        ticks: base.ticks,
        train_ticks: base.train_ticks,
        lag_window: base.correlation.lag_window,
        points,
    };

    let mut text = format!(
        "multi-task suppression curve (DDoS cascade, {vms} VM pairs, {} ticks, {} training)\n\
         {:>6}  {:>9} {:>9} {:>8}  {:>9} {:>9} {:>8}  {:>7} {:>6}\n",
        report.ticks,
        report.train_ticks,
        "err",
        "ungated",
        "gated",
        "saved",
        "miss(un)",
        "miss(gt)",
        "delta",
        "gates",
        "conf",
    );
    for p in &report.points {
        text.push_str(&format!(
            "{:>6.2}  {:>9} {:>9} {:>7.1}%  {:>9.4} {:>9.4} {:>8.4}  {:>5}/{:<3} {:>6.3}\n",
            p.error_allowance,
            p.ungated.follower_samples,
            p.gated.follower_samples,
            p.savings_ratio * 100.0,
            p.ungated.misdetection_rate,
            p.gated.misdetection_rate,
            p.misdetection_delta,
            p.gated.gated_vms,
            report.vms,
            p.gated.mean_confidence,
        ));
    }
    print!("{text}");

    let out = out_dir();
    std::fs::create_dir_all(&out).expect("create output dir");
    std::fs::write(out.join("multitask.txt"), &text).expect("write txt");
    std::fs::write(
        out.join("multitask.json"),
        volley_serve::envelope("multitask", &report),
    )
    .expect("write json");

    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }
    eprintln!("multi-task suppression bounds hold");
}
