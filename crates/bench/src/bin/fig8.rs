//! Figure 8: distributed sampling coordination — the iterative
//! error-allowance tuning scheme (`adapt`) versus the static even split
//! (`even`), as the distribution of local violation rates across the
//! task's monitors is skewed from uniform toward a Zipf distribution.
//!
//! Paper shape to reproduce: at skewness 0 both schemes perform alike;
//! as skew grows, `even` degrades while `adapt` keeps (or improves) its
//! cost reduction by moving allowance away from the few high-violation
//! monitors toward quiet, high-yield monitors.
//!
//! Reproduction note (see EXPERIMENTS.md): on our synthetic traces the
//! measured *static optimum* of allowance reallocation is within noise of
//! the even split — skewing violation rates does not skew the monitors'
//! quiet-regime yields, because violations come from episodes rather than
//! persistent noise. The adaptive scheme therefore tracks the even
//! baseline here instead of beating it; `ablation_yield` quantifies all
//! three allocation strategies on the same setup.

use volley_bench::params::SweepParams;
use volley_core::allocation::AllocationConfig;
use volley_core::coordinator::CoordinationScheme;
use volley_core::task::TaskSpec;
use volley_core::DistributedTask;
use volley_traces::netflow::NetflowConfig;
use volley_traces::zipf::zipf_weights;
use volley_traces::DiurnalPattern;

/// Monitors per distributed task.
const MONITORS: usize = 10;
/// Aggregate local violation rate budget (fraction of ticks, summed over
/// monitors).
const TOTAL_VIOLATION_RATE: f64 = 0.01;

fn run_scheme(
    scheme: CoordinationScheme,
    skew: f64,
    traces: &[Vec<f64>],
    params: &SweepParams,
) -> f64 {
    let ticks = traces[0].len();
    // Skewed local violation rates; threshold_i = (100 − 100·r_i)-th
    // percentile of monitor i's own trace.
    let weights = zipf_weights(MONITORS, skew);
    let thresholds: Vec<f64> = traces
        .iter()
        .zip(&weights)
        .map(|(trace, w)| {
            let rate = (TOTAL_VIOLATION_RATE * w * MONITORS as f64).min(0.5);
            volley_core::selectivity_threshold(trace, rate * 100.0).expect("valid selectivity")
        })
        .collect();
    let global: f64 = thresholds.iter().sum();
    let spec = TaskSpec::builder(global)
        .monitors(MONITORS)
        .error_allowance(0.05)
        .max_interval(params.max_interval)
        .patience(params.patience)
        .build()
        .expect("valid spec");
    let allocation = AllocationConfig {
        update_period_ticks: 500,
        uniform_skip_ratio: 3.0,
        ..AllocationConfig::default()
    };
    let mut task = DistributedTask::with_scheme(&spec, scheme, allocation).expect("valid task");
    for (i, threshold) in thresholds.iter().enumerate() {
        task.set_local_threshold(i, *threshold)
            .expect("monitor exists");
    }
    let mut values = vec![0.0; MONITORS];
    for tick in 0..ticks as u64 {
        for (m, trace) in traces.iter().enumerate() {
            values[m] = trace[tick as usize];
        }
        task.step(tick, &values).expect("value count matches");
    }
    task.cost_ratio()
}

fn main() {
    let params = SweepParams::from_args(std::env::args().skip(1));
    eprintln!("fig8: {params:?}, {MONITORS} monitors");
    let config = NetflowConfig::builder()
        .seed(params.seed)
        .vms(MONITORS)
        .scan_burst_probability(0.001)
        .diurnal(DiurnalPattern::new((params.ticks as u64).min(5760), 0.4))
        .build();
    let traces: Vec<Vec<f64>> = config
        .generate(params.ticks)
        .into_iter()
        .map(|t| t.rho)
        .collect();

    println!("# Distributed coordination: sampling ratio vs local-violation-rate skew");
    println!("{:<10}{:>12}{:>12}", "skewness", "even", "adapt");
    for skew in [0.0, 0.5, 1.0, 1.5, 2.0] {
        let even = run_scheme(CoordinationScheme::Even, skew, &traces, &params);
        let adapt = run_scheme(CoordinationScheme::Adaptive, skew, &traces, &params);
        println!("{skew:<10}{even:>12.4}{adapt:>12.4}");
    }
}
