//! One-shot reproduction driver: runs every figure and ablation binary's
//! logic in-process and writes each table to `<outdir>/<name>.txt`
//! (default `./reproduction`), so `cargo run -p volley-bench --release
//! --bin reproduce` regenerates the paper's whole evaluation in one
//! command.
//!
//! Accepts the same sizing flags as the individual binaries (`--quick`,
//! `--ticks`, `--tasks`, `--seed`, `--max-interval`) plus
//! `--out <dir>`.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use volley_bench::experiments::{misdetection_matrix, sampling_ratio_matrix};
use volley_bench::params::{SweepParams, ERR_SWEEP, SELECTIVITY_SWEEP};
use volley_bench::workloads::TraceFamily;
use volley_sim::{ClusterConfig, NetworkScenario, NetworkScenarioConfig};

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            if let Some(dir) = it.next() {
                return PathBuf::from(dir);
            }
        }
    }
    PathBuf::from("reproduction")
}

fn write(dir: &Path, name: &str, content: &str) {
    let path = dir.join(format!("{name}.txt"));
    let mut file = std::fs::File::create(&path)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
    file.write_all(content.as_bytes()).expect("write succeeds");
    println!("wrote {}", path.display());
}

fn main() {
    let params = SweepParams::from_args(std::env::args().skip(1));
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("output directory is creatable");
    eprintln!("reproduce: {params:?} -> {}", dir.display());

    // Figure 5(a)(b)(c).
    for (name, family) in [
        ("fig5a", TraceFamily::Network),
        ("fig5b", TraceFamily::System),
        ("fig5c", TraceFamily::Application),
    ] {
        let matrix = sampling_ratio_matrix(family, &ERR_SWEEP, &SELECTIVITY_SWEEP, &params);
        write(&dir, name, &matrix.render());
        write(&dir, &format!("{name}_json"), &matrix.to_json());
    }

    // Figure 7.
    let matrix = misdetection_matrix(TraceFamily::System, &ERR_SWEEP, &SELECTIVITY_SWEEP, &params);
    write(&dir, "fig7", &matrix.render());

    // Figure 6 (scaled by --quick via the task knob).
    let cluster = if params.tasks <= SweepParams::quick().tasks {
        ClusterConfig::new(4, 40, 2)
    } else {
        ClusterConfig::paper()
    };
    let mut fig6 = String::from(
        "# Dom0 CPU utilization distribution vs error allowance (network monitoring)\n",
    );
    fig6.push_str(&format!(
        "{:<8}{:>8}{:>8}{:>8}{:>8}{:>8}{:>9}{:>12}\n",
        "err", "min%", "q1%", "med%", "q3%", "max%", "mean%", "miss-rate"
    ));
    for err in [0.0, 0.002, 0.004, 0.008, 0.016, 0.032] {
        let report = NetworkScenario::from_config(NetworkScenarioConfig {
            cluster,
            error_allowance: err,
            selectivity_percent: 1.0,
            ticks: params.ticks,
            seed: params.seed,
            max_interval: params.max_interval,
            patience: params.patience,
            ..NetworkScenarioConfig::default()
        })
        .run();
        let cpu = report.cpu.expect("utilization samples exist");
        fig6.push_str(&format!(
            "{:<8}{:>8.1}{:>8.1}{:>8.1}{:>8.1}{:>8.1}{:>9.1}{:>12.4}\n",
            err,
            cpu.min * 100.0,
            cpu.q1 * 100.0,
            cpu.median * 100.0,
            cpu.q3 * 100.0,
            cpu.max * 100.0,
            cpu.mean * 100.0,
            report.accuracy.misdetection_rate(),
        ));
    }
    write(&dir, "fig6", &fig6);

    println!("\nDone. For figures 1/2/8, the runtime, correlation and ablation");
    println!("experiments, run their dedicated binaries (see README).");
}
