//! Robustness sweep: message loss versus alert detection.
//!
//! Runs the threaded runtime over a bursty workload with known
//! ground-truth alerts while a deterministic [`FaultPlan`] drops a
//! growing fraction of both monitor→coordinator reply paths
//! (violation reports and poll replies), and measures how many
//! ground-truth alerts the degraded runtime still raises. Lost
//! violation reports suppress polls outright; lost poll replies force
//! degraded aggregation (the missing monitor counted at its local
//! threshold), which errs toward alerting — the curve quantifies both
//! effects.
//!
//! Writes `reproduction/robustness.txt` and
//! `reproduction/robustness.json` (drop rate → detection rate plus
//! supporting counters) and prints the table. Accepts the standard
//! sizing flags (`--quick`, `--ticks`, `--seed`, …).

use std::path::PathBuf;
use std::time::Duration;

use volley_bench::params::SweepParams;
use volley_bench::report::Matrix;
use volley_core::task::TaskSpec;
use volley_core::DistributedTask;
use volley_runtime::{FaultPath, FaultPlan, TaskRunner};

const MONITORS: usize = 5;
const DROP_RATES: [f64; 6] = [0.0, 0.1, 0.2, 0.4, 0.6, 0.8];
/// Burst period: every `BURST_EVERY`-th tick all monitors spike together,
/// producing one unambiguous ground-truth alert.
const BURST_EVERY: usize = 97;

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            if let Some(dir) = it.next() {
                return PathBuf::from(dir);
            }
        }
    }
    PathBuf::from("reproduction")
}

fn main() {
    let params = SweepParams::from_args(std::env::args().skip(1));
    let quick = std::env::args().any(|a| a == "--quick");
    let ticks = if quick { 600 } else { params.ticks.min(2000) };
    eprintln!("robustness: {params:?}, {MONITORS} monitors, {ticks} ticks");

    // Even threshold split: local threshold T_i = T / n. Bursts push every
    // monitor to 1.4 T_i, so each burst is both a local violation on every
    // monitor and a global one (Σ = 1.4 T > T).
    let global = 100.0 * MONITORS as f64;
    let local = global / MONITORS as f64;
    let spec = TaskSpec::builder(global)
        .monitors(MONITORS)
        .error_allowance(0.01)
        .max_interval(params.max_interval)
        .patience(params.patience)
        .build()
        .expect("valid spec");
    let traces: Vec<Vec<f64>> = (0..MONITORS)
        .map(|m| {
            (0..ticks)
                .map(|t| {
                    let wobble = ((t * (3 + m)) % 11) as f64;
                    if t % BURST_EVERY == BURST_EVERY - 1 {
                        local * 1.4 + wobble
                    } else {
                        local * 0.3 + wobble
                    }
                })
                .collect()
        })
        .collect();

    // Ground truth from the fault-free reference implementation.
    let mut reference = DistributedTask::new(&spec).expect("valid task");
    let mut truth = Vec::new();
    let mut values = vec![0.0; MONITORS];
    for tick in 0..ticks as u64 {
        for (m, trace) in traces.iter().enumerate() {
            values[m] = trace[tick as usize];
        }
        if reference.step(tick, &values).expect("step").alerted() {
            truth.push(tick);
        }
    }
    assert!(
        !truth.is_empty(),
        "workload must produce ground-truth alerts"
    );

    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for rate in DROP_RATES {
        let plan = FaultPlan::new(params.seed)
            .with_drop_rate(FaultPath::ViolationReport, rate)
            .with_drop_rate(FaultPath::PollReply, rate);
        let report = TaskRunner::new(&spec)
            .expect("valid runner")
            .with_fault_plan(plan)
            .with_tick_deadline(Duration::from_millis(50))
            .run(&traces)
            .expect("run completes despite faults");
        let detected = report
            .alert_ticks
            .iter()
            .filter(|t| truth.contains(t))
            .count();
        let false_alerts = report.alert_ticks.len() - detected;
        rows.push(format!("{rate}"));
        cells.push(vec![
            detected as f64 / truth.len() as f64,
            false_alerts as f64,
            report.polls as f64,
            report.degraded_polls as f64,
            report.missed_tick_reports as f64,
        ]);
    }

    let matrix = Matrix::new(
        format!(
            "Message loss vs alert detection ({MONITORS} monitors, {ticks} ticks, {} ground-truth alerts)",
            truth.len()
        ),
        "drop-rate",
        rows,
        vec![
            "detected".into(),
            "false".into(),
            "polls".into(),
            "degraded".into(),
            "missed".into(),
        ],
        cells,
    );
    print!("{}", matrix.render());

    // Sanity: a lossless network must detect every ground-truth alert.
    assert_eq!(matrix.values[0][0], 1.0, "lossless run detects all alerts");

    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("output directory is creatable");
    std::fs::write(dir.join("robustness.txt"), matrix.render()).expect("write txt");
    std::fs::write(dir.join("robustness.json"), matrix.to_json()).expect("write json");
    println!("wrote {}", dir.join("robustness.{txt,json}").display());
}
