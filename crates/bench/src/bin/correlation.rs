//! E9 (extension): multi-task state-correlation based monitoring (§II-B).
//!
//! Scenario from the paper's motivating example: DDoS attacks inflate a
//! VM's traffic difference ρ *and* its request response time — elevated
//! response time is (approximately) a necessary condition of an effective
//! attack. The correlation detector learns that relation from a training
//! window, gates the expensive DDoS task on the cheap response-time task,
//! and the harness reports the cost/accuracy effect on an evaluation
//! window.
//!
//! Writes `reproduction/correlation.txt` and
//! `reproduction/correlation.json` (the shared schema-6 envelope);
//! `--out <dir>` redirects both. For the fleet-scale version of this
//! experiment on the sharded engine, see the `multitask` binary.

use std::path::PathBuf;

use serde::Serialize;
use volley_bench::params::SweepParams;
use volley_core::accuracy::{DetectionLog, GroundTruth};
use volley_core::correlation::{CorrelationConfig, CorrelationDetector};
use volley_core::task::TaskId;
use volley_core::Interval;
use volley_traces::netflow::{AttackSpec, NetflowConfig};
use volley_traces::DiurnalPattern;

#[derive(Serialize)]
struct CorrelationBenchReport {
    ticks: usize,
    train_ticks: usize,
    seed: u64,
    lag_window: u32,
    /// Learned `P(response-time high | DDoS violation)`.
    confidence: f64,
    follower_gated: bool,
    gated_interval: u32,
    /// Periodic follower cost over the evaluation window (the baseline).
    periodic_samples: u64,
    gated_samples: u64,
    gated_misdetection_rate: f64,
    gated_cost_ratio: f64,
}

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            if let Some(dir) = it.next() {
                return PathBuf::from(dir);
            }
        }
    }
    PathBuf::from("reproduction")
}

/// Builds the correlated pair of traces: (response time, traffic
/// difference ρ) under recurring attacks.
fn build_traces(ticks: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut config = NetflowConfig::builder()
        .seed(seed)
        .vms(1)
        .scan_burst_probability(0.0)
        .diurnal(DiurnalPattern::new((ticks as u64).min(5760), 0.3));
    // Recurring attacks throughout the run.
    let mut start = 400u64;
    while (start as usize) < ticks {
        config = config.attack(AttackSpec {
            vm: 0,
            start_tick: start,
            duration_ticks: 80,
            peak_asymmetry: 2500.0,
        });
        start += 900;
    }
    let rho = config.build().generate_vm(0, ticks).rho;
    // Response time tracks attack load through an M/M/1-style model:
    // attack asymmetry pushes utilization toward the knee and latency up.
    let response = volley_traces::ResponseTimeModel::new(20.0, 3200.0).series(&rho, seed ^ 1);
    (response, rho)
}

fn main() {
    let params = SweepParams::from_args(std::env::args().skip(1));
    let ticks = params.ticks.max(4000);
    eprintln!("correlation: ticks={ticks}");
    let (response, rho) = build_traces(ticks, params.seed);
    let train = ticks / 2;

    let rho_threshold = volley_core::selectivity_threshold(&rho, 2.0).expect("valid trace");
    let resp_threshold = volley_core::selectivity_threshold(&response, 8.0).expect("valid trace");

    // Train the detector on the first half.
    let leader = TaskId(0); // response time (cheap to sample)
    let follower = TaskId(1); // DDoS ρ (expensive deep packet inspection)
    let config = CorrelationConfig {
        lag_window: 4,
        ..CorrelationConfig::default()
    };
    let mut detector = CorrelationDetector::new(config, vec![leader, follower]);
    for t in 0..train {
        detector.observe(
            t as u64,
            &[response[t] > resp_threshold, rho[t] > rho_threshold],
        );
    }
    let confidence = detector
        .necessity_confidence(leader, follower)
        .unwrap_or(0.0);
    let plan = detector.plan();

    // Evaluate on the second half: the follower samples at the gated
    // interval while the leader (sampled every tick — it is cheap) is
    // quiet, and at the default interval once the leader fires.
    let eval_rho = &rho[train..];
    let eval_resp = &response[train..];
    let truth = GroundTruth::from_trace(eval_rho, rho_threshold);
    let mut gated_log = DetectionLog::new();
    let mut next_sample = 0u64;
    for (t, &value) in eval_rho.iter().enumerate() {
        let tick = t as u64;
        if tick >= next_sample {
            gated_log.record(tick, 1, value > rho_threshold);
            let leader_active = eval_resp[t] > resp_threshold;
            let interval = plan.interval_for(follower, leader_active, Interval::DEFAULT);
            next_sample = tick + u64::from(interval);
        }
    }
    let gated = gated_log.score(&truth, eval_rho.len() as u64);

    let report = CorrelationBenchReport {
        ticks,
        train_ticks: train,
        seed: params.seed,
        lag_window: config.lag_window,
        confidence,
        follower_gated: plan.gate(follower).is_some(),
        gated_interval: plan.gate(follower).map_or(0, |g| g.gated_interval.get()),
        periodic_samples: eval_rho.len() as u64,
        gated_samples: gated.sampling_ops,
        gated_misdetection_rate: gated.misdetection_rate(),
        gated_cost_ratio: gated.cost_ratio(),
    };

    let mut text = String::from("# State-correlation monitoring\n");
    text.push_str(&format!(
        "learned: P(response-time high | DDoS violation) = {confidence:.3}; follower gated: {}\n",
        report.follower_gated
    ));
    // Baseline: periodic sampling of the follower at the default interval.
    text.push_str(&format!(
        "periodic follower:   samples={:<7} miss-rate=0.000\n",
        report.periodic_samples
    ));
    text.push_str(&format!(
        "correlation-gated:   samples={:<7} miss-rate={:.3} cost-ratio={:.3}\n",
        report.gated_samples, report.gated_misdetection_rate, report.gated_cost_ratio
    ));
    text.push_str(
        "\nShape to observe: the gated task cuts most sampling cost while its\n\
         necessary-condition leader keeps the miss rate near zero.\n",
    );
    print!("{text}");

    let out = out_dir();
    std::fs::create_dir_all(&out).expect("create output dir");
    std::fs::write(out.join("correlation.txt"), &text).expect("write txt");
    std::fs::write(
        out.join("correlation.json"),
        volley_serve::envelope("correlation", &report),
    )
    .expect("write json");
}
