//! E8: the threaded monitor/coordinator runtime end-to-end.
//!
//! Runs the same distributed network-monitoring task through (a) the
//! step-driven reference implementation (`volley_core::DistributedTask`)
//! and (b) the message-passing runtime (`volley_runtime::TaskRunner`),
//! verifying that alerts and sampling counts agree exactly, and reports
//! the cost saving the runtime achieves over periodic sampling.

use volley_bench::params::SweepParams;
use volley_core::task::TaskSpec;
use volley_core::DistributedTask;
use volley_runtime::TaskRunner;
use volley_traces::netflow::NetflowConfig;
use volley_traces::DiurnalPattern;

const MONITORS: usize = 8;

fn main() {
    let params = SweepParams::from_args(std::env::args().skip(1));
    eprintln!("runtime_e2e: {params:?}, {MONITORS} monitors");
    let config = NetflowConfig::builder()
        .seed(params.seed)
        .vms(MONITORS)
        .diurnal(DiurnalPattern::new((params.ticks as u64).min(5760), 0.4))
        .build();
    let traces: Vec<Vec<f64>> = config
        .generate(params.ticks)
        .into_iter()
        .map(|t| t.rho)
        .collect();
    // Local thresholds via a 1% selectivity on each monitor's trace.
    let thresholds: Vec<f64> = traces
        .iter()
        .map(|t| volley_core::selectivity_threshold(t, 1.0).expect("valid trace"))
        .collect();
    let global: f64 = thresholds.iter().sum();
    let spec = TaskSpec::builder(global)
        .monitors(MONITORS)
        .error_allowance(0.01)
        .max_interval(params.max_interval)
        .patience(params.patience)
        .build()
        .expect("valid spec");

    // Reference run.
    let mut reference = DistributedTask::new(&spec).expect("valid task");
    for (i, t) in thresholds.iter().enumerate() {
        reference
            .set_local_threshold(i, *t)
            .expect("monitor exists");
    }
    let mut ref_alerts = Vec::new();
    let mut ref_samples = 0u64;
    let mut values = vec![0.0; MONITORS];
    for tick in 0..params.ticks as u64 {
        for (m, trace) in traces.iter().enumerate() {
            values[m] = trace[tick as usize];
        }
        let out = reference.step(tick, &values).expect("step succeeds");
        ref_samples += u64::from(out.total_samples());
        if out.alerted() {
            ref_alerts.push(tick);
        }
    }

    // Threaded runtime run. The runner uses the spec's local thresholds,
    // so build a spec carrying the per-monitor thresholds via weights.
    let spec_weighted = TaskSpec::builder(global)
        .threshold_split(volley_core::ThresholdSplit::Proportional)
        .threshold_weights(thresholds.clone())
        .error_allowance(0.01)
        .max_interval(params.max_interval)
        .patience(params.patience)
        .build()
        .expect("valid spec");
    let report = TaskRunner::new(&spec_weighted)
        .expect("valid runner")
        .run(&traces)
        .expect("run succeeds");

    println!("# Threaded runtime vs reference implementation");
    println!(
        "reference: samples={ref_samples} alerts={}",
        ref_alerts.len()
    );
    println!(
        "runtime:   samples={} alerts={} polls={} cost-ratio={:.4}",
        report.total_samples,
        report.alerts,
        report.polls,
        report.cost_ratio(MONITORS)
    );
    let agree = report.alert_ticks == ref_alerts && report.total_samples == ref_samples;
    println!("agreement: {}", if agree { "EXACT" } else { "MISMATCH" });
    if !agree {
        std::process::exit(1);
    }
}
