//! Ablation A1: the slack ratio `γ` and patience `p` of the adaptation
//! rule (§III-B). The paper reports `γ = 0.2, p = 20` as good practice;
//! this sweep shows the cost/accuracy trade-off around that point.
//!
//! Expected shape: smaller `γ`/`p` grow intervals more eagerly (lower
//! cost, higher miss risk); larger values are conservative. The paper's
//! point sits on the flat part of the accuracy curve.

use volley_bench::params::SweepParams;
use volley_bench::workloads::{TraceFamily, WorkloadSet};
use volley_core::accuracy::{evaluate_policy, AccuracyReport};
use volley_core::{AdaptationConfig, AdaptiveSampler};

fn run(workload: &WorkloadSet, gamma: f64, patience: u32, max_interval: u32) -> AccuracyReport {
    let adaptation = AdaptationConfig::builder()
        .error_allowance(0.01)
        .slack_ratio(gamma)
        .patience(patience)
        .max_interval(max_interval)
        .build()
        .expect("valid adaptation config");
    let mut merged: Option<AccuracyReport> = None;
    for trace in workload.traces() {
        let threshold = volley_core::selectivity_threshold(trace, 1.0).expect("valid trace");
        let mut policy = AdaptiveSampler::new(adaptation, threshold);
        let r = evaluate_policy(&mut policy, trace);
        merged = Some(merged.map(|m| m.merged(&r)).unwrap_or(r));
    }
    merged.expect("non-empty workload")
}

fn main() {
    let params = SweepParams::from_args(std::env::args().skip(1));
    eprintln!("ablation_gamma_p: {params:?}");
    let workload = WorkloadSet::generate(TraceFamily::System, &params);
    println!("# Ablation: slack ratio γ and patience p (system tasks, err=0.01, k=1%)");
    println!(
        "{:<8}{:<6}{:>12}{:>12}",
        "gamma", "p", "cost-ratio", "miss-rate"
    );
    for gamma in [0.0, 0.1, 0.2, 0.4, 0.8] {
        for patience in [1u32, 5, 20, 50] {
            let r = run(&workload, gamma, patience, params.max_interval);
            println!(
                "{gamma:<8}{patience:<6}{:>12.4}{:>12.4}",
                r.cost_ratio(),
                r.misdetection_rate()
            );
        }
    }
}
