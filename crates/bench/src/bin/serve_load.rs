//! Serving-plane load benchmark.
//!
//! Answers the question the embedded HTTP server raises: *can a live
//! fleet serve concurrent observers without perturbing its own ticks?*
//! Two phases:
//!
//! 1. **Record** — a fleet run writes samples, interval changes and
//!    alerts through a [`SampleRecorder`] into a store directory; the
//!    serving phase answers range queries from it.
//! 2. **Serve under load** — a live `TaskRunner` (self-monitor watchdog
//!    armed, generous threshold) runs with the server attached while
//!    client threads hammer it: scrapers pulling `/metrics`, one-shot
//!    queriers paging `/api/v1/query` with `Connection: close`, and
//!    stream subscribers holding `/api/v1/alerts/stream` open across
//!    the whole run.
//!
//! The headline numbers: requests served per second per client class,
//! scrape latency, and — the design target — **zero self-monitor
//! alerts**: serving must never show up in the fleet's own tick
//! latency. Writes `reproduction/serve.txt` and
//! `reproduction/serve.json`. `--smoke` shrinks the workload and exits
//! non-zero if any client class starves, a stream misses the run's
//! alerts, or the watchdog fires — the CI guard against the serving
//! plane taxing the hot path.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use volley_core::task::TaskSpec;
use volley_obs::Obs;
use volley_runtime::TaskRunner;
use volley_serve::{ServeConfig, Server};
use volley_store::{SampleRecorder, Store};

const MONITORS: usize = 5;
/// Watchdog threshold on the runner tick-latency gauge, microseconds.
/// Healthy in-process ticks run in the tens of microseconds; a serving
/// plane that blocks the tick path would blow far past this.
const WATCHDOG_THRESHOLD_US: f64 = 250_000.0;

/// Violation bursts: every `ALERT_PERIOD` ticks the traces breach the
/// threshold for `ALERT_WIDTH` ticks, so alerts flow throughout the run
/// and every stream subscriber sees some no matter when it catches up.
const ALERT_PERIOD: usize = 100;
const ALERT_WIDTH: usize = 3;

fn spec() -> TaskSpec {
    TaskSpec::builder(100.0 * MONITORS as f64)
        .monitors(MONITORS)
        .error_allowance(0.0)
        .build()
        .expect("valid spec")
}

fn traces(ticks: usize) -> Vec<Vec<f64>> {
    (0..MONITORS)
        .map(|m| {
            (0..ticks)
                .map(|t| {
                    if t % ALERT_PERIOD < ALERT_WIDTH {
                        200.0
                    } else {
                        20.0 + ((t * (3 + m)) % 7) as f64
                    }
                })
                .collect()
        })
        .collect()
}

/// One `Connection: close` GET; returns the status line and total
/// response size on success.
fn http_get(addr: SocketAddr, target: &str) -> std::io::Result<(String, usize)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(
        format!("GET {target} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let status = String::from_utf8_lossy(&raw)
        .split("\r\n")
        .next()
        .unwrap_or("")
        .to_string();
    Ok((status, raw.len()))
}

/// Shared counters the client threads accumulate into.
#[derive(Default)]
struct ClientCounters {
    ok: AtomicU64,
    failed: AtomicU64,
    bytes: AtomicU64,
    latency_ns: AtomicU64,
}

impl ClientCounters {
    fn record(&self, result: std::io::Result<(String, usize)>, elapsed: Duration) {
        match result {
            Ok((status, bytes)) if status.starts_with("HTTP/1.1 200") => {
                self.ok.fetch_add(1, Ordering::Relaxed);
                self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
                self.latency_ns
                    .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
            }
            _ => {
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn mean_latency_us(&self) -> f64 {
        let ok = self.ok.load(Ordering::Relaxed);
        if ok == 0 {
            return 0.0;
        }
        self.latency_ns.load(Ordering::Relaxed) as f64 / ok as f64 / 1_000.0
    }
}

/// Holds one alert stream open end-to-end and counts the NDJSON events
/// that arrive; returns (alert events, run-end markers).
fn stream_subscriber(addr: SocketAddr) -> std::io::Result<(u64, u64)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.write_all(b"GET /api/v1/alerts/stream HTTP/1.1\r\nHost: bench\r\n\r\n")?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    Ok((
        text.matches("\"event\":\"alert\"").count() as u64,
        text.matches("\"event\":\"run_end\"").count() as u64,
    ))
}

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            if let Some(dir) = it.next() {
                return PathBuf::from(dir);
            }
        }
    }
    PathBuf::from("reproduction")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (record_ticks, serve_ticks, scrapers, queriers, subscribers) = if smoke {
        (400usize, 2_000usize, 2usize, 2usize, 2usize)
    } else {
        (2_000, 20_000, 4, 4, 2)
    };
    eprintln!(
        "serve_load: smoke={smoke}, {record_ticks} record ticks, {serve_ticks} serve ticks, \
         {scrapers} scrapers + {queriers} queriers + {subscribers} stream subscribers"
    );

    // Phase 1: record a store for the query endpoint to serve.
    let store_dir = std::env::temp_dir().join(format!("volley-serve-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = Store::open(&store_dir).expect("open store");
    let recorded = TaskRunner::new(&spec())
        .expect("valid runner")
        .with_recorder(SampleRecorder::new(store))
        .run(&traces(record_ticks))
        .expect("record run completes");
    eprintln!(
        "recorded {} ticks, {} alerts into {}",
        recorded.ticks,
        recorded.alerts,
        store_dir.display()
    );

    // Phase 2: live fleet with the server attached, clients hammering.
    let obs = Obs::new(true);
    let config =
        ServeConfig::new("127.0.0.1:0").with_store_dir(store_dir.to_string_lossy().into_owned());
    let handle = Server::start(config, &obs).expect("bind");
    let addr = handle.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let scrape_counters = Arc::new(ClientCounters::default());
    let query_counters = Arc::new(ClientCounters::default());
    let mut clients = Vec::new();
    for _ in 0..scrapers {
        let stop = Arc::clone(&stop);
        let counters = Arc::clone(&scrape_counters);
        clients.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let started = Instant::now();
                counters.record(http_get(addr, "/metrics"), started.elapsed());
            }
        }));
    }
    for q in 0..queriers {
        let stop = Arc::clone(&stop);
        let counters = Arc::clone(&query_counters);
        clients.push(std::thread::spawn(move || {
            // Each querier starts at a different offset so pages differ.
            let mut cursor = (q as u64) * 16;
            while !stop.load(Ordering::Relaxed) {
                let target = format!("/api/v1/query?limit=64&cursor={cursor}&task=0");
                let started = Instant::now();
                counters.record(http_get(addr, &target), started.elapsed());
                cursor = (cursor + 64) % 4096;
            }
        }));
    }
    let mut stream_handles = Vec::new();
    for _ in 0..subscribers {
        stream_handles.push(std::thread::spawn(move || stream_subscriber(addr)));
    }
    // Let the subscribers' requests land before the fleet starts, so
    // the streams are demonstrably open across the whole run.
    std::thread::sleep(Duration::from_millis(50));

    let served_start = Instant::now();
    let report = TaskRunner::new(&spec())
        .expect("valid runner")
        .with_obs(obs.clone())
        .with_self_monitor(WATCHDOG_THRESHOLD_US, 0.0)
        .with_serve_publisher(handle.publisher())
        .run(&traces(serve_ticks))
        .expect("serve run completes");
    let served = served_start.elapsed();
    handle.publisher().run_end(report.ticks);

    stop.store(true, Ordering::Relaxed);
    for client in clients {
        let _ = client.join();
    }
    let stats = handle.shutdown();
    let mut stream_alerts = Vec::new();
    let mut stream_run_ends = 0u64;
    for sub in stream_handles {
        match sub.join().expect("subscriber thread") {
            Ok((alerts, run_ends)) => {
                stream_alerts.push(alerts);
                stream_run_ends += run_ends;
            }
            Err(e) => {
                eprintln!("stream subscriber failed: {e}");
                stream_alerts.push(0);
            }
        }
    }
    let _ = std::fs::remove_dir_all(&store_dir);

    let secs = served.as_secs_f64();
    let scrape_ok = scrape_counters.ok.load(Ordering::Relaxed);
    let query_ok = query_counters.ok.load(Ordering::Relaxed);
    let scrape_failed = scrape_counters.failed.load(Ordering::Relaxed);
    let query_failed = query_counters.failed.load(Ordering::Relaxed);
    let min_stream_alerts = stream_alerts.iter().copied().min().unwrap_or(0);

    let text = format!(
        "serving-plane load ({serve_ticks} live ticks, {scrapers} scrapers, {queriers} queriers, \
         {subscribers} stream subscribers)\n\
         \n\
         fleet under load:\n\
           ticks                      {:>10}\n\
           wall time                  {:>10.2} s\n\
           tick rate                  {:>10.0} ticks/s\n\
           state alerts               {:>10}\n\
           self-monitor alerts        {:>10}   (design target: 0)\n\
         \n\
         clients (concurrent, whole run):\n\
           /metrics scrapes           {:>10}   ({:>8.0}/s, mean {:>7.1} µs, {} failed)\n\
           /api/v1/query pages        {:>10}   ({:>8.0}/s, mean {:>7.1} µs, {} failed)\n\
           stream alerts per sub      {:?}\n\
           stream run-end markers     {:>10}\n\
         \n\
         server loop:\n\
           connections                {:>10}\n\
           bad requests               {:>10}\n\
           slow client drops          {:>10}\n\
           stream lag drops           {:>10}\n",
        report.ticks,
        secs,
        report.ticks as f64 / secs,
        report.alerts,
        report.self_monitor_alerts,
        scrape_ok,
        scrape_ok as f64 / secs,
        scrape_counters.mean_latency_us(),
        scrape_failed,
        query_ok,
        query_ok as f64 / secs,
        query_counters.mean_latency_us(),
        query_failed,
        stream_alerts,
        stream_run_ends,
        stats.connections,
        stats.bad_requests,
        stats.slow_client_drops,
        stats.stream_lag_drops,
    );
    print!("{text}");

    #[derive(Serialize)]
    struct ServeLoadReport {
        schema: u32,
        smoke: bool,
        serve_ticks: usize,
        scrapers: usize,
        queriers: usize,
        subscribers: usize,
        wall_s: f64,
        ticks_per_s: f64,
        state_alerts: u64,
        self_monitor_alerts: u64,
        scrapes_ok: u64,
        scrapes_failed: u64,
        scrapes_per_s: f64,
        scrape_mean_us: f64,
        queries_ok: u64,
        queries_failed: u64,
        queries_per_s: f64,
        query_mean_us: f64,
        stream_alerts_per_subscriber: Vec<u64>,
        stream_run_end_markers: u64,
        server_connections: u64,
        server_bad_requests: u64,
        server_slow_client_drops: u64,
        server_stream_lag_drops: u64,
    }
    let json = ServeLoadReport {
        schema: 1,
        smoke,
        serve_ticks,
        scrapers,
        queriers,
        subscribers,
        wall_s: secs,
        ticks_per_s: report.ticks as f64 / secs,
        state_alerts: report.alerts,
        self_monitor_alerts: report.self_monitor_alerts,
        scrapes_ok: scrape_ok,
        scrapes_failed: scrape_failed,
        scrapes_per_s: scrape_ok as f64 / secs,
        scrape_mean_us: scrape_counters.mean_latency_us(),
        queries_ok: query_ok,
        queries_failed: query_failed,
        queries_per_s: query_ok as f64 / secs,
        query_mean_us: query_counters.mean_latency_us(),
        stream_alerts_per_subscriber: stream_alerts.clone(),
        stream_run_end_markers: stream_run_ends,
        server_connections: stats.connections,
        server_bad_requests: stats.bad_requests,
        server_slow_client_drops: stats.slow_client_drops,
        server_stream_lag_drops: stats.stream_lag_drops,
    };
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create output dir");
    std::fs::write(dir.join("serve.txt"), &text).expect("write txt");
    std::fs::write(
        dir.join("serve.json"),
        serde_json::to_string_pretty(&json).expect("serializable"),
    )
    .expect("write json");

    if smoke {
        let mut failed = false;
        if report.self_monitor_alerts != 0 {
            eprintln!(
                "FAIL: serving perturbed the fleet — {} self-monitor alerts (ticks {:?})",
                report.self_monitor_alerts, report.self_monitor_alert_ticks
            );
            failed = true;
        }
        if scrape_ok == 0 || query_ok == 0 {
            eprintln!("FAIL: a client class starved (scrapes {scrape_ok}, queries {query_ok})");
            failed = true;
        }
        if scrape_failed + query_failed > 0 {
            eprintln!("FAIL: {scrape_failed} scrapes / {query_failed} queries failed");
            failed = true;
        }
        if min_stream_alerts == 0 {
            eprintln!("FAIL: a stream subscriber saw no alerts: {stream_alerts:?}");
            failed = true;
        }
        if stream_run_ends != subscribers as u64 {
            eprintln!("FAIL: {stream_run_ends}/{subscribers} run-end markers arrived");
            failed = true;
        }
        if stats.bad_requests > 0 {
            eprintln!("FAIL: {} requests rejected as bad", stats.bad_requests);
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("smoke bounds hold");
    }
}
