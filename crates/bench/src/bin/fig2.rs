//! Figure 2 (illustration): violation-likelihood based adaptation in
//! action on a single monitor.
//!
//! Prints a time-indexed table of the sampled value, the mis-detection
//! bound `β(I)`, and the interval in effect, so the additive-increase /
//! collapse dynamics of §III-B are visible: β falls while the value sits
//! far under the threshold → the interval ratchets up; the value climbs
//! toward the threshold → β crosses the allowance → instant collapse to
//! the default interval.

use volley_core::{AdaptationConfig, AdaptiveSampler};
use volley_traces::netflow::{AttackSpec, NetflowConfig};
use volley_traces::DiurnalPattern;

fn main() {
    let ticks = 400usize;
    let config = NetflowConfig::builder()
        .seed(11)
        .scan_burst_probability(0.0)
        .diurnal(DiurnalPattern::flat())
        .attack(AttackSpec {
            vm: 0,
            start_tick: 300,
            duration_ticks: 60,
            peak_asymmetry: 1200.0,
        })
        .build();
    let trace = config.generate_vm(0, ticks).rho;
    let threshold = volley_core::selectivity_threshold(&trace, 5.0).expect("valid trace");

    let adaptation = AdaptationConfig::builder()
        .error_allowance(0.01)
        .max_interval(8)
        .patience(10)
        .build()
        .expect("valid adaptation");
    let mut sampler = AdaptiveSampler::new(adaptation, threshold);

    println!("# Violation-likelihood based adaptation (threshold {threshold:.0}, err 1%)");
    println!(
        "{:>6}{:>10}{:>12}{:>10}  event",
        "tick", "value", "beta(I)", "interval"
    );
    let mut tick = 0u64;
    while (tick as usize) < ticks {
        let value = trace[tick as usize];
        let obs = sampler.observe(tick, value);
        let event = if obs.violation {
            "VIOLATION"
        } else if obs.collapsed {
            "collapse -> Id"
        } else if obs.grew {
            "grow +1"
        } else {
            ""
        };
        if !event.is_empty() || tick.is_multiple_of(40) {
            println!(
                "{tick:>6}{value:>10.0}{:>12.5}{:>10}  {event}",
                obs.beta.min(1.0),
                obs.next_interval.to_string()
            );
        }
        tick = obs.next_sample_tick;
    }
    println!("\nShape to observe: the interval ratchets 1Id -> 8Id during the calm");
    println!("phase and collapses back the moment the attack ramp drives beta over err.");
}
