//! E11: datacenter-scale fleet execution on the threaded runtime.
//!
//! Runs a batch of independent distributed monitoring tasks — each with
//! its own monitor threads and coordinator, as §I's "large number of
//! monitoring tasks" implies — and reports the fleet-wide cost saving.
//! This is the closest the repository gets to the paper's full 800-VM
//! prototype deployment running live.

use volley_bench::params::SweepParams;
use volley_core::task::TaskSpec;
use volley_runtime::fleet::{FleetRunner, FleetTask};
use volley_traces::netflow::NetflowConfig;
use volley_traces::DiurnalPattern;

const MONITORS_PER_TASK: usize = 8;

fn main() {
    let params = SweepParams::from_args(std::env::args().skip(1));
    // Keep thread counts sane: tasks × (monitors + 1) threads.
    let task_count = (params.tasks / 2).clamp(2, 24);
    let ticks = params.ticks.min(3000);
    eprintln!("fleet_e2e: {task_count} tasks x {MONITORS_PER_TASK} monitors, {ticks} ticks");

    let mut tasks = Vec::new();
    for task_idx in 0..task_count {
        let traffic = NetflowConfig::builder()
            .seed(params.seed.wrapping_add(task_idx as u64))
            .vms(MONITORS_PER_TASK)
            .diurnal(DiurnalPattern::new((ticks as u64).min(5760), 0.4))
            .build()
            .generate(ticks);
        let traces: Vec<Vec<f64>> = traffic.into_iter().map(|t| t.rho).collect();
        let thresholds: Vec<f64> = traces
            .iter()
            .map(|t| volley_core::selectivity_threshold(t, 1.0).expect("valid trace"))
            .collect();
        let spec = TaskSpec::builder(thresholds.iter().sum())
            .threshold_split(volley_core::ThresholdSplit::Proportional)
            .threshold_weights(thresholds)
            .error_allowance(0.01)
            .max_interval(params.max_interval)
            .patience(params.patience)
            .build()
            .expect("valid spec");
        tasks.push(FleetTask::from_spec(spec, traces));
    }

    let started = std::time::Instant::now();
    let (reports, summary) = FleetRunner::new().run(tasks).expect("fleet run succeeds");
    let elapsed = started.elapsed();

    println!("# Fleet execution on the threaded runtime");
    println!("tasks:            {}", summary.tasks);
    println!("monitor threads:  {}", summary.tasks * MONITORS_PER_TASK);
    println!(
        "sampling ops:     {} of {} baseline (cost-ratio {:.4})",
        summary.total_samples,
        summary.baseline_samples,
        summary.cost_ratio()
    );
    println!("alerts:           {}", summary.alerts);
    println!("global polls:     {}", summary.polls);
    println!("wall time:        {:.2}s", elapsed.as_secs_f64());
    let per_task_ratios: Vec<String> = reports
        .iter()
        .map(|r| format!("{:.3}", r.cost_ratio(MONITORS_PER_TASK)))
        .collect();
    println!("per-task ratios:  {}", per_task_ratios.join(" "));
}
