//! Figure 5(b): system-level monitoring — sampling ratio vs error
//! allowance × selectivity.
//!
//! Paper shape to reproduce: clear savings, but smaller ratios than the
//! network case because system metric values change more between samples.

use volley_bench::experiments::sampling_ratio_matrix;
use volley_bench::params::{SweepParams, ERR_SWEEP, SELECTIVITY_SWEEP};
use volley_bench::report::print_matrix;
use volley_bench::workloads::TraceFamily;

fn main() {
    let params = SweepParams::from_args(std::env::args().skip(1));
    eprintln!("fig5b: {params:?}");
    let matrix =
        sampling_ratio_matrix(TraceFamily::System, &ERR_SWEEP, &SELECTIVITY_SWEEP, &params);
    print_matrix(&matrix);
}
