//! Figure 7: actual mis-detection rate of the system-level monitoring
//! experiments, swept over the error allowance and selectivity.
//!
//! Paper shape to reproduce: the measured mis-detection rate stays below
//! (or close to) the configured allowance in most cells; the highest-
//! selectivity tasks (smallest `k`) show relatively larger rates because
//! few alerts exist (small denominator) and Volley prefers low
//! frequencies on them.

use volley_bench::experiments::misdetection_matrix;
use volley_bench::params::{SweepParams, ERR_SWEEP, SELECTIVITY_SWEEP};
use volley_bench::report::print_matrix;
use volley_bench::workloads::TraceFamily;

fn main() {
    let params = SweepParams::from_args(std::env::args().skip(1));
    eprintln!("fig7: {params:?}");
    let matrix = misdetection_matrix(TraceFamily::System, &ERR_SWEEP, &SELECTIVITY_SWEEP, &params);
    print_matrix(&matrix);
    println!("(compare each row's cells against its `err` label: measured ≲ allowance)");
}
