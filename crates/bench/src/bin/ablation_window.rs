//! Ablation A5: windowed-aggregate monitoring (the §VII extension) versus
//! raw per-sample monitoring.
//!
//! For each trace family, monitors the same streams under (a) the raw
//! condition `v > Q(v, 100−k)` and (b) the windowed condition
//! `mean_W(v) > Q(mean_W(v), 100−k)`, at the same error allowance, and
//! reports cost and miss rate against each condition's own ground truth.
//!
//! Expected shape: windowed conditions are cheaper to monitor at equal
//! allowance (smoother δ) and equally safe.

use volley_bench::params::SweepParams;
use volley_bench::workloads::{TraceFamily, WorkloadSet};
use volley_core::accuracy::{AccuracyReport, DetectionLog, GroundTruth};
use volley_core::window::{AggregateKind, SlidingWindow, WindowedSampler};
use volley_core::{AdaptationConfig, AdaptiveSampler};

const WINDOW: u64 = 20;

fn windowed_series(trace: &[f64]) -> Vec<f64> {
    let mut window = SlidingWindow::new(WINDOW).expect("valid width");
    trace
        .iter()
        .enumerate()
        .map(|(t, &v)| {
            window.push(t as u64, v);
            window.aggregate(AggregateKind::Mean)
        })
        .collect()
}

fn main() {
    let params = SweepParams::from_args(std::env::args().skip(1));
    eprintln!("ablation_window: {params:?}, window {WINDOW} ticks");
    let adaptation = AdaptationConfig::builder()
        .error_allowance(0.01)
        .max_interval(params.max_interval)
        .patience(params.patience)
        .build()
        .expect("valid adaptation");
    println!("# Windowed-mean monitoring vs raw (k=1%, err=1%, window {WINDOW} ticks)");
    println!(
        "{:<14}{:<10}{:>12}{:>12}",
        "family", "form", "cost-ratio", "miss-rate"
    );
    for family in [
        TraceFamily::Network,
        TraceFamily::System,
        TraceFamily::Application,
    ] {
        let workload = WorkloadSet::generate(family, &params);
        let mut raw: Option<AccuracyReport> = None;
        let mut windowed: Option<AccuracyReport> = None;
        for trace in workload.traces() {
            // Raw form.
            let threshold = volley_core::selectivity_threshold(trace, 1.0).expect("valid");
            let mut policy = AdaptiveSampler::new(adaptation, threshold);
            let report = volley_core::accuracy::evaluate_policy(&mut policy, trace);
            raw = Some(raw.map(|m| m.merged(&report)).unwrap_or(report));

            // Windowed form: ground truth is the windowed series.
            let series = windowed_series(trace);
            let wthreshold = volley_core::selectivity_threshold(&series, 1.0).expect("valid");
            let truth = GroundTruth::from_trace(&series, wthreshold);
            let mut sampler =
                WindowedSampler::new(adaptation, wthreshold, WINDOW, AggregateKind::Mean)
                    .expect("valid window");
            let mut log = DetectionLog::new();
            let mut next = 0u64;
            for (t, &value) in trace.iter().enumerate() {
                let tick = t as u64;
                if tick >= next {
                    let obs = sampler.observe(tick, value);
                    log.record(tick, 1, obs.violation);
                    next = obs.next_sample_tick;
                }
            }
            let report = log.score(&truth, trace.len() as u64);
            windowed = Some(windowed.map(|m| m.merged(&report)).unwrap_or(report));
        }
        let raw = raw.expect("non-empty workload");
        let windowed = windowed.expect("non-empty workload");
        println!(
            "{:<14}{:<10}{:>12.4}{:>12.4}",
            family.name(),
            "raw",
            raw.cost_ratio(),
            raw.misdetection_rate()
        );
        println!(
            "{:<14}{:<10}{:>12.4}{:>12.4}",
            family.name(),
            "windowed",
            windowed.cost_ratio(),
            windowed.misdetection_rate()
        );
    }
}
