//! E12: distributed tasks on the datacenter simulator — multi-VM tasks
//! with coordinator-driven global polls, their Dom0 cost included.
//!
//! Complements Figure 6 (single-VM tasks) and Figure 8 (coordination
//! schemes without a cost model): here the *whole* distributed pipeline —
//! local adaptive sampling, local violations, poll-forced samples — is
//! charged against simulated Dom0 CPU, per error allowance and per
//! coordination scheme.

use volley_bench::params::SweepParams;
use volley_core::coordinator::CoordinationScheme;
use volley_sim::{ClusterConfig, DistributedScenario, DistributedScenarioConfig};

fn main() {
    let params = SweepParams::from_args(std::env::args().skip(1));
    let cluster = if params.tasks <= SweepParams::quick().tasks {
        ClusterConfig::new(4, 20, 2)
    } else {
        ClusterConfig::paper()
    };
    eprintln!(
        "distributed_sim: cluster {cluster:?}, ticks {}",
        params.ticks
    );
    println!("# Distributed tasks (5 VMs each) on the simulator");
    println!(
        "{:<8}{:<10}{:>12}{:>10}{:>10}{:>12}{:>12}",
        "err", "scheme", "cost-ratio", "polls", "alerts", "Dom0 mean%", "miss-rate"
    );
    for err in [0.0, 0.01, 0.05] {
        for (name, scheme) in [
            ("even", CoordinationScheme::Even),
            ("adapt", CoordinationScheme::Adaptive),
        ] {
            let report = DistributedScenario::from_config(DistributedScenarioConfig {
                cluster,
                task_size: 5,
                error_allowance: err,
                ticks: params.ticks.min(3000),
                seed: params.seed,
                max_interval: params.max_interval,
                patience: params.patience,
                scheme,
                ..DistributedScenarioConfig::default()
            })
            .run();
            let cpu = report.cpu.as_ref().expect("cpu recorded");
            println!(
                "{:<8}{:<10}{:>12.4}{:>10}{:>10}{:>11.1}%{:>12.4}",
                err,
                name,
                report.cost_ratio(),
                report.global_polls,
                report.alerts,
                cpu.mean * 100.0,
                report.accuracy.misdetection_rate()
            );
        }
    }
}
