//! Figure 5(c): application-level monitoring — sampling ratio vs error
//! allowance × selectivity.
//!
//! Paper shape to reproduce: high savings thanks to the bursty, diurnal
//! nature of web accesses (large intervals during off-peak periods).

use volley_bench::experiments::sampling_ratio_matrix;
use volley_bench::params::{SweepParams, ERR_SWEEP, SELECTIVITY_SWEEP};
use volley_bench::report::print_matrix;
use volley_bench::workloads::TraceFamily;

fn main() {
    let params = SweepParams::from_args(std::env::args().skip(1));
    eprintln!("fig5c: {params:?}");
    let matrix = sampling_ratio_matrix(
        TraceFamily::Application,
        &ERR_SWEEP,
        &SELECTIVITY_SWEEP,
        &params,
    );
    print_matrix(&matrix);
}
