//! Socket-fleet scaling benchmark: the networked coordinator versus the
//! in-process runner, point for point.
//!
//! For each fleet size the same bursty workload runs twice: once through
//! the channel-based [`TaskRunner`] (the determinism baseline) and once
//! over real localhost TCP — one [`NetCoordinator`] event loop
//! multiplexing every agent connection, each agent thread hosting a
//! contiguous slice of monitors ([`run_agent`]). The two
//! [`RuntimeReport`]s must be **bit-for-bit identical**: the wire moves
//! the exact frames the channels moved, so any divergence is a transport
//! bug, not noise. The largest point is a 10k-monitor fleet multiplexed
//! over 250 connections — the acceptance bar for the networked
//! deployment.
//!
//! Writes `reproduction/net_scale.txt` and `reproduction/net_scale.json`.
//! Exits non-zero if any point loses report parity.
//!
//! `--smoke` trims the sweep to two points (2k and 10k monitors) for CI.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use serde::Serialize;
use volley_core::task::TaskSpec;
use volley_runtime::net::{
    run_agent, AgentConfig, BackoffConfig, NetAddr, NetCoordinator, NetStats,
};
use volley_runtime::transport::TransportConfig;
use volley_runtime::TaskRunner;

/// The CLI's bursty workload: quiet at ~20% of the local threshold with
/// a violation burst every 50 ticks and a per-monitor wobble.
fn bursty_traces(n: usize, ticks: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|m| {
            (0..ticks)
                .map(|t| {
                    let wobble = ((t * (3 + m)) % 7) as f64;
                    if t % 50 == 49 {
                        140.0 + wobble
                    } else {
                        20.0 + wobble
                    }
                })
                .collect()
        })
        .collect()
}

#[derive(Serialize)]
struct PointRecord {
    monitors: usize,
    agents: u32,
    ticks: usize,
    baseline_elapsed_s: f64,
    net_elapsed_s: f64,
    alerts: u64,
    total_samples: u64,
    parity: bool,
    net: NetStats,
}

#[derive(Serialize)]
struct NetScaleReport {
    schema: u32,
    smoke: bool,
    points: Vec<PointRecord>,
}

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            if let Some(dir) = it.next() {
                return PathBuf::from(dir);
            }
        }
    }
    PathBuf::from("reproduction")
}

fn run_point(monitors: usize, agents: u32, ticks: usize) -> PointRecord {
    eprintln!("net_scale: point {monitors} monitors / {agents} agents / {ticks} ticks");
    let spec = TaskSpec::builder(100.0 * monitors as f64)
        .monitors(monitors)
        .error_allowance(0.01)
        .build()
        .expect("valid spec");
    let traces = bursty_traces(monitors, ticks);

    // Both sides get the same generous deadline: at 10k monitors the OS
    // cannot schedule every monitor thread inside the default 1s window,
    // and a deadline miss on either side would (correctly) break parity
    // by counting monitors degraded.
    let deadline = Duration::from_secs(10);
    let started = Instant::now();
    let baseline = TaskRunner::new(&spec)
        .expect("runner builds")
        .with_tick_deadline(deadline)
        .run(&traces)
        .expect("in-process run succeeds");
    let baseline_elapsed_s = started.elapsed().as_secs_f64();
    eprintln!("net_scale: in-process baseline done in {baseline_elapsed_s:.2}s");

    let coordinator = NetCoordinator::bind(spec.clone(), &NetAddr::Tcp("127.0.0.1:0".into()))
        .expect("bind succeeds")
        .with_wait_timeout(Duration::from_secs(60))
        .with_tick_deadline(deadline);
    let addr = NetAddr::Tcp(
        coordinator
            .local_addr()
            .expect("tcp local addr")
            .to_string(),
    );

    let started = Instant::now();
    let per = (monitors as u32).div_ceil(agents);
    let handles: Vec<std::thread::JoinHandle<()>> = (0..agents)
        .map(|a| {
            let config = AgentConfig {
                agent: a,
                addr: addr.clone(),
                spec: spec.clone(),
                monitors: (a * per)..((a + 1) * per).min(monitors as u32),
                transport: TransportConfig::default(),
                backoff: BackoffConfig {
                    base: Duration::from_millis(10),
                    cap: Duration::from_millis(500),
                    max_retries_per_outage: 500,
                },
            };
            std::thread::spawn(move || {
                run_agent(&config).expect("agent completes");
            })
        })
        .collect();
    let outcome = coordinator.run(&traces).expect("net run succeeds");
    for handle in handles {
        handle.join().expect("agent thread joins");
    }
    let net_elapsed_s = started.elapsed().as_secs_f64();

    let parity = outcome.report == baseline;
    if !parity {
        eprintln!(
            "FAIL: {monitors} monitors / {agents} agents: networked report diverged\n\
             baseline: {baseline:?}\n\
             net:      {:?}",
            outcome.report
        );
    }
    PointRecord {
        monitors,
        agents,
        ticks,
        baseline_elapsed_s,
        net_elapsed_s,
        alerts: outcome.report.alerts,
        total_samples: outcome.report.total_samples,
        parity,
        net: outcome.net,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // (monitors, agents, ticks): each agent multiplexes monitors/agents
    // actors over one socket; the 10k point is the acceptance bar.
    let points: &[(usize, u32, usize)] = if smoke {
        &[(2048, 128, 100), (10_000, 250, 60)]
    } else {
        &[
            (64, 16, 200),
            (512, 64, 150),
            (2048, 128, 100),
            (10_000, 250, 60),
        ]
    };
    eprintln!("net_scale: smoke={smoke}, {} points", points.len());

    let mut text = format!(
        "networked fleet vs in-process runner (bit-for-bit report parity)\n\n\
         {:>9} {:>7} {:>6} {:>10} {:>9} {:>11} {:>12} {:>7}\n",
        "monitors", "agents", "ticks", "chan-secs", "net-secs", "frames-in", "queue-peak", "parity",
    );
    let mut records = Vec::new();
    let mut failed = false;

    for &(monitors, agents, ticks) in points {
        let record = run_point(monitors, agents, ticks);
        text.push_str(&format!(
            "{:>9} {:>7} {:>6} {:>10.2} {:>9.2} {:>11} {:>12} {:>7}\n",
            record.monitors,
            record.agents,
            record.ticks,
            record.baseline_elapsed_s,
            record.net_elapsed_s,
            record.net.frames_in,
            record.net.max_queue_depth,
            if record.parity { "yes" } else { "NO" },
        ));
        failed |= !record.parity;
        records.push(record);
    }

    print!("{text}");
    let report = NetScaleReport {
        schema: 1,
        smoke,
        points: records,
    };
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create output dir");
    std::fs::write(dir.join("net_scale.txt"), &text).expect("write txt");
    std::fs::write(
        dir.join("net_scale.json"),
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("write json");

    if failed {
        std::process::exit(1);
    }
    eprintln!("net_scale parity holds");
}
