//! Figure 1 (motivating example): three sampling schemes on a DDoS
//! traffic-difference trace containing one attack.
//!
//! - **Scheme A** — high-frequency periodic sampling: detects the
//!   violation but pays full cost;
//! - **Scheme B** — low-frequency periodic sampling: cheap but misses the
//!   violation between two consecutive samples;
//! - **Scheme C** — Volley's dynamic sampling: low frequency while the
//!   violation likelihood is low, high frequency as the attack ramps.

use volley_core::accuracy::{AccuracyReport, DetectionLog, GroundTruth};
use volley_core::{AdaptationConfig, AdaptiveSampler, Interval, PeriodicSampler, SamplingPolicy};
use volley_traces::netflow::{AttackSpec, NetflowConfig};
use volley_traces::DiurnalPattern;

fn describe(name: &str, report: &AccuracyReport, events: (usize, usize)) {
    println!(
        "{name:<22} samples={:<6} cost-ratio={:<8.3} ticks={}/{} events={}/{} miss-rate={:.3}",
        report.sampling_ops,
        report.cost_ratio(),
        report.detected,
        report.violations,
        events.1,
        events.0,
        report.misdetection_rate()
    );
}

/// Runs a policy and returns both tick- and event-level scores.
fn run_scored(policy: &mut dyn SamplingPolicy, trace: &[f64]) -> (AccuracyReport, (usize, usize)) {
    let truth = GroundTruth::from_trace(trace, policy.threshold());
    let mut log = DetectionLog::new();
    let mut next = 0u64;
    for (t, &value) in trace.iter().enumerate() {
        let tick = t as u64;
        if tick >= next {
            let obs = policy.observe(tick, value);
            log.record(tick, 1, obs.violation);
            next = obs.next_sample_tick;
        }
    }
    (
        log.score(&truth, trace.len() as u64),
        log.score_events(&truth),
    )
}

fn main() {
    let ticks = 2000;
    // A single-VM trace with one pronounced SYN-flood ramp near the end.
    let config = NetflowConfig::builder()
        .seed(7)
        .vms(1)
        .scan_burst_probability(0.002)
        .diurnal(DiurnalPattern::new(2000, 0.4))
        .attack(AttackSpec {
            vm: 0,
            start_tick: 1700,
            duration_ticks: 120,
            peak_asymmetry: 3000.0,
        })
        .build();
    let trace = config.generate_vm(0, ticks).rho;
    let threshold = volley_core::selectivity_threshold(&trace, 1.0).expect("valid trace");
    println!("# Motivating example: threshold {threshold:.1} (k=1%), {ticks} windows of 15s\n");

    // Scheme A: periodic at the default interval.
    let mut scheme_a = PeriodicSampler::new(Interval::DEFAULT, threshold);
    let (report, events) = run_scored(&mut scheme_a, &trace);
    describe("A (periodic, fast)", &report, events);

    // Scheme B: periodic at 8x the default interval.
    let mut scheme_b = PeriodicSampler::new(Interval::new(8).expect("non-zero"), threshold);
    let (report, events) = run_scored(&mut scheme_b, &trace);
    describe("B (periodic, slow)", &report, events);

    // Scheme C: Volley.
    let adaptation = AdaptationConfig::builder()
        .error_allowance(0.01)
        .max_interval(8)
        .patience(10)
        .build()
        .expect("valid adaptation config");
    let mut scheme_c = AdaptiveSampler::new(adaptation, threshold);
    let (report, events) = run_scored(&mut scheme_c, &trace);
    describe("C (Volley, dynamic)", &report, events);

    println!("\nShape to observe: A detects everything at cost 1.0; B is cheap but");
    println!("misses ramp violations; C detects like A at a fraction of the cost.");
}
