//! Ablation A7: δ-statistics estimator — the paper's windowed restart
//! versus exponentially-forgetting (EWMA) estimation.
//!
//! The windowed scheme weighs all observations in the current window
//! equally and then forgets everything at once (every 1000 samples); the
//! EWMA variant forgets continuously. Faster forgetting reacts to regime
//! shifts sooner (fewer stale-σ misses) but with noisier estimates
//! (earlier collapses, higher cost).

use volley_bench::params::SweepParams;
use volley_bench::workloads::{TraceFamily, WorkloadSet};
use volley_core::accuracy::{evaluate_policy, AccuracyReport};
use volley_core::{AdaptationConfig, AdaptiveSampler, StatsKind};

fn run(workload: &WorkloadSet, kind: StatsKind, params: &SweepParams) -> AccuracyReport {
    let adaptation = AdaptationConfig::builder()
        .error_allowance(0.01)
        .max_interval(params.max_interval)
        .patience(params.patience)
        .stats(kind)
        .build()
        .expect("valid adaptation");
    let mut merged: Option<AccuracyReport> = None;
    for trace in workload.traces() {
        let threshold = volley_core::selectivity_threshold(trace, 1.0).expect("valid trace");
        let mut policy = AdaptiveSampler::new(adaptation, threshold);
        let report = evaluate_policy(&mut policy, trace);
        merged = Some(merged.map(|m| m.merged(&report)).unwrap_or(report));
    }
    merged.expect("non-empty workload")
}

fn main() {
    let params = SweepParams::from_args(std::env::args().skip(1));
    eprintln!("ablation_stats: {params:?}");
    println!("# δ-statistics estimator ablation (k=1%, err=1%)");
    println!(
        "{:<14}{:<18}{:>12}{:>12}",
        "family", "estimator", "cost-ratio", "miss-rate"
    );
    let estimators = [
        ("windowed-1000", StatsKind::WindowedRestart),
        ("ewma-0.01", StatsKind::Ewma { lambda: 0.01 }),
        ("ewma-0.05", StatsKind::Ewma { lambda: 0.05 }),
        ("ewma-0.2", StatsKind::Ewma { lambda: 0.2 }),
    ];
    for family in [
        TraceFamily::Network,
        TraceFamily::System,
        TraceFamily::Application,
    ] {
        let workload = WorkloadSet::generate(family, &params);
        for (name, kind) in estimators {
            let report = run(&workload, kind, &params);
            println!(
                "{:<14}{:<18}{:>12.4}{:>12.4}",
                family.name(),
                name,
                report.cost_ratio(),
                report.misdetection_rate()
            );
        }
    }
}
