//! Observability overhead benchmark.
//!
//! Answers the question every instrumented hot path raises: *what does
//! the instrumentation cost?* Two measurements:
//!
//! 1. **Micro** — the monitor-actor sample path
//!    (`AdaptiveSampler::observe` plus the exact obs operations
//!    `MonitorActor` performs per tick: one `span_timed` guard, a sample
//!    counter and a send counter) in three configurations: no obs
//!    handles at all (the pre-obs hot path), handles resolved against a
//!    *disabled* registry (the runtime's default — each op must cost one
//!    relaxed atomic load), and handles against an *enabled* registry.
//! 2. **End-to-end** — wall time per tick of a full `TaskRunner` run
//!    (threads, channels, coordinator) with obs disabled versus enabled;
//!    the enabled overhead target is <2% since real ticks are dominated
//!    by message passing, not metrics.
//!
//! Writes `reproduction/obs_overhead.txt` and
//! `reproduction/obs_overhead.json`. `--smoke` shrinks the workload and
//! exits non-zero if the disabled micro overhead or the enabled
//! end-to-end overhead exceeds the checked-in bounds — the CI guard
//! against observability quietly taxing the hot path.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use serde::Serialize;
use volley_core::task::TaskSpec;
use volley_core::{AdaptationConfig, AdaptiveSampler};
use volley_obs::{names, Counter, Histogram, Obs, SpanLog};
use volley_runtime::TaskRunner;

/// Smoke-mode ceiling on the *disabled* micro overhead, percent. The
/// design target is "statistically indistinguishable from baseline";
/// the bound leaves headroom for shared-runner noise.
const DISABLED_MICRO_BOUND_PCT: f64 = 15.0;
/// Smoke-mode ceiling on the *enabled* end-to-end overhead, percent.
/// Target <2% on a quiet machine; bound sized for CI jitter.
const ENABLED_E2E_BOUND_PCT: f64 = 25.0;

/// The per-tick obs operations `MonitorActor` performs, pre-resolved.
struct Handles {
    spans: SpanLog,
    hist: Histogram,
    samples: Counter,
    sends: Counter,
}

fn handles(obs: &Obs) -> Handles {
    Handles {
        spans: obs.spans().clone(),
        hist: obs.registry().histogram(names::MONITOR_SAMPLE_NS),
        samples: obs.registry().counter(names::MONITOR_SAMPLES_TOTAL),
        sends: obs.registry().counter(names::TRANSPORT_SENDS_TOTAL),
    }
}

/// One micro round: ns per sample-path iteration.
fn micro_round(iters: u64, obs: Option<&Handles>) -> f64 {
    let config = AdaptationConfig::builder()
        .error_allowance(0.01)
        .build()
        .expect("valid config");
    let mut sampler = AdaptiveSampler::new(config, 100.0);
    let started = Instant::now();
    for t in 0..iters {
        // Sub-threshold wobble: the sampler exercises its likelihood
        // bookkeeping without constant violations.
        let value = 20.0 + ((t * 7) % 13) as f64;
        let observation = {
            let _timed = obs.map(|h| h.spans.span_timed("monitor_sample", &h.hist));
            sampler.observe(t, black_box(value))
        };
        if let Some(h) = obs {
            h.samples.inc();
            h.sends.inc();
        }
        black_box(&observation);
    }
    started.elapsed().as_nanos() as f64 / iters as f64
}

/// One end-to-end round: µs per runner tick.
fn e2e_round(enabled: bool, ticks: usize) -> f64 {
    const MONITORS: usize = 3;
    let spec = TaskSpec::builder(100.0 * MONITORS as f64)
        .monitors(MONITORS)
        .error_allowance(0.01)
        .build()
        .expect("valid spec");
    let local = 100.0;
    let traces: Vec<Vec<f64>> = (0..MONITORS)
        .map(|m| {
            (0..ticks)
                .map(|t| {
                    let wobble = ((t * (3 + m)) % 7) as f64;
                    if t % 50 == 49 {
                        local * 1.4 + wobble
                    } else {
                        local * 0.2 + wobble
                    }
                })
                .collect()
        })
        .collect();
    let runner = TaskRunner::new(&spec)
        .expect("valid runner")
        .with_obs(Obs::new(enabled));
    let started = Instant::now();
    let report = runner.run(&traces).expect("run completes");
    assert_eq!(report.ticks, ticks as u64);
    started.elapsed().as_micros() as f64 / ticks as f64
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn overhead_pct(candidate: f64, baseline: f64) -> f64 {
    if baseline <= 0.0 {
        return 0.0;
    }
    100.0 * (candidate - baseline) / baseline
}

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            if let Some(dir) = it.next() {
                return PathBuf::from(dir);
            }
        }
    }
    PathBuf::from("reproduction")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (iters, e2e_ticks, rounds) = if smoke {
        (200_000u64, 200usize, 3usize)
    } else {
        (2_000_000, 600, 5)
    };
    eprintln!(
        "obs_overhead: smoke={smoke}, {iters} micro iters, {e2e_ticks} e2e ticks, {rounds} rounds"
    );

    // Warm-up: fault in code paths and stabilize the clock.
    let _ = micro_round(iters / 10, None);

    let disabled_obs = Obs::disabled();
    let enabled_obs = Obs::new(true);
    let disabled_handles = handles(&disabled_obs);
    let enabled_handles = handles(&enabled_obs);
    let (mut base, mut off, mut on) = (Vec::new(), Vec::new(), Vec::new());
    // Interleaved rounds so drift (thermal, scheduler) hits all three
    // configurations equally.
    for _ in 0..rounds {
        base.push(micro_round(iters, None));
        off.push(micro_round(iters, Some(&disabled_handles)));
        on.push(micro_round(iters, Some(&enabled_handles)));
    }
    let micro_baseline = median(&mut base);
    let micro_disabled = median(&mut off);
    let micro_enabled = median(&mut on);
    let micro_spread = base
        .iter()
        .fold(0.0f64, |acc, v| acc.max((v - micro_baseline).abs()));

    let (mut e2e_base, mut e2e_on) = (Vec::new(), Vec::new());
    for _ in 0..rounds {
        e2e_base.push(e2e_round(false, e2e_ticks));
        e2e_on.push(e2e_round(true, e2e_ticks));
    }
    let e2e_disabled = median(&mut e2e_base);
    let e2e_enabled = median(&mut e2e_on);

    let disabled_pct = overhead_pct(micro_disabled, micro_baseline);
    let enabled_pct = overhead_pct(micro_enabled, micro_baseline);
    let e2e_pct = overhead_pct(e2e_enabled, e2e_disabled);
    // "Indistinguishable" operationally: the disabled delta is within the
    // round-to-round spread of the baseline itself.
    let indistinguishable = (micro_disabled - micro_baseline).abs() <= micro_spread.max(0.5);

    let text = format!(
        "obs overhead ({} micro iters, {} e2e ticks, {} rounds, medians)\n\
         \n\
         micro (monitor sample path, ns/op):\n\
           baseline (no obs handles)   {micro_baseline:8.1}\n\
           obs disabled                {micro_disabled:8.1}  ({disabled_pct:+6.2}%)\n\
           obs enabled                 {micro_enabled:8.1}  ({enabled_pct:+6.2}%)\n\
           baseline round spread       {micro_spread:8.1}\n\
           disabled indistinguishable from baseline: {indistinguishable}\n\
         \n\
         end-to-end (TaskRunner, µs/tick):\n\
           obs disabled                {e2e_disabled:8.1}\n\
           obs enabled                 {e2e_enabled:8.1}  ({e2e_pct:+6.2}%)\n\
         \n\
         smoke bounds: disabled micro < {DISABLED_MICRO_BOUND_PCT}%, enabled e2e < {ENABLED_E2E_BOUND_PCT}%\n",
        iters, e2e_ticks, rounds,
    );
    print!("{text}");

    #[derive(Serialize)]
    struct OverheadReport {
        schema: u32,
        smoke: bool,
        micro_iters: u64,
        e2e_ticks: usize,
        rounds: usize,
        micro_baseline_ns_op: f64,
        micro_disabled_ns_op: f64,
        micro_enabled_ns_op: f64,
        micro_baseline_spread_ns: f64,
        micro_disabled_overhead_pct: f64,
        micro_enabled_overhead_pct: f64,
        disabled_indistinguishable: bool,
        e2e_disabled_us_tick: f64,
        e2e_enabled_us_tick: f64,
        e2e_enabled_overhead_pct: f64,
        disabled_micro_bound_pct: f64,
        enabled_e2e_bound_pct: f64,
    }
    let json = OverheadReport {
        schema: 1,
        smoke,
        micro_iters: iters,
        e2e_ticks,
        rounds,
        micro_baseline_ns_op: micro_baseline,
        micro_disabled_ns_op: micro_disabled,
        micro_enabled_ns_op: micro_enabled,
        micro_baseline_spread_ns: micro_spread,
        micro_disabled_overhead_pct: disabled_pct,
        micro_enabled_overhead_pct: enabled_pct,
        disabled_indistinguishable: indistinguishable,
        e2e_disabled_us_tick: e2e_disabled,
        e2e_enabled_us_tick: e2e_enabled,
        e2e_enabled_overhead_pct: e2e_pct,
        disabled_micro_bound_pct: DISABLED_MICRO_BOUND_PCT,
        enabled_e2e_bound_pct: ENABLED_E2E_BOUND_PCT,
    };
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create output dir");
    std::fs::write(dir.join("obs_overhead.txt"), &text).expect("write txt");
    std::fs::write(
        dir.join("obs_overhead.json"),
        serde_json::to_string_pretty(&json).expect("serializable"),
    )
    .expect("write json");

    if smoke {
        let mut failed = false;
        if disabled_pct > DISABLED_MICRO_BOUND_PCT {
            eprintln!(
                "FAIL: disabled micro overhead {disabled_pct:.2}% exceeds bound {DISABLED_MICRO_BOUND_PCT}%"
            );
            failed = true;
        }
        if e2e_pct > ENABLED_E2E_BOUND_PCT {
            eprintln!(
                "FAIL: enabled e2e overhead {e2e_pct:.2}% exceeds bound {ENABLED_E2E_BOUND_PCT}%"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("smoke bounds hold");
    }
}
