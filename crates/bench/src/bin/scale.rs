//! Sharded-engine scaling benchmark: 10k → 1M VMs.
//!
//! Runs the adaptive-sampling fleet loop on the sharded simulation
//! engine ([`volley_sim::ShardedEngine`]) at three cluster sizes and a
//! sweep of worker-thread counts, recording throughput (VM-windows
//! simulated per second) and speedup versus single-threaded execution.
//! The per-VM work is the real Volley hot path — one [`AdaptiveSampler`]
//! per VM over a deterministic synthetic trace — so the numbers measure
//! the engine, not a toy loop.
//!
//! Writes `reproduction/scale.txt` and `reproduction/scale.json`.
//!
//! `--smoke` shrinks the sweep to the 10k-VM point and exits non-zero if
//! the 8-thread run falls short of the host-scaled speedup bound, or if
//! any run breaks bit-determinism (sampling-op / alert counts must be
//! identical at every thread count). The speedup bound is
//! `min(3.0, 0.6 × cores)`; on hosts with fewer than two cores the bound
//! is recorded as waived — a single core cannot speed anything up, and
//! pretending otherwise would just make CI red on small runners.
//! Multi-core CI enforces the real ≥3× bound at 8 threads.

use std::path::PathBuf;
use std::time::Instant;

use serde::Serialize;
use volley_core::{AdaptationConfig, AdaptiveSampler};
use volley_sim::{
    ClusterConfig, EngineConfig, ShardCtx, ShardPlan, ShardWorker, ShardedEngine, SimDuration,
    SimTime,
};

/// The paper's default network-monitoring window.
const WINDOW_MICROS: u64 = 15_000_000;
/// Alert threshold over the uniform [0, 100) synthetic metric: 1%
/// selectivity, matching the paper's evaluation setup.
const THRESHOLD: f64 = 99.0;
/// Full-mode speedup requirement at 8 threads (CI enforces this on
/// multi-core runners).
const TARGET_SPEEDUP: f64 = 3.0;

/// Deterministic synthetic metric for `(vm, tick)` from a
/// splitmix-style hash, so no trace storage is needed even at 1M VMs
/// and every thread count sees exactly the same values. Mostly calm
/// (uniform below 60) with ~0.1% spikes above the threshold: samplers
/// genuinely widen their intervals and reset on violations, so the
/// bench exercises the adaptive path rather than degenerating to
/// sample-every-window.
fn metric(vm: u64, tick: u64) -> f64 {
    let mut x = vm
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(tick.wrapping_mul(0xD1B5_4A32_D192_ED03));
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    let u = (x % 10_000) as f64 / 100.0; // uniform [0, 100)
    if u >= 99.9 {
        u // spike above THRESHOLD
    } else {
        // Calm band [25, 30): tight enough (σ ≈ 1.4 against a 99
        // threshold) that the violation-likelihood bound sustains the
        // maximum interval.
        25.0 + u * 0.05
    }
}

/// One shard's slice of the fleet: a Volley sampler per VM plus its next
/// due tick.
struct FleetSlice {
    vm_ids: Vec<u32>,
    tick_count: u64,
    samplers: Vec<AdaptiveSampler>,
    next_due: Vec<u64>,
    sampling_ops: u64,
    alerts: u64,
}

impl ShardWorker for FleetSlice {
    type Event = u64; // window index
    type Msg = ();

    fn handle(&mut self, ctx: &mut ShardCtx<'_, Self::Event, Self::Msg>, time: SimTime, tick: u64) {
        for (i, sampler) in self.samplers.iter_mut().enumerate() {
            if self.next_due[i] > tick {
                continue;
            }
            let value = metric(u64::from(self.vm_ids[i]), tick);
            let outcome = sampler.observe(tick, value);
            self.sampling_ops += 1;
            if outcome.violation {
                self.alerts += 1;
            }
            self.next_due[i] = outcome.next_sample_tick.max(tick + 1);
        }
        if tick + 1 < self.tick_count {
            ctx.schedule(time + SimDuration::from_micros(WINDOW_MICROS), tick + 1);
        }
    }
}

/// One measured run: the full fleet loop at a given thread count.
struct RunOutcome {
    elapsed_s: f64,
    sampling_ops: u64,
    alerts: u64,
    epochs: u64,
}

fn run_point(cluster: ClusterConfig, ticks: u64, threads: usize) -> RunOutcome {
    let plan = ShardPlan::by_coordinator_group(cluster);
    let engine = ShardedEngine::new(EngineConfig {
        threads,
        epoch: SimDuration::from_micros(WINDOW_MICROS),
        horizon: SimTime::from_micros(ticks.saturating_mul(WINDOW_MICROS)),
    });
    let config = AdaptationConfig::builder()
        .error_allowance(0.01)
        .max_interval(8)
        .patience(5) // reach the max interval within the bench horizon
        .build()
        .expect("valid config");
    let started = Instant::now();
    let (slices, stats) = engine.run(
        &plan,
        0, // samplers draw no engine randomness; the metric hash is the seed
        |shard, ctx| {
            let vm_ids: Vec<u32> = plan.vms_of(shard).map(|vm| vm.0).collect();
            let count = vm_ids.len();
            ctx.schedule(SimTime::ZERO, 0);
            FleetSlice {
                vm_ids,
                tick_count: ticks,
                samplers: (0..count)
                    .map(|_| AdaptiveSampler::new(config, THRESHOLD))
                    .collect(),
                next_due: vec![0; count],
                sampling_ops: 0,
                alerts: 0,
            }
        },
        None,
    );
    RunOutcome {
        elapsed_s: started.elapsed().as_secs_f64(),
        sampling_ops: slices.iter().map(|s| s.sampling_ops).sum(),
        alerts: slices.iter().map(|s| s.alerts).sum(),
        epochs: stats.epochs,
    }
}

#[derive(Serialize)]
struct RunRecord {
    threads: usize,
    elapsed_s: f64,
    vm_windows_per_s: f64,
    ticks_per_s: f64,
    sampling_ops: u64,
    alerts: u64,
    speedup: f64,
}

#[derive(Serialize)]
struct PointRecord {
    vms: u64,
    servers: u32,
    vms_per_server: u32,
    shards: u32,
    ticks: u64,
    runs: Vec<RunRecord>,
    speedup_at_8: f64,
}

#[derive(Serialize)]
struct ScaleReport {
    schema: u32,
    smoke: bool,
    host_parallelism: usize,
    /// The speedup the smoke gate enforced: `min(3.0, 0.6 × cores)`,
    /// or 0 (waived) on single-core hosts where no speedup is possible.
    enforced_min_speedup: f64,
    target_speedup_multicore: f64,
    points: Vec<PointRecord>,
}

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            if let Some(dir) = it.next() {
                return PathBuf::from(dir);
            }
        }
    }
    PathBuf::from("reproduction")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // (total VMs, ticks): bigger clusters run fewer windows so the full
    // sweep stays tractable; throughput is normalized per VM-window.
    let points: &[(u64, u64)] = if smoke {
        &[(10_000, 80)]
    } else {
        &[(10_000, 120), (100_000, 120), (1_000_000, 40)]
    };
    let thread_counts: &[usize] = if smoke { &[1, 8] } else { &[1, 2, 4, 8] };
    let enforced_min_speedup = if cores >= 2 {
        TARGET_SPEEDUP.min(0.6 * cores as f64)
    } else {
        0.0 // waived: a single core cannot parallelize
    };
    eprintln!(
        "scale: smoke={smoke}, host parallelism {cores}, enforced min speedup {enforced_min_speedup:.2}"
    );

    let mut text = format!(
        "sharded engine scaling (adaptive fleet loop, host parallelism {cores})\n\
         speedup gate: 8 threads >= min({TARGET_SPEEDUP}, 0.6 x cores) = {enforced_min_speedup:.2}\
         {}\n\n\
         {:>9} {:>7} {:>7} {:>8} {:>11} {:>13} {:>8}\n",
        if enforced_min_speedup == 0.0 {
            " (waived on single-core host)"
        } else {
            ""
        },
        "vms",
        "ticks",
        "threads",
        "secs",
        "ops",
        "vm-windows/s",
        "speedup",
    );
    let mut records = Vec::new();
    let mut failed = false;

    for &(vms, ticks) in points {
        let vms_per_server = 40u32;
        let servers = (vms / u64::from(vms_per_server)) as u32;
        let cluster = ClusterConfig::new(servers, vms_per_server, 5);
        let shards = ShardPlan::by_coordinator_group(cluster).shard_count();

        let mut runs = Vec::new();
        let mut baseline: Option<RunOutcome> = None;
        for &threads in thread_counts {
            let outcome = run_point(cluster, ticks, threads);
            assert_eq!(outcome.epochs, ticks, "one epoch per window");
            if let Some(base) = &baseline {
                // Bit-determinism across thread counts is the engine's
                // core guarantee — a speedup that changes results is a bug,
                // not a win.
                if outcome.sampling_ops != base.sampling_ops || outcome.alerts != base.alerts {
                    eprintln!(
                        "FAIL: {vms} VMs at {threads} threads diverged: \
                         {} ops / {} alerts vs {} / {}",
                        outcome.sampling_ops, outcome.alerts, base.sampling_ops, base.alerts
                    );
                    failed = true;
                }
            }
            let base_elapsed = baseline.as_ref().map_or(outcome.elapsed_s, |b| b.elapsed_s);
            let speedup = base_elapsed / outcome.elapsed_s.max(f64::EPSILON);
            let vm_windows = vms as f64 * ticks as f64;
            text.push_str(&format!(
                "{:>9} {:>7} {:>7} {:>8.2} {:>11} {:>13.0} {:>7.2}x\n",
                vms,
                ticks,
                threads,
                outcome.elapsed_s,
                outcome.sampling_ops,
                vm_windows / outcome.elapsed_s.max(f64::EPSILON),
                speedup,
            ));
            runs.push(RunRecord {
                threads,
                elapsed_s: outcome.elapsed_s,
                vm_windows_per_s: vm_windows / outcome.elapsed_s.max(f64::EPSILON),
                ticks_per_s: ticks as f64 / outcome.elapsed_s.max(f64::EPSILON),
                sampling_ops: outcome.sampling_ops,
                alerts: outcome.alerts,
                speedup,
            });
            if baseline.is_none() {
                baseline = Some(outcome);
            }
        }
        let speedup_at_8 = runs
            .iter()
            .rev()
            .find(|r| r.threads == 8)
            .map_or(1.0, |r| r.speedup);
        if speedup_at_8 < enforced_min_speedup {
            eprintln!(
                "FAIL: {vms} VMs: 8-thread speedup {speedup_at_8:.2}x below bound \
                 {enforced_min_speedup:.2}x"
            );
            failed = true;
        }
        records.push(PointRecord {
            vms,
            servers,
            vms_per_server,
            shards,
            ticks,
            runs,
            speedup_at_8,
        });
    }

    print!("{text}");
    let report = ScaleReport {
        schema: 1,
        smoke,
        host_parallelism: cores,
        enforced_min_speedup,
        target_speedup_multicore: TARGET_SPEEDUP,
        points: records,
    };
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create output dir");
    std::fs::write(dir.join("scale.txt"), &text).expect("write txt");
    std::fs::write(
        dir.join("scale.json"),
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("write json");

    if failed {
        std::process::exit(1);
    }
    eprintln!("scale bounds hold");
}
