//! Sharded-engine scaling benchmark: 10k → 1M VMs.
//!
//! Runs the adaptive-sampling fleet loop on the sharded simulation
//! engine ([`volley_sim::ShardedEngine`]) at three cluster sizes and a
//! sweep of worker-thread counts, recording throughput (VM-windows
//! simulated per second) and speedup versus single-threaded execution.
//! The per-VM work is the real Volley hot path — one monitor per VM in
//! a struct-of-arrays [`SamplerBank`] over a deterministic synthetic
//! trace — so the numbers measure the engine, not a toy loop. The fleet
//! exchanges no cross-shard messages, so each run uses
//! [`EngineConfig::message_free`]: the whole horizon is one epoch and
//! the barrier never runs mid-simulation.
//!
//! Writes `reproduction/scale.txt` and `reproduction/scale.json`.
//!
//! Gates (exit non-zero when violated):
//!
//! - bit-determinism: sampling-op / alert counts identical at every
//!   thread count;
//! - single-thread throughput above 30M VM-windows/s at every point;
//! - 8-thread speedup of at least `0.7 × min(cores, 8)` — waived only
//!   on single-core hosts, where no speedup is physically possible;
//! - the steady-state tick path performs **zero heap allocations**,
//!   verified by a counting global allocator over a multi-epoch
//!   single-threaded probe run.
//!
//! `--smoke` shrinks the sweep to the 10k-VM point (the gates still
//! apply).

// The counting allocator needs `unsafe impl GlobalAlloc`; the bench
// binary is a separate compilation root, so the library's
// `forbid(unsafe_code)` does not extend here.

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use serde::Serialize;
use volley_core::{AdaptationConfig, SamplerBank};
use volley_sim::{
    ClusterConfig, EngineConfig, EpochCtx, ShardPlan, ShardWorker, ShardedEngine, SimDuration,
    SimTime,
};

/// Heap allocations (`alloc` + `realloc`) since process start.
static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// `ALLOCS` reading at the first handled probe-start tick (first writer
/// wins); `u64::MAX` until the probe run reaches it.
static PROBE_START_ALLOCS: AtomicU64 = AtomicU64::new(u64::MAX);
/// `ALLOCS` reading at the first handled final probe tick.
static PROBE_END_ALLOCS: AtomicU64 = AtomicU64::new(u64::MAX);

/// System allocator wrapper counting every allocation, so the bench can
/// assert the steady-state tick path allocates nothing.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The paper's default network-monitoring window.
const WINDOW_MICROS: u64 = 15_000_000;
/// Alert threshold over the uniform [0, 100) synthetic metric: 1%
/// selectivity, matching the paper's evaluation setup.
const THRESHOLD: f64 = 99.0;
/// Single-thread throughput floor, VM-windows per second (ROADMAP open
/// item 1; the seed engine managed ~13M).
const MIN_SINGLE_THREAD_VM_WINDOWS_PER_S: f64 = 30_000_000.0;
/// Multi-core speedup gate at 8 threads: `0.7 × min(cores, 8)`.
const SPEEDUP_PER_CORE: f64 = 0.7;
/// Steady state is assumed from this tick of the alloc-probe run on:
/// event-queue capacity, lane spares and scratch pools have stabilized.
const PROBE_START_TICK: u64 = 16;

/// Deterministic synthetic metric for `(vm, tick)` from a
/// splitmix-style hash, so no trace storage is needed even at 1M VMs
/// and every thread count sees exactly the same values. Mostly calm
/// (uniform below 60) with ~0.1% spikes above the threshold: samplers
/// genuinely widen their intervals and reset on violations, so the
/// bench exercises the adaptive path rather than degenerating to
/// sample-every-window.
fn metric(vm: u64, tick: u64) -> f64 {
    let mut x = vm
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(tick.wrapping_mul(0xD1B5_4A32_D192_ED03));
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    let u = (x % 10_000) as f64 / 100.0; // uniform [0, 100)
    if u >= 99.9 {
        u // spike above THRESHOLD
    } else {
        // Calm band [25, 30): tight enough (σ ≈ 1.4 against a 99
        // threshold) that the violation-likelihood bound sustains the
        // maximum interval.
        25.0 + u * 0.05
    }
}

/// One shard's slice of the fleet: a struct-of-arrays bank of Volley
/// monitors plus each monitor's next due tick, in parallel arrays
/// walked contiguously every window.
struct FleetSlice {
    first_vm: u64,
    tick_count: u64,
    bank: SamplerBank,
    next_due: Vec<u64>,
    sampling_ops: u64,
    alerts: u64,
    /// When set, record the global allocation counter at the probe
    /// boundary ticks (used by the zero-alloc steady-state gate).
    probe: bool,
}

impl ShardWorker for FleetSlice {
    type Event = u64; // window index
    type Msg = ();

    fn handle(&mut self, ctx: &mut EpochCtx<'_, Self::Event, Self::Msg>, time: SimTime, tick: u64) {
        if self.probe {
            if tick == PROBE_START_TICK {
                let now = ALLOCS.load(Ordering::Relaxed);
                let _ = PROBE_START_ALLOCS.compare_exchange(
                    u64::MAX,
                    now,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
            if tick + 1 == self.tick_count {
                let now = ALLOCS.load(Ordering::Relaxed);
                let _ = PROBE_END_ALLOCS.compare_exchange(
                    u64::MAX,
                    now,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
        }
        for i in 0..self.bank.len() {
            if self.next_due[i] > tick {
                continue;
            }
            let value = metric(self.first_vm + i as u64, tick);
            let outcome = self.bank.observe(i, tick, value);
            self.sampling_ops += 1;
            if outcome.violation {
                self.alerts += 1;
            }
            self.next_due[i] = outcome.next_sample_tick.max(tick + 1);
        }
        if tick + 1 < self.tick_count {
            ctx.schedule(time + SimDuration::from_micros(WINDOW_MICROS), tick + 1);
        }
    }
}

/// One measured run: the full fleet loop at a given thread count.
struct RunOutcome {
    elapsed_s: f64,
    sampling_ops: u64,
    alerts: u64,
    epochs: u64,
}

fn adaptation() -> AdaptationConfig {
    AdaptationConfig::builder()
        .error_allowance(0.01)
        .max_interval(8)
        .patience(5) // reach the max interval within the bench horizon
        .build()
        .expect("valid config")
}

fn run_point(cluster: ClusterConfig, ticks: u64, threads: usize) -> RunOutcome {
    let plan = ShardPlan::by_coordinator_group(cluster);
    // The fleet sends no cross-shard messages, so the whole horizon is
    // one epoch: no mid-run barriers, pure tick throughput.
    let engine = ShardedEngine::new(EngineConfig::message_free(
        threads,
        SimTime::from_micros(ticks.saturating_mul(WINDOW_MICROS)),
    ));
    let config = adaptation();
    let started = Instant::now();
    let (slices, stats) = engine.run(
        &plan,
        0, // samplers draw no engine randomness; the metric hash is the seed
        |shard, ctx| {
            let first_vm = plan
                .vms_of(shard)
                .next()
                .expect("every shard owns at least one VM")
                .0;
            let count = plan.vms_of(shard).count();
            ctx.schedule(SimTime::ZERO, 0);
            let mut bank = SamplerBank::with_capacity(config, count);
            for _ in 0..count {
                bank.push(THRESHOLD);
            }
            FleetSlice {
                first_vm: u64::from(first_vm),
                tick_count: ticks,
                bank,
                next_due: vec![0; count],
                sampling_ops: 0,
                alerts: 0,
                probe: false,
            }
        },
        None,
    );
    RunOutcome {
        elapsed_s: started.elapsed().as_secs_f64(),
        sampling_ops: slices.iter().map(|s| s.sampling_ops).sum(),
        alerts: slices.iter().map(|s| s.alerts).sum(),
        epochs: stats.epochs,
    }
}

/// Runs a small single-threaded fleet with one epoch **per window** (so
/// every epoch crosses the barrier) and measures heap allocations
/// between tick [`PROBE_START_TICK`] and the final tick. Returns the
/// allocation count over that steady-state span — the gate requires 0.
fn run_alloc_probe() -> u64 {
    let cluster = ClusterConfig::new(50, 40, 5); // 2000 VMs, 10 shards
    let ticks = 64u64;
    let plan = ShardPlan::by_coordinator_group(cluster);
    let engine = ShardedEngine::new(EngineConfig {
        threads: 1,
        epoch: SimDuration::from_micros(WINDOW_MICROS),
        horizon: SimTime::from_micros(ticks.saturating_mul(WINDOW_MICROS)),
    });
    let config = adaptation();
    let (_, stats) = engine.run(
        &plan,
        0,
        |shard, ctx| {
            let first_vm = plan
                .vms_of(shard)
                .next()
                .expect("every shard owns at least one VM")
                .0;
            let count = plan.vms_of(shard).count();
            ctx.schedule(SimTime::ZERO, 0);
            let mut bank = SamplerBank::with_capacity(config, count);
            for _ in 0..count {
                bank.push(THRESHOLD);
            }
            FleetSlice {
                first_vm: u64::from(first_vm),
                tick_count: ticks,
                bank,
                next_due: vec![0; count],
                sampling_ops: 0,
                alerts: 0,
                probe: true,
            }
        },
        None,
    );
    assert_eq!(stats.epochs, ticks, "one epoch per window in probe mode");
    let start = PROBE_START_ALLOCS.load(Ordering::Relaxed);
    let end = PROBE_END_ALLOCS.load(Ordering::Relaxed);
    assert!(
        start != u64::MAX && end != u64::MAX,
        "probe ticks were reached"
    );
    end.saturating_sub(start)
}

#[derive(Serialize)]
struct RunRecord {
    threads: usize,
    elapsed_s: f64,
    vm_windows_per_s: f64,
    ticks_per_s: f64,
    sampling_ops: u64,
    alerts: u64,
    speedup: f64,
}

#[derive(Serialize)]
struct PointRecord {
    vms: u64,
    servers: u32,
    vms_per_server: u32,
    shards: u32,
    ticks: u64,
    runs: Vec<RunRecord>,
    single_thread_vm_windows_per_s: f64,
    speedup_at_8: f64,
}

#[derive(Serialize)]
struct ScaleReport {
    schema: u32,
    smoke: bool,
    host_parallelism: usize,
    /// The speedup the gate enforced: `0.7 × min(cores, 8)`, or 0
    /// (waived) on single-core hosts where no speedup is possible.
    enforced_min_speedup: f64,
    /// Single-thread throughput floor (always enforced).
    min_single_thread_vm_windows_per_s: f64,
    /// Heap allocations measured over the steady-state probe span
    /// (gate: must be 0).
    steady_state_allocs: u64,
    points: Vec<PointRecord>,
}

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            if let Some(dir) = it.next() {
                return PathBuf::from(dir);
            }
        }
    }
    PathBuf::from("reproduction")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // (total VMs, ticks): bigger clusters run fewer windows so the full
    // sweep stays tractable; throughput is normalized per VM-window.
    let points: &[(u64, u64)] = if smoke {
        &[(10_000, 400)]
    } else {
        &[(10_000, 400), (100_000, 120), (1_000_000, 40)]
    };
    let thread_counts: &[usize] = if smoke { &[1, 8] } else { &[1, 2, 4, 8] };
    let enforced_min_speedup = if cores >= 2 {
        SPEEDUP_PER_CORE * cores.min(8) as f64
    } else {
        0.0 // waived: a single core cannot parallelize
    };
    eprintln!(
        "scale: smoke={smoke}, host parallelism {cores}, enforced min speedup {enforced_min_speedup:.2}"
    );

    let mut failed = false;

    // Zero-allocation steady-state gate, first: the probe's counter
    // readings must not include the sweep's own setup churn.
    let steady_state_allocs = run_alloc_probe();
    if steady_state_allocs != 0 {
        eprintln!(
            "FAIL: steady-state epochs performed {steady_state_allocs} heap allocations (want 0)"
        );
        failed = true;
    }

    let mut text = format!(
        "sharded engine scaling (adaptive fleet loop, host parallelism {cores})\n\
         gates: single-thread >= {:.0}M vm-windows/s; 8 threads >= 0.7 x min(cores, 8) = {enforced_min_speedup:.2}x\
         {}; steady-state allocations = {steady_state_allocs} (want 0)\n\n\
         {:>9} {:>7} {:>7} {:>8} {:>11} {:>13} {:>8}\n",
        MIN_SINGLE_THREAD_VM_WINDOWS_PER_S / 1e6,
        if enforced_min_speedup == 0.0 {
            " (waived on single-core host)"
        } else {
            ""
        },
        "vms",
        "ticks",
        "threads",
        "secs",
        "ops",
        "vm-windows/s",
        "speedup",
    );
    let mut records = Vec::new();

    for &(vms, ticks) in points {
        let vms_per_server = 40u32;
        let servers = (vms / u64::from(vms_per_server)) as u32;
        let cluster = ClusterConfig::new(servers, vms_per_server, 5);
        let shards = ShardPlan::by_coordinator_group(cluster).shard_count();

        // Untimed warmup: the first run at each size pays the page
        // faults of freshly mapped bank/trace memory, which would be
        // charged entirely to the single-thread baseline. Measure warm
        // runs only.
        let _ = run_point(cluster, ticks, thread_counts[0]);

        let mut runs = Vec::new();
        let mut baseline: Option<RunOutcome> = None;
        for &threads in thread_counts {
            let outcome = run_point(cluster, ticks, threads);
            assert_eq!(outcome.epochs, 1, "message-free fleet runs one epoch");
            if let Some(base) = &baseline {
                // Bit-determinism across thread counts is the engine's
                // core guarantee — a speedup that changes results is a bug,
                // not a win.
                if outcome.sampling_ops != base.sampling_ops || outcome.alerts != base.alerts {
                    eprintln!(
                        "FAIL: {vms} VMs at {threads} threads diverged: \
                         {} ops / {} alerts vs {} / {}",
                        outcome.sampling_ops, outcome.alerts, base.sampling_ops, base.alerts
                    );
                    failed = true;
                }
            }
            let base_elapsed = baseline.as_ref().map_or(outcome.elapsed_s, |b| b.elapsed_s);
            let speedup = base_elapsed / outcome.elapsed_s.max(f64::EPSILON);
            let vm_windows = vms as f64 * ticks as f64;
            text.push_str(&format!(
                "{:>9} {:>7} {:>7} {:>8.2} {:>11} {:>13.0} {:>7.2}x\n",
                vms,
                ticks,
                threads,
                outcome.elapsed_s,
                outcome.sampling_ops,
                vm_windows / outcome.elapsed_s.max(f64::EPSILON),
                speedup,
            ));
            runs.push(RunRecord {
                threads,
                elapsed_s: outcome.elapsed_s,
                vm_windows_per_s: vm_windows / outcome.elapsed_s.max(f64::EPSILON),
                ticks_per_s: ticks as f64 / outcome.elapsed_s.max(f64::EPSILON),
                sampling_ops: outcome.sampling_ops,
                alerts: outcome.alerts,
                speedup,
            });
            if baseline.is_none() {
                baseline = Some(outcome);
            }
        }
        let single_thread_vm_windows_per_s = runs
            .iter()
            .find(|r| r.threads == 1)
            .map_or(0.0, |r| r.vm_windows_per_s);
        if single_thread_vm_windows_per_s < MIN_SINGLE_THREAD_VM_WINDOWS_PER_S {
            eprintln!(
                "FAIL: {vms} VMs: single-thread throughput {:.0} below bound {:.0}",
                single_thread_vm_windows_per_s, MIN_SINGLE_THREAD_VM_WINDOWS_PER_S
            );
            failed = true;
        }
        let speedup_at_8 = runs
            .iter()
            .rev()
            .find(|r| r.threads == 8)
            .map_or(1.0, |r| r.speedup);
        if speedup_at_8 < enforced_min_speedup {
            eprintln!(
                "FAIL: {vms} VMs: 8-thread speedup {speedup_at_8:.2}x below bound \
                 {enforced_min_speedup:.2}x"
            );
            failed = true;
        }
        records.push(PointRecord {
            vms,
            servers,
            vms_per_server,
            shards,
            ticks,
            runs,
            single_thread_vm_windows_per_s,
            speedup_at_8,
        });
    }

    print!("{text}");
    let report = ScaleReport {
        schema: 2,
        smoke,
        host_parallelism: cores,
        enforced_min_speedup,
        min_single_thread_vm_windows_per_s: MIN_SINGLE_THREAD_VM_WINDOWS_PER_S,
        steady_state_allocs,
        points: records,
    };
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create output dir");
    std::fs::write(dir.join("scale.txt"), &text).expect("write txt");
    std::fs::write(
        dir.join("scale.json"),
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("write json");

    if failed {
        std::process::exit(1);
    }
    eprintln!("scale bounds hold");
}
