//! Storage-fault layer benchmark: WAL group-fsync policy throughput and
//! the cost (and correctness) of routing the durability planes through
//! the fault-injectable [`volley_core::vfs`] abstraction.
//!
//! Three measurements:
//!
//! 1. **WAL sync policy sweep** — append throughput under `never`,
//!    `on-snapshot`, `every-8` and `every-1`, the durability/throughput
//!    trade `--wal-sync` exposes. Every policy must replay all records.
//! 2. **VFS passthrough overhead** — the same append workload through
//!    [`StdFs`] and through a *benign* [`FaultFs`] (all rates zero, no
//!    window). A benign plan must inject exactly zero faults.
//! 3. **Degraded-mode soak** — a 20% error-rate plan over the WAL and
//!    the sample store; the breakers must trip, the WAL must keep the
//!    acknowledged prefix replayable, and the store must still seal a
//!    scannable set on a healed filesystem.
//!
//! Writes `reproduction/io_faults.txt` and `.json`. `--smoke` shrinks
//! the workload; exit is non-zero if any correctness gate fails (timing
//! is reported, never gated — CI machines are too noisy for that).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;
use volley_core::vfs::{FaultFs, IoFaultPlan, StdFs, Vfs};
use volley_runtime::checkpoint::{TickOutcome, Wal, WalRecord, WalSyncPolicy};

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            if let Some(dir) = it.next() {
                return PathBuf::from(dir);
            }
        }
    }
    PathBuf::from("reproduction")
}

fn tick_record(tick: u64) -> WalRecord {
    WalRecord::Tick(TickOutcome {
        epoch: 1,
        tick,
        polled: tick.is_multiple_of(7),
        alerted: tick % 50 == 49,
        local_violations: (tick % 3) as u32,
    })
}

/// Appends `records` tick records through `vfs` under `policy`,
/// returning (seconds, records replayed afterwards).
fn run_wal(
    dir: &std::path::Path,
    tag: &str,
    vfs: Arc<dyn Vfs>,
    policy: WalSyncPolicy,
    records: u64,
) -> (f64, u64) {
    let path = dir.join(format!("{tag}.wal"));
    let _ = std::fs::remove_file(&path);
    let mut wal = Wal::create_on(vfs, &path)
        .expect("create wal")
        .with_sync_policy(policy);
    let started = Instant::now();
    for t in 0..records {
        let _ = wal.append(&tick_record(t));
    }
    let secs = started.elapsed().as_secs_f64();
    drop(wal);
    let replay = Wal::replay(&path).expect("replay");
    (secs, replay.records)
}

#[derive(Serialize)]
struct PolicyPoint {
    policy: String,
    append_s: f64,
    records_per_s: f64,
    replayed: u64,
}

#[derive(Serialize)]
struct IoFaultsReport {
    smoke: bool,
    records: u64,
    policies: Vec<PolicyPoint>,
    stdfs_s: f64,
    benign_faultfs_s: f64,
    benign_overhead_ratio: f64,
    benign_faults_injected: u64,
    soak_faults_injected: u64,
    soak_store_trips: u64,
    soak_store_sealed: u64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let records: u64 = if smoke { 20_000 } else { 200_000 };
    eprintln!("io_faults: smoke={smoke}, {records} WAL records per point");

    let dir = std::env::temp_dir().join(format!("volley-io-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let mut failures: Vec<String> = Vec::new();

    // 1. Sync-policy sweep on the plain filesystem.
    let sweep = [
        ("never", WalSyncPolicy::Never),
        ("on-snapshot", WalSyncPolicy::OnSnapshot),
        ("every-8", WalSyncPolicy::EveryN(8)),
        ("every-1", WalSyncPolicy::EveryN(1)),
    ];
    let mut policies = Vec::new();
    for (name, policy) in sweep {
        // every-1 pays a real fsync per record; keep its point affordable.
        let n = if name == "every-1" {
            records / 10
        } else {
            records
        };
        let (secs, replayed) = run_wal(&dir, name, Arc::new(StdFs), policy, n);
        if replayed != n {
            failures.push(format!("policy {name}: replayed {replayed} of {n} records"));
        }
        policies.push(PolicyPoint {
            policy: name.to_string(),
            append_s: secs,
            records_per_s: n as f64 / secs.max(f64::EPSILON),
            replayed,
        });
    }

    // 2. Benign FaultFs vs StdFs on identical workloads.
    let (stdfs_s, _) = run_wal(
        &dir,
        "overhead-stdfs",
        Arc::new(StdFs),
        WalSyncPolicy::EveryN(64),
        records,
    );
    let benign = FaultFs::new(IoFaultPlan::new(7));
    let benign_stats = benign.stats();
    let (benign_s, replayed) = run_wal(
        &dir,
        "overhead-benign",
        Arc::new(benign),
        WalSyncPolicy::EveryN(64),
        records,
    );
    let benign_faults = benign_stats.total();
    if benign_faults != 0 {
        failures.push(format!("benign plan injected {benign_faults} faults"));
    }
    if replayed != records {
        failures.push(format!("benign FaultFs lost records: {replayed}/{records}"));
    }

    // 3. Degraded-mode soak: 20% write errors + 10% torn writes on the
    // WAL and the sample store.
    let soak_plan = IoFaultPlan::new(21)
        .with_error_rate(0.2)
        .with_torn_writes(0.1);
    let wal_fs = FaultFs::new(soak_plan.clone());
    let wal_fault_stats = wal_fs.stats();
    let soak_records = records / 10;
    let (_, soak_replayed) = run_wal(
        &dir,
        "soak",
        Arc::new(wal_fs),
        WalSyncPolicy::EveryN(8),
        soak_records,
    );
    if soak_replayed > soak_records {
        failures.push(format!(
            "soak replay invented records: {soak_replayed}/{soak_records}"
        ));
    }
    let soak_wal = Wal::replay(dir.join("soak.wal")).expect("soak replay");
    let store_fs = FaultFs::new(soak_plan);
    let store_fault_stats = store_fs.stats();
    let store_dir = dir.join("soak-store");
    let mut store = volley_store::Store::open_on(Arc::new(store_fs), &store_dir)
        .expect("open store")
        .with_flush_limits(64, u64::MAX);
    for t in 0..soak_records {
        let _ = store.append(volley_store::Record {
            task: 0,
            monitor: 0,
            kind: volley_store::RecordKind::Sample,
            tick: t,
            value: t as f64,
        });
    }
    let store_trips = store.trips();
    drop(store);
    let healed = volley_store::Store::open(&store_dir).expect("reopen store");
    let sealed = healed
        .scan(&volley_store::ScanRange::all())
        .expect("scan healed store")
        .count() as u64;
    let soak_faults = wal_fault_stats.total() + store_fault_stats.total();
    if soak_faults == 0 {
        failures.push("soak plan injected no faults".to_string());
    }

    let report = IoFaultsReport {
        smoke,
        records,
        policies,
        stdfs_s,
        benign_faultfs_s: benign_s,
        benign_overhead_ratio: benign_s / stdfs_s.max(f64::EPSILON),
        benign_faults_injected: benign_faults,
        soak_faults_injected: soak_faults,
        soak_store_trips: store_trips,
        soak_store_sealed: sealed,
    };
    let mut text = format!(
        "storage-fault layer ({} WAL records per point)\nsync-policy sweep:\n",
        report.records
    );
    for p in &report.policies {
        text.push_str(&format!(
            "  {:<12} {:>10.0} records/s ({} replayed)\n",
            p.policy, p.records_per_s, p.replayed
        ));
    }
    text.push_str(&format!(
        "vfs overhead:   StdFs {:.3} s, benign FaultFs {:.3} s ({:.2}x)\n\
         soak:           {} faults injected, {} store trips, replay {} WAL \
         records, {} store records sealed\n",
        report.stdfs_s,
        report.benign_faultfs_s,
        report.benign_overhead_ratio,
        report.soak_faults_injected,
        report.soak_store_trips,
        soak_wal.records,
        report.soak_store_sealed,
    ));
    print!("{text}");

    #[derive(Serialize)]
    struct Envelope {
        schema: u32,
        command: &'static str,
        report: IoFaultsReport,
    }
    let out = out_dir();
    std::fs::create_dir_all(&out).expect("create output dir");
    std::fs::write(out.join("io_faults.txt"), &text).expect("write txt");
    std::fs::write(
        out.join("io_faults.json"),
        serde_json::to_string_pretty(&Envelope {
            schema: 3,
            command: "io_faults",
            report,
        })
        .expect("serializable"),
    )
    .expect("write json");
    let _ = std::fs::remove_dir_all(&dir);

    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }
    eprintln!("io-fault bounds hold");
}
