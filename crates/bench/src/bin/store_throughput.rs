//! Sample-store throughput benchmark: append rate, scan rate and
//! compression ratio on the volley-traces system-metrics workload.
//!
//! Appends every tick of a [`SystemMetricsGenerator`] fleet into a fresh
//! [`volley_store::Store`], seals it, then scans it back twice. The
//! workload is the store's production shape — monotone ticks per series,
//! AR(1) metric values — so the numbers measure the codec on realistic
//! data, not a degenerate constant stream. Values are quantized to the
//! 2⁻⁷ ≈ 0.01 grid a fixed-point agent encoding ships, which is what the
//! delta-of-delta + XOR codec sees in deployment.
//!
//! Writes `reproduction/store.txt` and `reproduction/store.json` (the
//! schema-3 `{schema, command, report}` envelope).
//!
//! `--smoke` shrinks the workload and exits non-zero if the compression
//! ratio falls below 2× against the 16 B/record raw baseline, or if the
//! two scans disagree (the determinism gate).

use std::path::PathBuf;
use std::time::Instant;

use serde::Serialize;
use volley_store::{Record, RecordKind, ScanRange, Store};
use volley_traces::sysmetrics::SystemMetricsGenerator;

/// Raw cost of one record in a naive tick+value row format (two 8-byte
/// words); the compression ratio is measured against this.
const RAW_RECORD_BYTES: u64 = 16;
/// Smoke-mode floor on the compression ratio.
const MIN_RATIO: f64 = 2.0;
/// Fixed-point quantization grid (2⁻⁷ ≈ 0.01): agents report metrics at
/// finite precision, and an exact power of two keeps the rounding
/// lossless in binary.
const QUANT: f64 = 128.0;

#[derive(Serialize)]
struct StoreBenchReport {
    smoke: bool,
    monitors: usize,
    ticks: usize,
    records: u64,
    raw_bytes: u64,
    stored_bytes: u64,
    compression_ratio: f64,
    segments: usize,
    append_s: f64,
    append_mb_per_s: f64,
    scan_s: f64,
    scan_mb_per_s: f64,
    scans_identical: bool,
    min_ratio_enforced: f64,
}

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            if let Some(dir) = it.next() {
                return PathBuf::from(dir);
            }
        }
    }
    PathBuf::from("reproduction")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (monitors, ticks) = if smoke { (4, 4_000) } else { (8, 20_000) };
    eprintln!("store_throughput: smoke={smoke}, {monitors} monitors x {ticks} ticks");

    let generator = SystemMetricsGenerator::new(20_130_708);
    let traces: Vec<Vec<f64>> = (0..monitors)
        .map(|m| generator.trace(m / 66, m % 66, ticks))
        .collect();

    let dir = std::env::temp_dir().join(format!("volley-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = Store::open(&dir).expect("open store");
    let records = (monitors * ticks) as u64;
    let raw_bytes = records * RAW_RECORD_BYTES;

    let started = Instant::now();
    for tick in 0..ticks {
        for (monitor, trace) in traces.iter().enumerate() {
            store
                .append(Record {
                    task: 0,
                    monitor: monitor as u32,
                    kind: RecordKind::Sample,
                    tick: tick as u64,
                    value: (trace[tick] * QUANT).round() / QUANT,
                })
                .expect("append");
        }
    }
    store.flush().expect("flush");
    let append_s = started.elapsed().as_secs_f64();

    let segments = store.segments().expect("list segments");
    let stored_bytes: u64 = segments
        .iter()
        .map(|(_, path)| std::fs::metadata(path).expect("segment metadata").len())
        .sum();

    let scan_once = || -> Vec<Record> {
        store
            .scan(&ScanRange::all())
            .expect("scan")
            .collect::<Vec<_>>()
    };
    let started = Instant::now();
    let first = scan_once();
    let scan_s = started.elapsed().as_secs_f64();
    let second = scan_once();
    let scans_identical = first == second;

    let mut failures = Vec::new();
    if first.len() as u64 != records {
        failures.push(format!(
            "scan returned {} records, appended {records}",
            first.len()
        ));
    }
    if !scans_identical {
        failures.push("two scans of the sealed store disagree".to_string());
    }
    let compression_ratio = raw_bytes as f64 / stored_bytes.max(1) as f64;
    if smoke && compression_ratio < MIN_RATIO {
        failures.push(format!(
            "compression ratio {compression_ratio:.2}x below the {MIN_RATIO}x bound"
        ));
    }

    let report = StoreBenchReport {
        smoke,
        monitors,
        ticks,
        records,
        raw_bytes,
        stored_bytes,
        compression_ratio,
        segments: segments.len(),
        append_s,
        append_mb_per_s: raw_bytes as f64 / 1e6 / append_s.max(f64::EPSILON),
        scan_s,
        scan_mb_per_s: raw_bytes as f64 / 1e6 / scan_s.max(f64::EPSILON),
        scans_identical,
        min_ratio_enforced: if smoke { MIN_RATIO } else { 0.0 },
    };
    let text = format!(
        "sample-store throughput (sysmetrics workload, {} monitors x {} ticks)\n\
         records:      {}\n\
         raw bytes:    {} ({} B/record)\n\
         stored bytes: {} across {} segments\n\
         compression:  {:.2}x (smoke gate: >= {MIN_RATIO}x)\n\
         append:       {:.3} s ({:.1} MB/s raw)\n\
         scan:         {:.3} s ({:.1} MB/s raw), two scans identical: {}\n",
        report.monitors,
        report.ticks,
        report.records,
        report.raw_bytes,
        RAW_RECORD_BYTES,
        report.stored_bytes,
        report.segments,
        report.compression_ratio,
        report.append_s,
        report.append_mb_per_s,
        report.scan_s,
        report.scan_mb_per_s,
        report.scans_identical,
    );
    print!("{text}");

    #[derive(Serialize)]
    struct Envelope {
        schema: u32,
        command: &'static str,
        report: StoreBenchReport,
    }
    let out = out_dir();
    std::fs::create_dir_all(&out).expect("create output dir");
    std::fs::write(out.join("store.txt"), &text).expect("write txt");
    std::fs::write(
        out.join("store.json"),
        serde_json::to_string_pretty(&Envelope {
            schema: 3,
            command: "store_throughput",
            report,
        })
        .expect("serializable"),
    )
    .expect("write json");
    let _ = std::fs::remove_dir_all(&dir);

    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }
    eprintln!("store bounds hold");
}
