//! Figure 5(a): network-level monitoring — ratio of sampling operations
//! performed by Volley over periodic sampling, swept over the error
//! allowance (rows) and alert selectivity `k` (columns).
//!
//! Paper shape to reproduce: 40–90% cost reduction; larger allowances and
//! smaller `k` (higher thresholds) both reduce cost.

use volley_bench::experiments::sampling_ratio_matrix;
use volley_bench::params::{SweepParams, ERR_SWEEP, SELECTIVITY_SWEEP};
use volley_bench::report::print_matrix;
use volley_bench::workloads::TraceFamily;

fn main() {
    let params = SweepParams::from_args(std::env::args().skip(1));
    eprintln!("fig5a: {params:?}");
    let matrix = sampling_ratio_matrix(
        TraceFamily::Network,
        &ERR_SWEEP,
        &SELECTIVITY_SWEEP,
        &params,
    );
    print_matrix(&matrix);
}
