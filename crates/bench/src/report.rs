//! Plain-text result tables.
//!
//! Every figure binary prints an aligned matrix — rows and columns
//! labelled with the swept parameters — so the output can be compared
//! against the paper's chart by eye and parsed by scripts (cells are
//! whitespace-separated).

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A labelled numeric matrix (rows × columns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Title printed above the table.
    pub title: String,
    /// Label of the row dimension.
    pub row_label: String,
    /// Row header values.
    pub rows: Vec<String>,
    /// Column header values.
    pub cols: Vec<String>,
    /// `values[row][col]`.
    pub values: Vec<Vec<f64>>,
}

impl Matrix {
    /// Creates a matrix, validating the shape.
    ///
    /// # Panics
    ///
    /// Panics when `values` is not `rows.len() × cols.len()` — harness
    /// construction bugs should fail loudly.
    pub fn new(
        title: impl Into<String>,
        row_label: impl Into<String>,
        rows: Vec<String>,
        cols: Vec<String>,
        values: Vec<Vec<f64>>,
    ) -> Self {
        assert_eq!(values.len(), rows.len(), "row count mismatch");
        for row in &values {
            assert_eq!(row.len(), cols.len(), "column count mismatch");
        }
        Matrix {
            title: title.into(),
            row_label: row_label.into(),
            rows,
            cols,
            values,
        }
    }

    /// Renders the matrix as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let width = 10usize;
        let row_header_width = self
            .row_label
            .len()
            .max(self.rows.iter().map(String::len).max().unwrap_or(0))
            + 2;
        let _ = write!(out, "{:<row_header_width$}", self.row_label);
        for c in &self.cols {
            let _ = write!(out, "{c:>width$}");
        }
        let _ = writeln!(out);
        for (r, row) in self.rows.iter().zip(&self.values) {
            let _ = write!(out, "{r:<row_header_width$}");
            for v in row {
                let _ = write!(out, "{v:>width$.4}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Serializes to pretty JSON (for machine consumption alongside the
    /// text table).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("matrices serialize")
    }
}

/// Prints a matrix table to stdout (text, then a blank line).
pub fn print_matrix(matrix: &Matrix) {
    println!("{}", matrix.render());
}

/// Formats labels like `0.2%` for selectivity columns.
pub fn percent_label(value: f64) -> String {
    format!("{value}%")
}

/// Formats error-allowance row labels.
pub fn err_label(value: f64) -> String {
    format!("{value}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::new(
            "demo",
            "err",
            vec!["0.002".into(), "0.004".into()],
            vec!["k=1".into(), "k=2".into()],
            vec![vec![0.5, 0.25], vec![0.4, 0.2]],
        )
    }

    #[test]
    fn render_contains_all_cells() {
        let text = sample().render();
        assert!(text.contains("# demo"));
        assert!(text.contains("0.002"));
        assert!(text.contains("k=2"));
        assert!(text.contains("0.2500"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn render_is_aligned() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().skip(1).collect();
        let lens: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "lines {lens:?}");
    }

    #[test]
    fn json_round_trip() {
        let m = sample();
        let back: Matrix = serde_json::from_str(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn shape_validation_rows() {
        Matrix::new("x", "r", vec!["a".into()], vec!["c".into()], vec![]);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn shape_validation_cols() {
        Matrix::new(
            "x",
            "r",
            vec!["a".into()],
            vec!["c".into()],
            vec![vec![1.0, 2.0]],
        );
    }

    #[test]
    fn labels() {
        assert_eq!(percent_label(0.4), "0.4%");
        assert_eq!(err_label(0.002), "0.002");
    }
}
