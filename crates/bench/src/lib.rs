//! # volley-bench
//!
//! The experiment harness regenerating **every figure** of the Volley
//! paper's evaluation (§V), plus the ablations called out in `DESIGN.md`.
//! Each figure has a dedicated binary:
//!
//! | Binary | Paper item | What it prints |
//! |---|---|---|
//! | `fig1` | Figure 1 | motivating example: periodic fast/slow vs dynamic sampling on a DDoS trace |
//! | `fig5a` | Figure 5(a) | network monitoring: sampling ratio vs `err` × selectivity `k` |
//! | `fig5b` | Figure 5(b) | system monitoring: same sweep |
//! | `fig5c` | Figure 5(c) | application monitoring: same sweep |
//! | `fig6` | Figure 6 | Dom0 CPU utilization distribution vs `err` (box-plot stats) |
//! | `fig7` | Figure 7 | actual mis-detection rate vs `err` × `k` |
//! | `fig8` | Figure 8 | adaptive vs even allowance allocation vs Zipf skew |
//! | `runtime_e2e` | §V-A prototype | threaded runtime vs reference implementation parity + cost |
//! | `correlation` | §II-B | state-correlation gating: cost/accuracy with and without the plan |
//! | `ablation_gamma_p` | §III-B | slack ratio `γ` and patience `p` sweep |
//! | `ablation_yield` | §IV-B | yield/allowance-cost formula variants |
//! | `ablation_bound` | §III-A | Chebyshev bound tightness vs empirical mis-detection |
//!
//! Run any of them with
//! `cargo run -p volley-bench --release --bin <name> [-- --quick]`.
//!
//! The library half of the crate holds the shared experiment machinery so
//! the binaries, the integration tests and the Criterion micro-benches
//! all drive identical code paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod params;
pub mod report;
pub mod workloads;

pub use experiments::{sweep_misdetection, sweep_sampling_ratio, SweepResult};
pub use params::{SweepParams, ERR_SWEEP, SELECTIVITY_SWEEP};
pub use report::{print_matrix, Matrix};
pub use workloads::{TraceFamily, WorkloadSet};
