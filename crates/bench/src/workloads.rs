//! Canonical per-figure workloads: one trace set per monitoring family.

use serde::{Deserialize, Serialize};

use volley_traces::http::HttpWorkloadConfig;
use volley_traces::netflow::NetflowConfig;
use volley_traces::sysmetrics::SystemMetricsGenerator;
use volley_traces::DiurnalPattern;

use crate::params::SweepParams;

/// The three monitoring families of the evaluation (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceFamily {
    /// DDoS traffic-difference monitoring (15-second windows).
    Network,
    /// OS metric monitoring (5-second samples).
    System,
    /// Per-object access-rate monitoring (1-second samples).
    Application,
}

impl TraceFamily {
    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            TraceFamily::Network => "network",
            TraceFamily::System => "system",
            TraceFamily::Application => "application",
        }
    }

    /// The family's default sampling interval in seconds (§V-A).
    pub fn default_interval_secs(self) -> f64 {
        match self {
            TraceFamily::Network => 15.0,
            TraceFamily::System => 5.0,
            TraceFamily::Application => 1.0,
        }
    }
}

/// A set of per-task monitored-value traces for one family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSet {
    family: TraceFamily,
    traces: Vec<Vec<f64>>,
}

impl WorkloadSet {
    /// Generates the canonical workload of `family` under `params`: one
    /// trace per task, `params.ticks` values each.
    pub fn generate(family: TraceFamily, params: &SweepParams) -> Self {
        let traces = match family {
            TraceFamily::Network => {
                // One ρ series per VM; the diurnal period is scaled so a
                // run always covers at least one full day/night cycle.
                let config = NetflowConfig::builder()
                    .seed(params.seed)
                    .vms(params.tasks)
                    .diurnal(DiurnalPattern::new((params.ticks as u64).min(5760), 0.4))
                    .build();
                config
                    .generate(params.ticks)
                    .into_iter()
                    .map(|t| t.rho)
                    .collect()
            }
            TraceFamily::System => {
                // One metric per task, cycling through the 66-metric
                // catalog across VMs.
                let gen = SystemMetricsGenerator::new(params.seed)
                    .with_diurnal_period((params.ticks as u64).min(17_280));
                (0..params.tasks)
                    .map(|i| gen.trace(i / 66, i % 66, params.ticks))
                    .collect()
            }
            TraceFamily::Application => {
                // One object-access-rate series per task. The aggregate
                // request rate scales with the object count so every
                // object carries WorldCup-scale traffic (the paper's
                // trace has >1 billion requests over 30 servers).
                let config = HttpWorkloadConfig::builder()
                    .seed(params.seed)
                    .objects(params.tasks)
                    .requests_per_tick(1000.0 * params.tasks as f64)
                    .flash_crowd_magnitude(2000.0)
                    .diurnal(DiurnalPattern::new((params.ticks as u64).min(86_400), 0.6))
                    .flash_crowd_duration((params.ticks as u64 / 20).max(10))
                    .build();
                let workload = config.generate(params.ticks);
                (0..params.tasks)
                    .map(|o| workload.object_rate(o).to_vec())
                    .collect()
            }
        };
        WorkloadSet { family, traces }
    }

    /// The family this set belongs to.
    pub fn family(&self) -> TraceFamily {
        self.family
    }

    /// The per-task traces.
    pub fn traces(&self) -> &[Vec<f64>] {
        &self.traces
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the set is empty (never true for generated sets).
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SweepParams {
        SweepParams {
            ticks: 300,
            tasks: 4,
            ..SweepParams::quick()
        }
    }

    #[test]
    fn generates_requested_shape() {
        for family in [
            TraceFamily::Network,
            TraceFamily::System,
            TraceFamily::Application,
        ] {
            let set = WorkloadSet::generate(family, &quick());
            assert_eq!(set.len(), 4, "{}", family.name());
            assert!(set.traces().iter().all(|t| t.len() == 300));
            assert!(!set.is_empty());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = WorkloadSet::generate(TraceFamily::System, &quick());
        let b = WorkloadSet::generate(TraceFamily::System, &quick());
        assert_eq!(a, b);
        let mut other = quick();
        other.seed += 1;
        let c = WorkloadSet::generate(TraceFamily::System, &other);
        assert_ne!(a, c);
    }

    #[test]
    fn family_metadata() {
        assert_eq!(TraceFamily::Network.default_interval_secs(), 15.0);
        assert_eq!(TraceFamily::System.default_interval_secs(), 5.0);
        assert_eq!(TraceFamily::Application.default_interval_secs(), 1.0);
        assert_eq!(TraceFamily::Application.name(), "application");
    }

    #[test]
    fn traces_contain_finite_values() {
        for family in [
            TraceFamily::Network,
            TraceFamily::System,
            TraceFamily::Application,
        ] {
            let set = WorkloadSet::generate(family, &quick());
            assert!(set.traces().iter().flatten().all(|v| v.is_finite()));
        }
    }
}
