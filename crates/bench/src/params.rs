//! Canonical experiment parameters shared by all figure binaries.
//!
//! The paper sweeps the error allowance over a doubling ladder (Figure 6's
//! x-axis prints 0.002 … 0.032) and the alert selectivity `k` over
//! 0.1% … 6.4% (§V-B: "varying k from 6.4% to 0.1% can lead to 40% cost
//! reduction"). These constants pin the same grids for every harness.

use serde::{Deserialize, Serialize};

/// The error-allowance ladder (Figure 6 x-axis).
pub const ERR_SWEEP: [f64; 5] = [0.002, 0.004, 0.008, 0.016, 0.032];

/// The selectivity ladder in percent (Figure 5 series).
pub const SELECTIVITY_SWEEP: [f64; 7] = [0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4];

/// Size knobs of a figure run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepParams {
    /// Trace length in default sampling intervals.
    pub ticks: usize,
    /// Number of independent tasks (VMs / metrics / objects) averaged per
    /// cell.
    pub tasks: usize,
    /// Base random seed.
    pub seed: u64,
    /// Maximum sampling interval `I_m`.
    pub max_interval: u32,
    /// Adaptation patience `p` (paper default 20).
    pub patience: u32,
}

impl SweepParams {
    /// Full-size run: a day of traces over 40 tasks (the per-server VM
    /// count of the paper's testbed).
    pub fn full() -> Self {
        SweepParams {
            ticks: 5760,
            tasks: 40,
            seed: 20130708,
            max_interval: 16,
            patience: 20,
        }
    }

    /// A fast smoke-test configuration for CI and `--quick` runs.
    pub fn quick() -> Self {
        SweepParams {
            ticks: 1500,
            tasks: 8,
            seed: 20130708,
            max_interval: 16,
            patience: 10,
        }
    }

    /// Parses `--quick` (and optional `--ticks N`, `--tasks N`,
    /// `--seed N`, `--max-interval N`) from command-line arguments,
    /// defaulting to [`SweepParams::full`].
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let args: Vec<String> = args.into_iter().collect();
        let mut params = if args.iter().any(|a| a == "--quick") {
            SweepParams::quick()
        } else {
            SweepParams::full()
        };
        fn parse_next<T: std::str::FromStr>(it: &mut std::slice::Iter<String>) -> Option<T> {
            it.next().and_then(|v| v.parse().ok())
        }
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--ticks" => {
                    if let Some(v) = parse_next(&mut it) {
                        params.ticks = v;
                    }
                }
                "--tasks" => {
                    if let Some(v) = parse_next(&mut it) {
                        params.tasks = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = parse_next(&mut it) {
                        params.seed = v;
                    }
                }
                "--max-interval" => {
                    if let Some(v) = parse_next(&mut it) {
                        params.max_interval = v;
                    }
                }
                _ => {}
            }
        }
        params.ticks = params.ticks.max(10);
        params.tasks = params.tasks.max(1);
        params.max_interval = params.max_interval.max(1);
        params
    }
}

impl Default for SweepParams {
    fn default() -> Self {
        SweepParams::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_to_full() {
        let p = SweepParams::from_args(args(&[]));
        assert_eq!(p, SweepParams::full());
    }

    #[test]
    fn quick_flag_switches_profile() {
        let p = SweepParams::from_args(args(&["--quick"]));
        assert_eq!(p, SweepParams::quick());
    }

    #[test]
    fn explicit_overrides_apply() {
        let p = SweepParams::from_args(args(&[
            "--quick", "--ticks", "777", "--tasks", "3", "--seed", "5",
        ]));
        assert_eq!(p.ticks, 777);
        assert_eq!(p.tasks, 3);
        assert_eq!(p.seed, 5);
    }

    #[test]
    fn malformed_values_are_ignored() {
        let p = SweepParams::from_args(args(&["--ticks", "abc"]));
        assert_eq!(p.ticks, SweepParams::full().ticks);
    }

    #[test]
    fn max_interval_flag_parses() {
        let p = SweepParams::from_args(args(&["--max-interval", "64"]));
        assert_eq!(p.max_interval, 64);
        let floor = SweepParams::from_args(args(&["--max-interval", "0"]));
        assert_eq!(floor.max_interval, 1);
    }

    #[test]
    fn floors_enforced() {
        let p = SweepParams::from_args(args(&["--ticks", "1", "--tasks", "0"]));
        assert_eq!(p.ticks, 10);
        assert_eq!(p.tasks, 1);
    }

    #[test]
    fn sweeps_are_doubling_ladders() {
        for w in ERR_SWEEP.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-12);
        }
        for w in SELECTIVITY_SWEEP.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-12);
        }
    }
}
