//! # volley-analyze
//!
//! Offline analysis jobs over [`volley_store`] recordings.
//!
//! The store gives every sampled value, alert and interval change back as
//! one globally ordered, merged scan ([`Store::scan`]); this crate turns
//! that scan into *analysis jobs* — bounded-memory streaming folds that
//! read the history exactly once and produce a small, deterministic
//! result. The contract every job signs:
//!
//! - **Single-pass IO.** A job declares one [`ScanRange`] and the
//!   framework ([`run_job`]) performs the one scan; jobs never touch the
//!   store directly, so a job's IO cost is exactly one merged pass over
//!   the matching segments.
//! - **Bounded memory.** A job's state must be bounded by its
//!   configuration (task counts, caps, `K`), never by the number of
//!   records scanned. Jobs that bound by *dropping* must say so in their
//!   output (see [`CorrelationMatrix::truncated_tasks`]) — silent
//!   truncation reads as full coverage.
//! - **Determinism.** Scans yield records in `(task, monitor, kind,
//!   tick)` order with ties broken by segment sequence, and jobs fold
//!   with deterministic arithmetic — the same store directory produces
//!   byte-identical output on every run, regardless of where segment
//!   boundaries fell.
//!
//! The first job is [`CorrelationMatrixJob`] (`correlation_matrix_v1`):
//! top-K pairwise violation correlation across all recorded tasks, the
//! offline half of the paper's §II.B multi-task scheme. It surfaces as
//! `volley analyze correlate` on the CLI.
//!
//! [`Store::scan`]: volley_store::Store::scan

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation;

pub use correlation::{
    CorrelatedPair, CorrelationMatrix, CorrelationMatrixConfig, CorrelationMatrixJob,
};

use std::io;

use volley_store::{Record, ScanRange, Store};

/// A bounded-memory, single-pass analysis job (see the [crate
/// docs](crate) for the full contract).
///
/// The framework drives the lifecycle: [`range`](Job::range) declares
/// the one scan the job consumes, [`observe`](Job::observe) folds each
/// record in global scan order, and [`finish`](Job::finish) seals the
/// fold into the job's output.
pub trait Job {
    /// The job's result type.
    type Output;

    /// Stable job identifier, versioned (e.g. `correlation_matrix_v1`):
    /// bump the suffix when the output semantics change.
    fn name(&self) -> &'static str;

    /// The single scan this job consumes.
    fn range(&self) -> ScanRange;

    /// Folds one record. Called in `(task, monitor, kind, tick)` order.
    fn observe(&mut self, record: &Record);

    /// Seals the job into its output.
    fn finish(self) -> Self::Output;
}

/// A finished job run: the output plus the framework's IO accounting.
/// (Serialization happens on the concrete output — the vendored serde
/// derive does not cover generics.)
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport<T> {
    /// The job's versioned name.
    pub job: String,
    /// Records the single pass streamed through the job.
    pub records_scanned: u64,
    /// The job's output.
    pub output: T,
}

/// Runs `job` over `store` in one streaming pass.
///
/// This is the framework's only IO path: it opens the job's declared
/// scan once and folds every matching record through the job, so a job
/// run costs exactly one merged pass over the store — however many
/// segments (or however much corruption-truncated tail) the directory
/// holds.
///
/// # Errors
///
/// Propagates scan I/O errors (unreadable segment files). Corrupt or
/// truncated segment *content* is not an error: the store's never-panic
/// recovery yields the decodable prefix and the job folds what survives.
pub fn run_job<J: Job>(store: &Store, mut job: J) -> io::Result<JobReport<J::Output>> {
    let name = job.name().to_string();
    let range = job.range();
    let mut records_scanned = 0u64;
    for record in store.scan(&range)? {
        job.observe(&record);
        records_scanned += 1;
    }
    Ok(JobReport {
        job: name,
        records_scanned,
        output: job.finish(),
    })
}
