//! `correlation_matrix_v1`: top-K pairwise violation correlation.
//!
//! The offline half of the paper's §II.B multi-task scheme: given a
//! store holding many tasks' recorded [`Alert`] histories, find the task
//! pairs whose violations cascade — a *leader* task whose alerts
//! precede a *follower* task's within a small lag window — and rank
//! them by necessity confidence `P(leader alerted within lag |
//! follower alerts)`. The top pairs are exactly the candidates for the
//! online gating plan (`MultiTaskRunner`): followers whose violations
//! are near-certainly preceded by a leader's can be paced coarsely
//! while that leader is calm.
//!
//! # Bounds
//!
//! The job never materializes the `tasks × tasks` matrix. Its state is
//!
//! - one capped alert-tick list per recorded task
//!   ([`CorrelationMatrixConfig::max_alerts_per_task`], surplus counted,
//!   not stored), and
//! - one K-bounded min-heap of the best pairs seen so far,
//!
//! so memory is `O(tasks · cap + K)` while IO is the framework's single
//! streaming pass. Pair scoring at [`finish`](crate::Job::finish) runs
//! each ordered pair once with a two-pointer merge over the two sorted
//! tick lists — `O(tasks² · cap)` time, no per-pair allocation beyond
//! the heap.
//!
//! [`Alert`]: RecordKind::Alert

use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BinaryHeap};

use serde::Serialize;
use volley_core::Tick;
use volley_store::{Record, RecordKind, ScanRange};

use crate::Job;

/// Configuration for [`CorrelationMatrixJob`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CorrelationMatrixConfig {
    /// Best pairs to keep (the heap bound).
    pub top_k: usize,
    /// How many ticks before a follower alert a leader alert may land
    /// and still count as preceding it (`0` = same tick only).
    pub lag_window: u32,
    /// Minimum follower alerts for a pair to qualify — confidence over
    /// one or two alerts is noise.
    pub min_support: u64,
    /// First tick considered (inclusive).
    pub from: Tick,
    /// Last tick considered (inclusive).
    pub to: Tick,
    /// Alert ticks retained per task; history beyond the cap is counted
    /// ([`CorrelationMatrix::truncated_tasks`]) but not correlated.
    pub max_alerts_per_task: usize,
}

impl Default for CorrelationMatrixConfig {
    fn default() -> Self {
        CorrelationMatrixConfig {
            top_k: 10,
            lag_window: 2,
            min_support: 3,
            from: 0,
            to: Tick::MAX,
            max_alerts_per_task: 65_536,
        }
    }
}

/// One ranked pair of the output: `leader`'s alerts precede
/// `follower`'s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CorrelatedPair {
    /// The task whose alerts come first.
    pub leader: u32,
    /// The task whose alerts follow within the lag window.
    pub follower: u32,
    /// `P(leader alerted within lag | follower alerts)` — the §II.B
    /// necessity confidence, over the retained history.
    pub confidence: f64,
    /// Follower alerts considered (the confidence denominator).
    pub support: u64,
    /// Follower alerts with a leader alert inside the lag window (the
    /// numerator).
    pub joint: u64,
    /// Leader alerts considered.
    pub leader_alerts: u64,
}

impl CorrelatedPair {
    /// Rank order: confidence, then joint count, then smaller task ids —
    /// total and deterministic (confidence is never NaN).
    fn rank_key(&self) -> (u64, u64, Reverse<u32>, Reverse<u32>) {
        // Confidence is in [0, 1]; IEEE bit patterns of non-negative
        // floats order like the floats themselves.
        (
            self.confidence.to_bits(),
            self.joint,
            Reverse(self.leader),
            Reverse(self.follower),
        )
    }
}

/// Heap entry ordered by [`CorrelatedPair::rank_key`] alone.
#[derive(Debug)]
struct Ranked(CorrelatedPair);

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        self.0.rank_key() == other.0.rank_key()
    }
}

impl Eq for Ranked {}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.rank_key().cmp(&other.0.rank_key())
    }
}

/// The job's output: the top-K cascade pairs plus coverage accounting.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CorrelationMatrix {
    /// Tasks with at least one alert in range.
    pub tasks: u32,
    /// Alert records in range across all tasks.
    pub alerts: u64,
    /// Tasks whose alert history overflowed the per-task cap — their
    /// pairs were scored on the retained prefix only.
    pub truncated_tasks: u32,
    /// Ordered pairs that met the support floor (the matrix's sparse
    /// size; at most `top_k` of these are returned).
    pub qualifying_pairs: u64,
    /// The best pairs, rank order (best first).
    pub pairs: Vec<CorrelatedPair>,
}

/// Per-task fold state: the capped, scan-ordered alert tick list.
#[derive(Debug, Default)]
struct TaskAlerts {
    ticks: Vec<Tick>,
    total: u64,
}

/// The `correlation_matrix_v1` job. See the [module docs](self).
#[derive(Debug)]
pub struct CorrelationMatrixJob {
    config: CorrelationMatrixConfig,
    /// Keyed by task id; `BTreeMap` keeps pair enumeration (and thus
    /// tie-breaking) in deterministic task order.
    tasks: BTreeMap<u32, TaskAlerts>,
}

impl CorrelationMatrixJob {
    /// Creates the job. Zero `top_k` / `max_alerts_per_task` are clamped
    /// to 1, a zero support floor to 1.
    pub fn new(config: CorrelationMatrixConfig) -> Self {
        CorrelationMatrixJob {
            config: CorrelationMatrixConfig {
                top_k: config.top_k.max(1),
                min_support: config.min_support.max(1),
                max_alerts_per_task: config.max_alerts_per_task.max(1),
                ..config
            },
            tasks: BTreeMap::new(),
        }
    }

    /// The (normalized) configuration the job runs under.
    pub fn config(&self) -> &CorrelationMatrixConfig {
        &self.config
    }
}

impl Job for CorrelationMatrixJob {
    type Output = CorrelationMatrix;

    fn name(&self) -> &'static str {
        "correlation_matrix_v1"
    }

    fn range(&self) -> ScanRange {
        ScanRange::all()
            .kind(RecordKind::Alert)
            .from(self.config.from)
            .to(self.config.to)
    }

    fn observe(&mut self, record: &Record) {
        debug_assert_eq!(record.kind, RecordKind::Alert);
        let task = self.tasks.entry(record.task).or_default();
        task.total += 1;
        if task.ticks.len() < self.config.max_alerts_per_task {
            // Scan order is tick-ascending within a series, so the list
            // stays sorted for the two-pointer pass without a sort.
            task.ticks.push(record.tick);
        }
    }

    fn finish(self) -> CorrelationMatrix {
        let mut alerts = 0;
        let mut truncated_tasks = 0;
        for task in self.tasks.values() {
            alerts += task.total;
            if task.total > task.ticks.len() as u64 {
                truncated_tasks += 1;
            }
        }
        let mut qualifying_pairs = 0;
        let mut heap: BinaryHeap<Reverse<Ranked>> = BinaryHeap::new();
        for (&leader, leader_alerts) in &self.tasks {
            for (&follower, follower_alerts) in &self.tasks {
                if leader == follower {
                    continue;
                }
                let support = follower_alerts.ticks.len() as u64;
                if support < self.config.min_support {
                    continue;
                }
                let joint = preceded_within(
                    &leader_alerts.ticks,
                    &follower_alerts.ticks,
                    u64::from(self.config.lag_window),
                );
                qualifying_pairs += 1;
                let pair = CorrelatedPair {
                    leader,
                    follower,
                    confidence: joint as f64 / support as f64,
                    support,
                    joint,
                    leader_alerts: leader_alerts.ticks.len() as u64,
                };
                // K-bounded min-heap: push, then drop the worst.
                heap.push(Reverse(Ranked(pair)));
                if heap.len() > self.config.top_k {
                    heap.pop();
                }
            }
        }
        let mut pairs: Vec<CorrelatedPair> = heap.into_iter().map(|Reverse(Ranked(p))| p).collect();
        pairs.sort_by_key(|pair| Reverse(pair.rank_key()));
        CorrelationMatrix {
            tasks: self.tasks.len() as u32,
            alerts,
            truncated_tasks,
            qualifying_pairs,
            pairs,
        }
    }
}

/// How many of `followers`' ticks have a tick of `leaders` inside
/// `[t - lag, t]`. Both slices are sorted ascending; one two-pointer
/// merge, O(|leaders| + |followers|).
fn preceded_within(leaders: &[Tick], followers: &[Tick], lag: u64) -> u64 {
    let mut joint = 0;
    let mut next = 0; // first leader tick strictly after the follower tick
    for &tick in followers {
        while next < leaders.len() && leaders[next] <= tick {
            next += 1;
        }
        if next > 0 && leaders[next - 1] >= tick.saturating_sub(lag) {
            joint += 1;
        }
    }
    joint
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair_of(leaders: &[Tick], followers: &[Tick], lag: u64) -> u64 {
        preceded_within(leaders, followers, lag)
    }

    #[test]
    fn two_pointer_counts_lag_window_hits() {
        // 12 sees 10 (lag 2 exactly); 13 does not (10 < 11); 52 sees 50.
        assert_eq!(pair_of(&[10, 50], &[12, 13, 52, 90], 2), 2);
        assert_eq!(pair_of(&[10], &[12], 1), 0, "outside the window");
        assert_eq!(pair_of(&[10], &[10], 0), 1, "same tick counts");
        assert_eq!(pair_of(&[], &[1, 2, 3], 5), 0);
        assert_eq!(pair_of(&[1, 2, 3], &[], 5), 0);
    }

    #[test]
    fn window_is_backward_looking_only() {
        // Leader alert *after* the follower's never counts.
        assert_eq!(pair_of(&[13], &[12], 5), 0);
    }

    #[test]
    fn boundary_tick_is_inclusive() {
        assert_eq!(pair_of(&[10], &[12], 2), 1, "t - lag exactly");
        assert_eq!(pair_of(&[9], &[12], 2), 0, "one past the window");
    }
}
