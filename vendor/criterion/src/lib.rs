//! Offline vendored stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! benchmark groups, `bench_function`/`bench_with_input`, `Throughput`,
//! `BenchmarkId`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros — backed by a simple wall-clock timer: a short warm-up, then a
//! fixed measurement window, reporting mean ns/iter to stdout. No
//! statistics, plots or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark name with an attached parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Times closures passed to `iter`.
#[derive(Debug)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly for the measurement window, recording the
    /// total iterations and elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: a few unmeasured iterations.
        for _ in 0..8 {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            // Batch between clock reads to keep timer overhead small.
            for _ in 0..16 {
                black_box(f());
            }
            iters += 16;
            let elapsed = start.elapsed();
            if elapsed >= self.measurement_time {
                self.iters_done = iters;
                self.elapsed = elapsed;
                return;
            }
        }
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(300),
        }
    }
}

fn run_one(name: &str, measurement_time: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        measurement_time,
    };
    f(&mut bencher);
    let ns_per_iter = if bencher.iters_done == 0 {
        0.0
    } else {
        bencher.elapsed.as_nanos() as f64 / bencher.iters_done as f64
    };
    println!(
        "{name:<52} {ns_per_iter:>12.1} ns/iter ({} iters)",
        bencher.iters_done
    );
}

impl Criterion {
    /// Overrides the measurement window for subsequent benchmarks.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.into(), self.measurement_time, &mut f);
        self
    }
}

/// A named group of benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the declared throughput (accepted, not reported).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.criterion.measurement_time, &mut f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.name);
        run_one(&label, self.criterion.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
