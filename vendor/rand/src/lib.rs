//! Offline vendored stand-in for the `rand` crate.
//!
//! Provides a deterministic [`rngs::StdRng`] (xoshiro256++ seeded through
//! SplitMix64) and the [`Rng`]/[`SeedableRng`] trait subset this
//! workspace uses: `gen::<f64>()`, `gen_range(lo..hi)`, `gen_bool` and
//! `next_u64`. Sequences differ from the real crate's StdRng (which is
//! fine — the workspace only relies on *determinism*, not on matching
//! upstream streams).

use std::ops::Range;

/// A source of randomness.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of `T` from its standard distribution
    /// (`f64`/`f32` in `[0, 1)`, integers uniform over their domain).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, like the real crate.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_uniform(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Types samplable from their standard distribution.
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Samples uniformly in `[lo, hi)`.
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Rejection-free modulo with 128-bit multiply-shift
                // (Lemire): bias is negligible for the spans used here.
                let x = rng.next_u64() as u128;
                let r = ((x * span) >> 64) as i128 + lo as i128;
                r as $ty
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let unit: f64 = Standard::sample_standard(rng);
        lo + unit * (hi - lo)
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a deterministic RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds an RNG seeded from ambient entropy (system time here).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0xDEAD_BEEF);
        Self::seed_from_u64(nanos)
    }
}

/// Concrete RNG types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic RNG (xoshiro256++ here).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2n = s2 ^ s0;
            let mut s3n = s3 ^ s1;
            let s1n = s1 ^ s2n;
            let s0n = s0 ^ s3n;
            s2n ^= t;
            s3n = s3n.rotate_left(45);
            self.state = [s0n, s1n, s2n, s3n];
            result
        }
    }
}

/// Commonly used items.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let seq_a: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let seq_c: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn unit_floats_in_range_and_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_spans() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(20u64..80);
            assert!((20..80).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }
}
