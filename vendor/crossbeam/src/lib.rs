//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, implemented over
//! `std::sync::mpsc`. Covers the subset this workspace uses: unbounded
//! channels with blocking, timeout-bounded and non-blocking receives.

/// MPSC channels with the crossbeam channel API shape.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if the channel is disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterates over received messages until disconnection.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.inner.try_iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_and_timeout() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn clone_sender() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx2.send(1).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv().unwrap(), 1);
            assert!(rx.recv().is_err());
        }
    }
}
