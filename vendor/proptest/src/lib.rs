//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro with
//! `pattern in strategy` arguments, `prop_assert!`/`prop_assert_eq!`,
//! numeric range strategies, tuple strategies, `prop::collection::vec`
//! and string strategies from a small regex subset (`[a-z]{m,n}` atoms).
//!
//! Cases are generated from a deterministic RNG seeded by the test name,
//! so failures reproduce exactly. There is no shrinking: the failing
//! input is printed as-is.

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of generated cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Failure raised by `prop_assert!`-style macros inside a property body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// A source of random values of some type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// String strategy: a `&str` is interpreted as a small regex subset.
///
/// Supported syntax: literal characters, `.` (printable ASCII),
/// character classes `[a-z0-9_]` (ranges and literals, no negation), and
/// repetition `{n}` / `{m,n}` applied to the preceding atom.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = if atom.min == atom.max {
                atom.min
            } else {
                rng.gen_range(atom.min..atom.max + 1)
            };
            for _ in 0..count {
                let idx = if atom.chars.len() == 1 {
                    0
                } else {
                    rng.gen_range(0..atom.chars.len())
                };
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms: Vec<PatternAtom> = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        match c {
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = it.next().unwrap_or_else(|| {
                        panic!("unterminated character class in pattern {pattern:?}")
                    });
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && it.peek() != Some(&']') => {
                            let lo = prev.take().expect("range start");
                            let hi = it.next().expect("range end");
                            for ch in lo..=hi {
                                class.push(ch);
                            }
                        }
                        _ => {
                            if let Some(p) = prev.take() {
                                class.push(p);
                            }
                            prev = Some(c);
                        }
                    }
                }
                if let Some(p) = prev {
                    class.push(p);
                }
                assert!(!class.is_empty(), "empty character class in {pattern:?}");
                atoms.push(PatternAtom {
                    chars: class,
                    min: 1,
                    max: 1,
                });
            }
            '{' => {
                let mut spec = String::new();
                for c in it.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                let (min, max) = match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("repetition lower bound"),
                        hi.parse().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = spec.parse().expect("repetition count");
                        (n, n)
                    }
                };
                let atom = atoms
                    .last_mut()
                    .unwrap_or_else(|| panic!("repetition without atom in {pattern:?}"));
                atom.min = min;
                atom.max = max;
            }
            '.' => atoms.push(PatternAtom {
                chars: (' '..='~').collect(),
                min: 1,
                max: 1,
            }),
            '\\' => {
                let escaped = it.next().expect("escaped character");
                atoms.push(PatternAtom {
                    chars: vec![escaped],
                    min: 1,
                    max: 1,
                });
            }
            _ => atoms.push(PatternAtom {
                chars: vec![c],
                min: 1,
                max: 1,
            }),
        }
    }
    atoms
}

/// Collection strategies.
pub mod collection {
    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.start..self.size.end)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Derives a deterministic per-test seed from the test's name.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a: stable across runs and platforms, unlike DefaultHasher's
    // documented-as-unspecified algorithm.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Builds the RNG for one test case.
pub fn case_rng(seed: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed ^ (u64::from(case) << 32 | 0x5bd1_e995))
}

/// Defines property tests: each function takes `pattern in strategy`
/// arguments and runs [`DEFAULT_CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __seed = $crate::seed_for(stringify!($name));
                for __case in 0..$crate::DEFAULT_CASES {
                    let mut __rng = $crate::case_rng(__seed, __case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body; ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(err) = __outcome {
                        panic!("property {} failed on case {}: {}", stringify!($name), __case, err);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// with a message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, Strategy, TestCaseError};

    /// Alias so `prop::collection::vec(...)` resolves like upstream.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Range strategies stay within bounds.
        #[test]
        fn ranges_within_bounds((a, b) in (5u64..10, -1.0f64..1.0)) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((-1.0..1.0).contains(&b));
        }

        /// Vec strategy respects its size range.
        #[test]
        fn vec_sizes(v in prop::collection::vec(0u32..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in &v {
                prop_assert!(*x < 100);
            }
        }

        /// String pattern strategy produces matching characters.
        #[test]
        fn string_pattern(s in "[ -~]{0,12}") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::case_rng(crate::seed_for("x"), 3);
        let mut b = crate::case_rng(crate::seed_for("x"), 3);
        let strat = 0u64..1_000_000;
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn pattern_literal_and_repeat() {
        let mut rng = crate::case_rng(1, 1);
        let s = "ab[0-9]{3}".generate(&mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with("ab"));
        assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
    }
}
