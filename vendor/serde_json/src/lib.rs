//! Offline vendored stand-in for `serde_json`.
//!
//! Serializes the vendored `serde` crate's [`Value`] data model to JSON
//! text and parses JSON text back. API-compatible with the subset of
//! `serde_json` this workspace uses: [`to_string`], [`to_string_pretty`],
//! [`to_vec`], [`from_str`], [`from_slice`], [`Value`] and [`Error`].
//!
//! The parser is a hand-rolled recursive-descent parser with a nesting
//! depth limit, so arbitrary (including adversarial) input can never
//! panic or overflow the stack — it returns [`Error`] instead.

use std::fmt;

pub use serde::Number;
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 128;

/// A serialization or deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(err: serde::DeError) -> Self {
        Error(err.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_string(n: &Number) -> String {
    match n {
        Number::PosInt(v) => v.to_string(),
        Number::NegInt(v) => v.to_string(),
        Number::Float(f) => {
            if f.fract() == 0.0 && f.abs() < 1e15 {
                // Keep float-ness visible, like serde_json ("1.0" not "1").
                format!("{f:.1}")
            } else {
                format!("{f}")
            }
        }
    }
}

fn emit(value: &Value, out: &mut String, indent: Option<usize>) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&number_string(n)),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                emit(item, out, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                escape_into(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(item, out, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, None);
    Ok(out)
}

/// Serializes `value` to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, Some(0));
    Ok(out)
}

/// Serializes `value` to a compact JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Parser { bytes, pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: require a low surrogate.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-validate from the raw slice.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid utf-8")),
                    };
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated utf-8"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("bad unicode escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.err("bad unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("bad number"));
        }
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        let f: f64 = text.parse().map_err(|_| self.err("bad number"))?;
        if f.is_finite() {
            Ok(Value::Number(Number::Float(f)))
        } else {
            Err(self.err("number out of range"))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.err("recursion depth exceeded"));
        }
        self.skip_ws();
        match self
            .peek()
            .ok_or_else(|| self.err("unexpected end of input"))?
        {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::String),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }
}

/// Parses a [`Value`] from JSON bytes.
pub fn value_from_slice(bytes: &[u8]) -> Result<Value> {
    let mut parser = Parser::new(bytes);
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(value)
}

/// Deserializes `T` from a JSON string.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T> {
    let value = value_from_slice(s.as_bytes())?;
    T::from_value(&value).map_err(Error::from)
}

/// Deserializes `T` from JSON bytes.
pub fn from_slice<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T> {
    let value = value_from_slice(bytes)?;
    T::from_value(&value).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&1u64).unwrap(), "1");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        let v: f64 = from_str("2.0").unwrap();
        assert_eq!(v, 2.0);
        let n: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(n, u64::MAX);
    }

    #[test]
    fn nested_value_round_trip() {
        let text = r#"{"a": [1, 2.5, null, "x"], "b": {"c": true}}"#;
        let value: Value = from_str(text).unwrap();
        assert_eq!(value["a"][1], 2.5);
        assert_eq!(value["b"]["c"], true);
        let emitted = to_string(&value).unwrap();
        let back: Value = from_str(&emitted).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\"",
            "nul",
            "+1",
            "1..2",
            "[1,]",
            "{\"a\":}",
            "\u{1}",
            "\"\\u12\"",
            "\"\\ud800\"",
        ] {
            assert!(from_str::<Value>(bad).is_err(), "input {bad:?}");
        }
        let deep = "[".repeat(100_000);
        assert!(from_str::<Value>(&deep).is_err());
    }

    #[test]
    fn pretty_output_indents() {
        let value: Value = from_str(r#"{"k": [1]}"#).unwrap();
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains("\n  \"k\": [\n    1\n  ]"));
    }
}
