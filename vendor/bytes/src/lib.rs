//! Offline vendored stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], a cheaply cloneable, immutable, contiguous byte
//! buffer backed by `Arc<[u8]>` — the subset of the real crate's API this
//! workspace uses.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer from a static byte slice (copied; the real crate
    /// borrows, but the semantics are indistinguishable for callers).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: data.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Bytes {
            data: data.into_bytes().into(),
        }
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Bytes {
            data: data.as_bytes().into(),
        }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "b\"{}\"",
            String::from_utf8_lossy(&self.data).escape_debug()
        )
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        // The buffer is shared (`Arc<[u8]>`), so an owning iterator has to
        // copy; the real crate walks the buffer in place instead.
        #[allow(clippy::unnecessary_to_owned)]
        self.data.to_vec().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.last(), Some(&3));
    }

    #[test]
    fn static_and_str() {
        let b = Bytes::from_static(b"hi\n");
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }
}
