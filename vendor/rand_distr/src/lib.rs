//! Offline vendored stand-in for the `rand_distr` crate.
//!
//! Provides [`Normal`], [`Poisson`] and [`Binomial`] with the
//! [`Distribution`] trait — the subset the trace generators use. Sampling
//! algorithms are textbook (Box–Muller, Knuth, inversion) with normal
//! approximations for large parameters; streams are deterministic given
//! the RNG but differ from upstream `rand_distr`.

use rand::Rng;

/// Types that sample values of `T` from a distribution.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for ParamError {}

/// Draws a standard normal via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        return r * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// The normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with `mean` and `std_dev ≥ 0`.
    ///
    /// # Errors
    ///
    /// Rejects non-finite parameters or negative standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(ParamError("invalid normal parameters"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// The Poisson distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with rate `lambda > 0`.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or non-positive rates.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ParamError("invalid poisson lambda"));
        }
        Ok(Poisson { lambda })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth's product method.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                let u: f64 = rng.gen();
                p *= u;
                if p <= l {
                    return k as f64;
                }
                k += 1;
            }
        } else {
            // Normal approximation with continuity correction.
            let x = self.lambda + self.lambda.sqrt() * standard_normal(rng) + 0.5;
            x.floor().max(0.0)
        }
    }
}

impl Distribution<u64> for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let x: f64 = Distribution::<f64>::sample(self, rng);
        x as u64
    }
}

/// The binomial distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution over `n` trials with success
    /// probability `p ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Rejects probabilities outside `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self, ParamError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(ParamError("invalid binomial probability"));
        }
        Ok(Binomial { n, p })
    }
}

impl Distribution<u64> for Binomial {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mean = self.n as f64 * self.p;
        let var = mean * (1.0 - self.p);
        if self.n <= 64 {
            // Direct Bernoulli sum.
            let mut k = 0u64;
            for _ in 0..self.n {
                if rng.gen::<f64>() < self.p {
                    k += 1;
                }
            }
            k
        } else {
            // Normal approximation, clamped to the support.
            let x = mean + var.sqrt() * standard_normal(rng) + 0.5;
            (x.floor().max(0.0) as u64).min(self.n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let d = Normal::new(5.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut rng = StdRng::seed_from_u64(2);
        for lambda in [3.0, 80.0] {
            let d = Poisson::new(lambda).unwrap();
            let n = 20_000;
            let mean = (0..n)
                .map(|_| Distribution::<f64>::sample(&d, &mut rng))
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - lambda).abs() < lambda * 0.05 + 0.2,
                "lambda {lambda} mean {mean}"
            );
        }
    }

    #[test]
    fn binomial_mean_small_and_large() {
        let mut rng = StdRng::seed_from_u64(3);
        for (n_trials, p) in [(40u64, 0.3), (4000u64, 0.25)] {
            let d = Binomial::new(n_trials, p).unwrap();
            let reps = 10_000;
            let mean = (0..reps)
                .map(|_| Distribution::<u64>::sample(&d, &mut rng) as f64)
                .sum::<f64>()
                / reps as f64;
            let expect = n_trials as f64 * p;
            assert!(
                (mean - expect).abs() < expect * 0.05 + 0.5,
                "n {n_trials} mean {mean} expect {expect}"
            );
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Poisson::new(0.0).is_err());
        assert!(Binomial::new(10, 1.5).is_err());
    }
}
