//! Offline vendored stand-in for the `serde` crate.
//!
//! The real crates.io `serde` is unavailable in this build environment, so
//! this crate provides an API-compatible subset built around a concrete
//! JSON-like [`Value`] data model instead of serde's visitor architecture.
//! Types implement [`Serialize`]/[`Deserialize`] (usually via the
//! re-exported derive macros) by converting to and from [`Value`]; the
//! vendored `serde_json` crate renders that `Value` as JSON text.
//!
//! Supported surface (what this repository actually uses):
//! `#[derive(Serialize, Deserialize)]` on non-generic structs (named,
//! tuple/newtype, unit) and enums (unit, tuple and struct variants,
//! externally tagged like serde), the `#[serde(default)]` field attribute,
//! and impls for primitives, strings, `Option`, `Vec`, `VecDeque`, arrays,
//! tuples, `NonZero*`, `HashMap`/`BTreeMap` (stringified keys) and
//! `HashSet`/`BTreeSet`.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::num::{NonZeroU32, NonZeroU64, NonZeroUsize};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON number, preserving integer-ness exactly like `serde_json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number (always finite once stored).
    Float(f64),
}

impl Number {
    /// The number as an `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// The number as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(_) => None,
        }
    }

    /// The number as an `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }
}

/// A dynamically typed JSON value (the serialization data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

static NULL_VALUE: Value = Value::Null;

impl Value {
    /// The value as an object's entry list, if it is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup (`None` when absent or not an object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array()
            .and_then(|items| items.get(idx))
            .unwrap_or(&NULL_VALUE)
    }
}

macro_rules! value_eq_int {
    ($($ty:ty),*) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                match self {
                    Value::Number(Number::PosInt(n)) => (*n as i128) == (*other as i128),
                    Value::Number(Number::NegInt(n)) => (*n as i128) == (*other as i128),
                    Value::Number(Number::Float(f)) => *f == *other as f64,
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $ty {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
value_eq_int!(i32, i64, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<Value> for f64 {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the serialization data model.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
///
/// The `'de` lifetime exists purely for signature compatibility with the
/// real serde (`for<'de> Deserialize<'de>` bounds in downstream code).
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from the serialization data model.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Finds `key` in an object entry list (helper used by derived code).
pub fn __find<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::Float(*self))
        } else {
            Value::Null // serde_json serializes non-finite floats as null
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )+};
}
ser_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

macro_rules! ser_nonzero {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(self.get() as u64))
            }
        }
    )*};
}
ser_nonzero!(NonZeroU32, NonZeroU64, NonZeroUsize);

/// Renders a serialized key for use as a JSON object key.
fn key_string(value: &Value) -> String {
    match value {
        Value::String(s) => s.clone(),
        Value::Number(Number::PosInt(n)) => n.to_string(),
        Value::Number(Number::NegInt(n)) => n.to_string(),
        Value::Number(Number::Float(f)) => f.to_string(),
        Value::Bool(b) => b.to_string(),
        _ => String::from("null"),
    }
}

/// Rebuilds a key value from a JSON object key string.
fn key_value(key: &str) -> Vec<Value> {
    let mut candidates = Vec::new();
    if let Ok(n) = key.parse::<u64>() {
        candidates.push(Value::Number(Number::PosInt(n)));
    } else if let Ok(n) = key.parse::<i64>() {
        candidates.push(Value::Number(Number::NegInt(n)));
    } else if let Ok(f) = key.parse::<f64>() {
        candidates.push(Value::Number(Number::Float(f)));
    }
    candidates.push(Value::String(key.to_string()));
    candidates
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0)); // stable output for unordered maps
        Value::Object(entries)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Serialize, S: BuildHasher> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by_key(key_string);
        Value::Array(items)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::custom("expected bool"))
    }
}

macro_rules! de_uint {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($ty))))?;
                <$ty>::try_from(n)
                    .map_err(|_| DeError::custom(concat!("integer out of range for ", stringify!($ty))))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($ty))))?;
                <$ty>::try_from(n)
                    .map_err(|_| DeError::custom(concat!("integer out of range for ", stringify!($ty))))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::custom("expected number"))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl<'de> Deserialize<'de> for &'static str {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        // Upstream serde deserializes `&str` by borrowing from the input;
        // this Value model cannot borrow, so the string is leaked. Only
        // derive-compilability is relied upon — no workspace code
        // deserializes borrowed strings at runtime.
        value
            .as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(value).map(VecDeque::from)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(value)?;
        <[T; N]>::try_from(items).map_err(|_| DeError::custom("array length mismatch"))
    }
}

macro_rules! de_tuple {
    ($(($($name:ident . $idx:tt),+ ; $len:expr)),+ $(,)?) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value.as_array().ok_or_else(|| DeError::custom("expected tuple array"))?;
                if items.len() != $len {
                    return Err(DeError::custom("tuple length mismatch"));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}
de_tuple!(
    (A.0 ; 1),
    (A.0, B.1 ; 2),
    (A.0, B.1, C.2 ; 3),
    (A.0, B.1, C.2, D.3 ; 4),
);

macro_rules! de_nonzero {
    ($($ty:ty => $inner:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = <$inner>::from_value(value)?;
                <$ty>::new(n).ok_or_else(|| DeError::custom("expected non-zero integer"))
            }
        }
    )*};
}
de_nonzero!(NonZeroU32 => u32, NonZeroU64 => u64, NonZeroUsize => usize);

fn de_map_key<'de, K: Deserialize<'de>>(key: &str) -> Result<K, DeError> {
    let mut last_err = DeError::custom("unreachable");
    for candidate in key_value(key) {
        match K::from_value(&candidate) {
            Ok(k) => return Ok(k),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    S: BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| DeError::custom("expected object"))?;
        let mut map = HashMap::with_capacity_and_hasher(entries.len(), S::default());
        for (k, v) in entries {
            map.insert(de_map_key::<K>(k)?, V::from_value(v)?);
        }
        Ok(map)
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| DeError::custom("expected object"))?;
        let mut map = BTreeMap::new();
        for (k, v) in entries {
            map.insert(de_map_key::<K>(k)?, V::from_value(v)?);
        }
        Ok(map)
    }
}

impl<'de, T, S> Deserialize<'de> for HashSet<T, S>
where
    T: Deserialize<'de> + Eq + Hash,
    S: BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(value).map(|items| items.into_iter().collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(value).map(|items| items.into_iter().collect())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        let none: Option<f64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn value_indexing_and_eq() {
        let v = Value::Object(vec![("a".into(), 3u64.to_value())]);
        assert_eq!(v["a"], 3);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn int_range_checks() {
        let big = Value::Number(Number::PosInt(300));
        assert!(u8::from_value(&big).is_err());
        assert_eq!(u16::from_value(&big).unwrap(), 300);
    }
}
