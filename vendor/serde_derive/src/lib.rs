//! Offline vendored `#[derive(Serialize, Deserialize)]` for the vendored
//! serde stand-in.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the input item
//! is parsed directly from the `proc_macro::TokenStream` and the generated
//! impl is assembled as a source string. Supports non-generic structs
//! (named fields, tuple/newtype, unit) and enums (unit, tuple and struct
//! variants, externally tagged), plus the `#[serde(default)]` field
//! attribute. That is exactly the surface the workspace uses.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String, // field name, or tuple index as a string
    default: bool,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// True when an attribute token group (the `[...]` part) is `serde(...)`
/// containing the `default` ident.
fn attr_is_serde_default(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(t, TokenTree::Ident(ref i) if i.to_string() == "default")),
        _ => false,
    }
}

/// Consumes leading attributes at `i`, returning whether any was
/// `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    while *i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[*i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[*i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        if attr_is_serde_default(g) {
            default = true;
        }
        *i += 2;
    }
    default
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, …) at `i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Advances past a type (or expression) until a top-level comma, tracking
/// `<...>` nesting so commas inside generic arguments are not split on.
fn skip_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle <= 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Parses `{ name: Ty, ... }` field lists.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1; // name
        i += 1; // ':'
        skip_until_comma(&tokens, &mut i);
        i += 1; // ','
        fields.push(Field { name, default });
    }
    fields
}

/// Parses `( Ty, Ty, ... )` field lists; fields are indexed `0..n`.
fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_until_comma(&tokens, &mut i);
        i += 1; // ','
        fields.push(Field {
            name: (fields.len()).to_string(),
            default,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        skip_until_comma(&tokens, &mut i);
        i += 1;
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic types are not supported (type {name})");
        }
    }
    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde_derive stub: malformed enum body: {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn ser_named_fields(fields: &[Field], access_prefix: &str) -> String {
    let mut body = String::from("{ let mut __obj: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in fields {
        body.push_str(&format!(
            "__obj.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&{p}{n})));\n",
            n = f.name,
            p = access_prefix,
        ));
    }
    body.push_str("::serde::Value::Object(__obj) }");
    body
}

fn derive_serialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(fields) if fields.len() == 1 => {
                    "::serde::Serialize::to_value(&self.0)".to_string()
                }
                Shape::Tuple(fields) => {
                    let items: Vec<String> = (0..fields.len())
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => ser_named_fields(fields, "self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    Shape::Tuple(fields) if fields.len() == 1 => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    Shape::Tuple(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", "),
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let inner = ser_named_fields(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binds.join(", "),
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n}}\n"
            )
        }
    }
}

fn de_named_fields(fields: &[Field], type_path: &str) -> String {
    let mut ctor = format!("{type_path} {{\n");
    for f in fields {
        if f.default {
            ctor.push_str(&format!(
                "{n}: match ::serde::__find(__obj, \"{n}\") {{\n\
                 Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
                 None => ::core::default::Default::default(),\n}},\n",
                n = f.name
            ));
        } else {
            ctor.push_str(&format!(
                "{n}: match ::serde::__find(__obj, \"{n}\") {{\n\
                 Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
                 None => return Err(::serde::DeError::custom(\"missing field `{n}`\")),\n}},\n",
                n = f.name
            ));
        }
    }
    ctor.push('}');
    ctor
}

fn derive_deserialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("{{ let _ = __value; Ok({name}) }}"),
                Shape::Tuple(fields) if fields.len() == 1 => {
                    format!("Ok({name}(::serde::Deserialize::from_value(__value)?))")
                }
                Shape::Tuple(fields) => {
                    let n = fields.len();
                    let items: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                        .collect();
                    format!(
                        "{{ let __arr = __value.as_array().ok_or_else(|| ::serde::DeError::custom(\"expected array for {name}\"))?;\n\
                         if __arr.len() != {n} {{ return Err(::serde::DeError::custom(\"wrong tuple arity for {name}\")); }}\n\
                         Ok({name}({items})) }}",
                        items = items.join(", ")
                    )
                }
                Shape::Named(fields) => format!(
                    "{{ let __obj = __value.as_object().ok_or_else(|| ::serde::DeError::custom(\"expected object for {name}\"))?;\n\
                     Ok({ctor}) }}",
                    ctor = de_named_fields(fields, name)
                ),
            };
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn from_value(__value: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{ {body} }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                        // Also accept the {"Variant": null} form.
                        keyed_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    Shape::Tuple(fields) if fields.len() == 1 => {
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                    Shape::Tuple(fields) => {
                        let n = fields.len();
                        let items: Vec<String> = (0..n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __arr = __inner.as_array().ok_or_else(|| ::serde::DeError::custom(\"expected array for {name}::{vn}\"))?;\n\
                             if __arr.len() != {n} {{ return Err(::serde::DeError::custom(\"wrong arity for {name}::{vn}\")); }}\n\
                             Ok({name}::{vn}({items})) }},\n",
                            items = items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let ctor = de_named_fields(fields, &format!("{name}::{vn}"));
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __obj = __inner.as_object().ok_or_else(|| ::serde::DeError::custom(\"expected object for {name}::{vn}\"))?;\n\
                             Ok({ctor}) }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn from_value(__value: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 match __value {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 __other => Err(::serde::DeError::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__key, __inner) = &__entries[0];\n\
                 let _ = __inner;\n\
                 match __key.as_str() {{\n\
                 {keyed_arms}\n\
                 __other => Err(::serde::DeError::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => Err(::serde::DeError::custom(\"expected string or single-key object for {name}\")),\n\
                 }}\n\
                 }}\n}}\n"
            )
        }
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_serialize_impl(&item)
        .parse()
        .expect("serde_derive stub: generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_deserialize_impl(&item)
        .parse()
        .expect("serde_derive stub: generated Deserialize impl parses")
}
