//! A monitor served over a real TCP socket — the paper's deployment
//! shape (monitors in each server's Dom0, coordinators elsewhere) run in
//! miniature: the "Dom0" side serves [`volley_runtime::MonitorActor`] on
//! a loopback socket; the "coordinator" side drives ticks, receives local
//! violation reports and issues a poll, all over the wire protocol.
//!
//! Run with: `cargo run --example remote_monitor`

use std::io::BufReader;
use std::net::{TcpListener, TcpStream};

use volley::core::task::MonitorId;
use volley::{AdaptationConfig, AdaptiveSampler, NetflowConfig};
use volley_runtime::message::{
    decode, encode, CoordinatorToMonitor, MonitorToCoordinator, TickData,
};
use volley_runtime::transport::{read_frame, serve_monitor_tcp, write_frame};
use volley_runtime::MonitorActor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- "Dom0" side: serve one monitor on a loopback socket. ---
    let trace = NetflowConfig::builder()
        .seed(21)
        .build()
        .generate_vm(0, 1200)
        .rho;
    let threshold = volley::selectivity_threshold(&trace, 1.0)?;
    let config = AdaptationConfig::builder()
        .error_allowance(0.02)
        .max_interval(8)
        .patience(5)
        .build()?;
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let server = std::thread::spawn(move || {
        let (stream, peer) = listener.accept().expect("accept coordinator");
        eprintln!("monitor: serving coordinator at {peer}");
        let actor = MonitorActor::new(MonitorId(0), AdaptiveSampler::new(config, threshold));
        serve_monitor_tcp(actor, stream).expect("monitor serves cleanly");
    });

    // --- Coordinator side: drive ticks over the wire. ---
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut samples = 0u64;
    let mut violations = 0u64;
    let mut polls = 0u64;
    for (t, &value) in trace.iter().enumerate() {
        let tick = t as u64;
        write_frame(
            &mut writer,
            &encode(&CoordinatorToMonitor::Tick(TickData { tick, value })),
        )?;
        let frame = read_frame(&mut reader)?.ok_or("monitor hung up")?;
        match decode::<MonitorToCoordinator>(&frame)? {
            MonitorToCoordinator::TickDone {
                sampled, violation, ..
            } => {
                if sampled {
                    samples += 1;
                }
                if violation {
                    violations += 1;
                    // Local violation → global poll, over the same wire.
                    write_frame(&mut writer, &encode(&CoordinatorToMonitor::Poll { tick }))?;
                    let frame = read_frame(&mut reader)?.ok_or("monitor hung up")?;
                    if let MonitorToCoordinator::PollReply { value, .. } = decode(&frame)? {
                        polls += 1;
                        if polls == 1 {
                            println!(
                                "first local violation at tick {tick}: polled value {value:.0}"
                            );
                        }
                    }
                }
            }
            other => eprintln!("unexpected message: {other:?}"),
        }
    }
    write_frame(&mut writer, &encode(&CoordinatorToMonitor::Shutdown))?;
    server.join().expect("server thread exits");

    println!("ticks driven:      {}", trace.len());
    println!(
        "samples over TCP:  {samples} ({:.1}% of periodic)",
        100.0 * samples as f64 / trace.len() as f64
    );
    println!("local violations:  {violations} (each answered by a global poll)");
    Ok(())
}
