//! Windowed-aggregate monitoring (the paper's §VII future-work item).
//!
//! An alert on "mean CPU over the last 5 minutes above its 99th
//! percentile" is far friendlier to likelihood-based sampling than the
//! raw per-sample condition: the windowed mean moves slowly, so the δ
//! statistics are tight and the interval grows further at the same
//! accuracy target. This example monitors the same stream both ways and
//! prints the cost difference.
//!
//! Run with: `cargo run --release --example windowed_monitoring`

use volley::core::window::{AggregateKind, WindowedSampler};
use volley::{AdaptationConfig, AdaptiveSampler, SystemMetricsGenerator};

const TICKS: usize = 17_280; // a day of 5-second samples
const WINDOW: u64 = 60; // 5 minutes

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = SystemMetricsGenerator::new(33).trace(0, 0, TICKS); // cpu_user

    // Ground-truth windowed mean for the threshold.
    let mut window = volley::core::window::SlidingWindow::new(WINDOW)?;
    let windowed: Vec<f64> = trace
        .iter()
        .enumerate()
        .map(|(t, &v)| {
            window.push(t as u64, v);
            window.aggregate(AggregateKind::Mean)
        })
        .collect();
    let raw_threshold = volley::selectivity_threshold(&trace, 1.0)?;
    let mean_threshold = volley::selectivity_threshold(&windowed, 1.0)?;

    let config = AdaptationConfig::builder()
        .error_allowance(0.01)
        .max_interval(32)
        .build()?;

    // Raw per-sample monitoring.
    let mut raw = AdaptiveSampler::new(config, raw_threshold);
    let mut raw_samples = 0u64;
    let mut tick = 0u64;
    while (tick as usize) < TICKS {
        let obs = raw.observe(tick, trace[tick as usize]);
        raw_samples += 1;
        tick = obs.next_sample_tick;
    }

    // Windowed-mean monitoring of the same stream.
    let mut windowed_sampler =
        WindowedSampler::new(config, mean_threshold, WINDOW, AggregateKind::Mean)?;
    let mut win_samples = 0u64;
    let mut win_alerts = 0u64;
    tick = 0;
    while (tick as usize) < TICKS {
        let obs = windowed_sampler.observe(tick, trace[tick as usize]);
        win_samples += 1;
        if obs.violation {
            win_alerts += 1;
        }
        tick = obs.next_sample_tick;
    }

    println!("stream:                 cpu_user, {TICKS} ticks (1 day @ 5s)");
    println!("raw condition:          value > {raw_threshold:.1}");
    println!("windowed condition:     mean(5min) > {mean_threshold:.1}");
    println!();
    println!(
        "raw monitoring:         {raw_samples} samples ({:.1}% of periodic)",
        100.0 * raw_samples as f64 / TICKS as f64
    );
    println!(
        "windowed monitoring:    {win_samples} samples ({:.1}% of periodic), {win_alerts} alert samples",
        100.0 * win_samples as f64 / TICKS as f64
    );
    println!(
        "\nThe windowed aggregate changes slowly, so Volley sustains intervals up to {}.",
        windowed_sampler.sampler().interval()
    );
    Ok(())
}
