//! The managed monitoring service: heterogeneous tasks behind one
//! `due`/`observe` loop, with tasks coming and going at run time.
//!
//! Registers three different task forms over generated metric streams —
//! a plain CPU threshold, a free-memory floor, and a windowed-mean
//! throughput alert — runs them together, then swaps one task out
//! mid-flight, the way a datacenter's task population actually evolves.
//!
//! Run with: `cargo run --release --example monitoring_service`

use volley::core::condition::Condition;
use volley::core::service::{MonitoringService, TaskKind};
use volley::core::task::TaskId;
use volley::core::window::AggregateKind;
use volley::{AdaptationConfig, SystemMetricsGenerator};

const TICKS: usize = 10_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generator = SystemMetricsGenerator::new(64);
    let cpu = generator.trace(0, 0, TICKS); // cpu_user
    let mem = generator.trace(0, 15, TICKS); // mem_free_mb
    let net = generator.trace(0, 54, TICKS); // net_rx_kbs

    let config = AdaptationConfig::builder()
        .error_allowance(0.01)
        .max_interval(16)
        .build()?;

    let mut service = MonitoringService::new();
    service.register(
        TaskId(1),
        config,
        TaskKind::Above {
            threshold: volley::selectivity_threshold(&cpu, 1.0)?,
        },
    )?;
    // Free memory *below* its 0.5th percentile.
    let mem_floor = {
        let mut sorted = mem.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        volley_traces::timeseries::percentile(&sorted, 0.5)
    };
    service.register(
        TaskId(2),
        config,
        TaskKind::Conditional {
            condition: Condition::Below(mem_floor),
        },
    )?;
    service.register(
        TaskId(3),
        config,
        TaskKind::Windowed {
            threshold: volley::selectivity_threshold(&net, 1.0)? * 0.9,
            width: 12, // one minute of 5-second samples
            aggregate: AggregateKind::Mean,
        },
    )?;

    let stream = |task: TaskId, tick: usize| -> f64 {
        match task {
            TaskId(1) => cpu[tick],
            TaskId(2) => mem[tick],
            TaskId(3) => net[tick],
            _ => unreachable!("unknown task"),
        }
    };

    let mut alerts = 0u64;
    for tick in 0..TICKS as u64 {
        // Half-way through, the memory task is retired (its VM migrated).
        if tick == TICKS as u64 / 2 {
            service.deregister(TaskId(2));
            println!(
                "tick {tick}: task-2 retired; {} tasks remain",
                service.len()
            );
        }
        for task in service.due(tick) {
            let value = stream(task, tick as usize);
            if let Some(alert) = service.observe(task, tick, value)? {
                alerts += 1;
                if alerts <= 5 {
                    println!(
                        "alert: {} at tick {} (value {:.1})",
                        alert.task, alert.tick, alert.value
                    );
                }
            }
        }
    }

    println!("\nticks:         {TICKS}");
    println!("alerts:        {alerts}");
    println!(
        "sampling cost: {:.1}% of sampling every task every tick",
        100.0 * service.cost_ratio()
    );
    for id in [1u64, 3] {
        if let Some((samples, task_alerts)) = service.task_stats(TaskId(id)) {
            println!("task-{id}: {samples} samples, {task_alerts} alerts");
        }
    }
    Ok(())
}
