//! Whole-datacenter simulation: Dom0 CPU cost of network monitoring.
//!
//! Reproduces a slice of the paper's Figure 6 setup interactively: a
//! 4-server × 40-VM virtualized cluster where every VM's traffic is
//! deep-packet-inspected from Dom0, comparing the Dom0 CPU burden of
//! periodic sampling against Volley's adaptive sampling.
//!
//! Run with: `cargo run --release --example datacenter_sim`

use volley::prelude::*;

fn main() {
    let cluster = ClusterConfig::new(4, 40, 2);
    println!(
        "cluster: {} servers x {} VMs = {} monitors\n",
        cluster.servers(),
        cluster.vms_per_server(),
        cluster.total_vms()
    );
    println!(
        "{:<22}{:>12}{:>14}{:>14}{:>12}",
        "scheme", "samples", "Dom0 CPU avg", "Dom0 CPU max", "miss rate"
    );
    for (label, err) in [
        ("periodic (err=0)", 0.0),
        ("volley (err=1%)", 0.01),
        ("volley (err=3.2%)", 0.032),
    ] {
        let report = VolleyConfig::new()
            .cluster(cluster)
            .error_allowance(err)
            .selectivity_percent(1.0)
            .ticks(1500)
            .seed(2013)
            .network_scenario()
            .run();
        let cpu = report.cpu.expect("utilization recorded");
        println!(
            "{label:<22}{:>12}{:>13.1}%{:>13.1}%{:>12.4}",
            report.sampling_ops,
            cpu.mean * 100.0,
            cpu.max * 100.0,
            report.accuracy.misdetection_rate()
        );
    }
    println!("\nThe periodic row should sit in the paper's 20-34% Dom0 CPU band;");
    println!("adaptive rows drop it by half or more at controlled accuracy.");
}
