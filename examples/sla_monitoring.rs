//! SLA / throughput monitoring for autoscaling, on the threaded runtime.
//!
//! An EC2-style autoscaler adds web-server instances when the monitored
//! aggregate request throughput exceeds a provisioning threshold (§V-A,
//! application-level monitoring). Here three servers share a web
//! application; each runs a real monitor *thread* (via
//! [`volley::TaskRunner`]) that samples its local request rate
//! adaptively, and a coordinator thread raises the scale-up alert when
//! the aggregate crosses the threshold.
//!
//! Run with: `cargo run --example sla_monitoring`

use volley::prelude::*;

const SERVERS: usize = 3;
const TICKS: usize = 6000; // 1-second samples

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Per-server request rates: a shared diurnal cycle with flash crowds;
    // each server sees one popular object's traffic.
    let workload = HttpWorkloadConfig::builder()
        .seed(11)
        .objects(SERVERS)
        .zipf_exponent(0.3) // load balancer keeps servers roughly even
        .requests_per_tick(3000.0)
        .diurnal(DiurnalPattern::new(TICKS as u64, 0.5))
        .flash_crowd_probability(8e-4)
        .flash_crowd_magnitude(2500.0)
        .flash_crowd_duration(300)
        .build()
        .generate(TICKS);
    let traces: Vec<Vec<f64>> = (0..SERVERS)
        .map(|s| workload.object_rate(s).to_vec())
        .collect();

    // Scale up when the aggregate throughput exceeds its 98th percentile.
    let aggregate: Vec<f64> = (0..TICKS)
        .map(|t| traces.iter().map(|tr| tr[t]).sum())
        .collect();
    let threshold = selectivity_threshold(&aggregate, 2.0)?;

    let spec = VolleyConfig::new()
        .error_allowance(0.02)
        .max_interval(16)
        .task_spec(threshold, SERVERS)?;

    // Spawns one OS thread per monitor plus a coordinator thread; blocks
    // until the trace is exhausted.
    let report = TaskRunner::new(&spec)?.run(&traces)?;

    println!("scale-up threshold: {threshold:.0} requests/s (aggregate)");
    println!("ticks processed:    {}", report.ticks);
    println!(
        "scale-up alerts:    {} at {:?}",
        report.alerts, report.alert_ticks
    );
    println!("global polls:       {}", report.polls);
    println!(
        "sampling cost:      {:.1}% of periodic ({} ops)",
        100.0 * report.cost_ratio(SERVERS),
        report.total_samples
    );
    Ok(())
}
