//! Multi-task state correlation (§II-B): gate an expensive monitoring
//! task on a cheap correlated one.
//!
//! Response-time growth is a necessary condition of an effective DDoS
//! attack, so the expensive deep-packet-inspection task only needs high
//! frequency while response time is elevated. The example learns that
//! correlation from data, builds the monitoring plan, and compares the
//! gated task's cost and accuracy against always-on sampling.
//!
//! Run with: `cargo run --example correlation_monitoring`

use volley::core::correlation::{CorrelationConfig, CorrelationDetector};
use volley::core::task::TaskId;
use volley::core::Interval;
use volley::NetflowConfig;
use volley_traces::netflow::AttackSpec;

const TICKS: usize = 12_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Traffic with recurring attacks; response time tracks attack load.
    let mut config = NetflowConfig::builder()
        .seed(3)
        .vms(1)
        .scan_burst_probability(0.0);
    let mut start = 500u64;
    while (start as usize) < TICKS {
        config = config.attack(AttackSpec {
            vm: 0,
            start_tick: start,
            duration_ticks: 100,
            peak_asymmetry: 2200.0,
        });
        start += 1100;
    }
    let rho = config.build().generate_vm(0, TICKS).rho;
    // Response time follows attack load through an M/M/1-style model.
    let response = volley_traces::ResponseTimeModel::new(25.0, 3000.0).series(&rho, 99);

    let rho_threshold = volley::selectivity_threshold(&rho, 2.0)?;
    let resp_threshold = volley::selectivity_threshold(&response, 8.0)?;

    // Learn the correlation on the first half of the data.
    let response_task = TaskId(0);
    let ddos_task = TaskId(1);
    let mut detector = CorrelationDetector::new(
        CorrelationConfig {
            lag_window: 4,
            ..CorrelationConfig::default()
        },
        vec![response_task, ddos_task],
    );
    let train = TICKS / 2;
    for t in 0..train {
        detector.observe(
            t as u64,
            &[response[t] > resp_threshold, rho[t] > rho_threshold],
        );
    }
    let plan = detector.plan();
    match plan.gate(ddos_task) {
        Some(gate) => println!(
            "learned gate: DDoS task follows {} (confidence {:.3}, quiet interval {})",
            gate.leader, gate.confidence, gate.gated_interval
        ),
        None => println!("no gate learned — tasks look uncorrelated"),
    }

    // Apply the plan on the second half: sample the DDoS task coarsely
    // while response time is calm, at full rate once it rises.
    let mut samples = 0u64;
    let mut detected = 0u64;
    let mut violations = 0u64;
    let mut next_sample = 0u64;
    for (t, &value) in rho[train..].iter().enumerate() {
        let tick = t as u64;
        let violating = value > rho_threshold;
        if violating {
            violations += 1;
        }
        if tick >= next_sample {
            samples += 1;
            if violating {
                detected += 1;
            }
            let leader_active = response[train + t] > resp_threshold;
            let interval = plan.interval_for(ddos_task, leader_active, Interval::DEFAULT);
            next_sample = tick + u64::from(interval);
        }
    }
    let eval_len = (TICKS - train) as u64;
    println!("\nevaluation window: {eval_len} ticks");
    println!(
        "DDoS sampling cost: {:.1}% of always-on",
        100.0 * samples as f64 / eval_len as f64
    );
    println!(
        "violations caught:  {detected}/{violations} ({:.1}% miss rate)",
        if violations > 0 {
            100.0 * (violations - detected) as f64 / violations as f64
        } else {
            0.0
        }
    );
    Ok(())
}
