//! DDoS detection across a cluster: the paper's motivating scenario end
//! to end (§II-A).
//!
//! Four web servers host one application. Each server's monitor watches
//! the SYN/SYN-ACK traffic difference `ρ` of its VM; the coordinator
//! checks the aggregate `Σ ρ_i` against a global threshold and raises a
//! state alert when a distributed SYN flood drives the sum over it.
//! Volley keeps per-server sampling cheap while the traffic is benign and
//! tightens automatically as an attack ramps.
//!
//! Run with: `cargo run --example ddos_detection`

use volley::core::task::TaskSpec;
use volley::{DistributedTask, NetflowConfig};
use volley_traces::netflow::AttackSpec;

const SERVERS: usize = 4;
const TICKS: usize = 2000; // 15-second windows

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Traffic for 4 VMs with a coordinated attack against two of them
    // late in the trace.
    let mut config = NetflowConfig::builder().seed(7).vms(SERVERS);
    for vm in [1usize, 3] {
        config = config.attack(AttackSpec {
            vm,
            start_tick: 1700,
            duration_ticks: 150,
            peak_asymmetry: 2500.0,
        });
    }
    let traffic = config.build().generate(TICKS);

    // Global threshold: the sum of per-VM 99.5th percentiles of *benign*
    // reference traffic (thresholds come from attack-free history — using
    // the attacked trace itself would bake the attack into the baseline).
    let benign = NetflowConfig::builder()
        .seed(7)
        .vms(SERVERS)
        .build()
        .generate(TICKS);
    let global_threshold: f64 = benign
        .iter()
        .map(|t| volley::selectivity_threshold(&t.rho, 0.5))
        .collect::<Result<Vec<_>, _>>()?
        .iter()
        .sum();

    let spec = TaskSpec::builder(global_threshold)
        .monitors(SERVERS)
        .error_allowance(0.01)
        .max_interval(8)
        .build()?;
    let mut task = DistributedTask::new(&spec)?;

    let mut values = vec![0.0; SERVERS];
    let mut first_alert: Option<u64> = None;
    for tick in 0..TICKS as u64 {
        for (i, t) in traffic.iter().enumerate() {
            values[i] = t.rho[tick as usize];
        }
        let outcome = task.step(tick, &values)?;
        if outcome.alerted() && first_alert.is_none() {
            first_alert = Some(tick);
            let poll = outcome.poll.expect("alert implies a poll");
            println!(
                "DDoS alert at window {tick}: aggregate ρ = {:.0} > threshold {:.0}",
                poll.aggregate, global_threshold
            );
        }
    }

    println!("\nglobal polls:      {}", task.coordinator().global_polls);
    println!("state alerts:      {}", task.coordinator().alerts);
    println!(
        "sampling cost:     {:.1}% of periodic ({} ops vs {})",
        100.0 * task.cost_ratio(),
        task.total_samples(),
        task.periodic_baseline_samples()
    );
    match first_alert {
        Some(t) => {
            println!("attack detected:   window {t} (attack ramp began at window 1700)")
        }
        None => println!("attack detected:   MISSED — try a smaller error allowance"),
    }
    Ok(())
}
