//! Quickstart: adaptive sampling of a single metric stream.
//!
//! Monitors a synthetic CPU-utilization stream against a fixed threshold
//! with a 1% mis-detection allowance, and prints how much sampling cost
//! Volley saved compared to periodic sampling — the crate's core loop in
//! ~40 lines.
//!
//! Run with: `cargo run --example quickstart`

use volley::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A day of 5-second CPU samples on one VM (17280 ticks).
    let generator = SystemMetricsGenerator::new(42);
    let trace = generator.trace(0, 0, 17_280); // VM 0, metric "cpu_user"

    // Alert when CPU exceeds the 99th percentile of its own history
    // (selectivity k = 1%, as in the paper's evaluation).
    let threshold = selectivity_threshold(&trace, 1.0)?;

    // Volley controller: at most 1% of alerts may be missed relative to
    // periodic 5-second sampling.
    let mut sampler = VolleyConfig::new()
        .error_allowance(0.01)
        .max_interval(16)
        .sampler(threshold)?;

    let mut samples = 0u64;
    let mut alerts = 0u64;
    let mut tick = 0u64;
    while (tick as usize) < trace.len() {
        // In a real deployment this is where the expensive sampling
        // operation happens (tcpdump, log analysis, metered API call).
        let value = trace[tick as usize];
        let outcome = sampler.observe(tick, value);
        samples += 1;
        if outcome.violation {
            alerts += 1;
            println!(
                "state alert at t = {}s (value {value:.1} > {threshold:.1})",
                tick * 5
            );
        }
        // Volley tells us when to sample next.
        tick = outcome.next_sample_tick;
    }

    let baseline = trace.len() as u64;
    println!("\nsamples taken:    {samples} (periodic baseline: {baseline})");
    println!(
        "cost saved:       {:.1}%",
        100.0 * (1.0 - samples as f64 / baseline as f64)
    );
    println!("alerts raised:    {alerts}");
    println!("final interval:   {}", sampler.interval());
    Ok(())
}
