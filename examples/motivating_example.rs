//! The paper's Figure 1 as a runnable walkthrough: why fixed sampling
//! intervals force a cost/accuracy dilemma and how dynamic sampling
//! escapes it.
//!
//! Prints an ASCII sketch of the monitored traffic-difference trace with
//! the sampling points of three schemes overlaid:
//!
//! - `A` — fast periodic sampling (accurate, expensive);
//! - `B` — slow periodic sampling (cheap, misses the violation);
//! - `C` — Volley (cheap *and* detects the violation).
//!
//! Run with: `cargo run --example motivating_example`

use volley::{
    AdaptationConfig, AdaptiveSampler, Interval, NetflowConfig, PeriodicSampler, SamplingPolicy,
};
use volley_traces::netflow::AttackSpec;

const TICKS: usize = 120;

/// Collects the set of ticks a policy samples plus its detection verdict.
fn run(policy: &mut dyn SamplingPolicy, trace: &[f64]) -> (Vec<bool>, bool, usize) {
    let mut sampled = vec![false; trace.len()];
    let mut detected = false;
    let mut count = 0;
    let mut next = 0u64;
    for (t, &v) in trace.iter().enumerate() {
        if t as u64 >= next {
            let obs = policy.observe(t as u64, v);
            sampled[t] = true;
            count += 1;
            detected |= obs.violation;
            next = obs.next_sample_tick;
        }
    }
    (sampled, detected, count)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A short trace with a violation ramp in its final quarter.
    let config = NetflowConfig::builder()
        .seed(5)
        .scan_burst_probability(0.0)
        .attack(AttackSpec {
            vm: 0,
            start_tick: 95,
            duration_ticks: 24,
            peak_asymmetry: 900.0,
        })
        .build();
    let trace = config.generate_vm(0, TICKS).rho;
    let threshold = volley::selectivity_threshold(&trace, 5.0)?;

    let mut a = PeriodicSampler::new(Interval::DEFAULT, threshold);
    let mut b = PeriodicSampler::new(Interval::new(8).expect("non-zero"), threshold);
    let cfg = AdaptationConfig::builder()
        .error_allowance(0.02)
        .max_interval(8)
        .patience(5)
        .warmup_samples(3)
        .build()?;
    let mut c = AdaptiveSampler::new(cfg, threshold);

    let max = trace.iter().cloned().fold(1.0f64, f64::max);
    println!(
        "traffic difference ρ over {TICKS} windows (threshold {threshold:.0}, '#' above it):\n"
    );
    // 12-row ASCII chart.
    for row in (0..12).rev() {
        let level = max * row as f64 / 12.0;
        let mut line = String::new();
        for &v in &trace {
            line.push(if v >= level {
                if v > threshold {
                    '#'
                } else {
                    '*'
                }
            } else {
                ' '
            });
        }
        println!("{line}");
    }
    println!("{}", "-".repeat(TICKS));
    let schemes: [(&str, &mut dyn SamplingPolicy); 3] =
        [("A", &mut a), ("B", &mut b), ("C", &mut c)];
    for (name, policy) in schemes {
        let (sampled, detected, count) = run(policy, &trace);
        let line: String = sampled.iter().map(|s| if *s { '|' } else { ' ' }).collect();
        println!(
            "{line}  <- scheme {name}: {count} samples, violation {}",
            if detected { "DETECTED" } else { "MISSED" }
        );
    }
    Ok(())
}
