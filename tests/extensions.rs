//! Integration: the beyond-the-paper extensions — windowed aggregates,
//! generalized conditions, correlation-driven scheduling, fleet
//! execution and trace I/O — working together across crates.

use volley::core::condition::{Condition, ConditionSampler};
use volley::core::correlation::{CorrelatedScheduler, CorrelationConfig, CorrelationDetector};
use volley::core::task::{TaskId, TaskSpec};
use volley::core::window::{AggregateKind, SlidingWindow, WindowedSampler};
use volley::{AdaptationConfig, AdaptiveSampler, SystemMetricsGenerator};
use volley_runtime::fleet::{FleetRunner, FleetTask};
use volley_traces::io::{read_csv, write_csv};
use volley_traces::netflow::{AttackSpec, NetflowConfig};
use volley_traces::ResponseTimeModel;

fn adaptation(err: f64) -> AdaptationConfig {
    AdaptationConfig::builder()
        .error_allowance(err)
        .max_interval(16)
        .patience(5)
        .warmup_samples(3)
        .build()
        .expect("valid adaptation")
}

#[test]
fn windowed_monitoring_is_cheaper_than_raw_on_real_metrics() {
    let trace = SystemMetricsGenerator::new(12).trace(0, 0, 8000);
    let raw_threshold = volley::selectivity_threshold(&trace, 1.0).expect("valid");
    // Ground-truth windowed series for the windowed threshold.
    let mut w = SlidingWindow::new(30).expect("valid");
    let series: Vec<f64> = trace
        .iter()
        .enumerate()
        .map(|(t, &v)| {
            w.push(t as u64, v);
            w.aggregate(AggregateKind::Mean)
        })
        .collect();
    let win_threshold = volley::selectivity_threshold(&series, 1.0).expect("valid");

    let mut raw = AdaptiveSampler::new(adaptation(0.01), raw_threshold);
    let mut windowed =
        WindowedSampler::new(adaptation(0.01), win_threshold, 30, AggregateKind::Mean)
            .expect("valid window");
    let mut raw_samples = 0u64;
    let mut win_samples = 0u64;
    let mut tr = 0u64;
    while (tr as usize) < trace.len() {
        let obs = raw.observe(tr, trace[tr as usize]);
        raw_samples += 1;
        tr = obs.next_sample_tick;
    }
    let mut tw = 0u64;
    while (tw as usize) < trace.len() {
        let obs = windowed.observe(tw, trace[tw as usize]);
        win_samples += 1;
        tw = obs.next_sample_tick;
    }
    assert!(
        win_samples < raw_samples,
        "windowed {win_samples} should undercut raw {raw_samples}"
    );
}

#[test]
fn band_condition_catches_both_tails_of_a_metric() {
    // Free-memory style metric: alert when it leaves a healthy band.
    let trace = SystemMetricsGenerator::new(5).trace(1, 14, 6000); // mem_used_pct
    let sorted = {
        let mut s = trace.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        s
    };
    let low = volley_traces::timeseries::percentile(&sorted, 0.5);
    let high = volley_traces::timeseries::percentile(&sorted, 99.5);
    let mut sampler = ConditionSampler::new(adaptation(0.02), Condition::Outside { low, high })
        .expect("valid condition");
    let mut detected_low = false;
    let mut detected_high = false;
    let mut tick = 0u64;
    while (tick as usize) < trace.len() {
        let value = trace[tick as usize];
        let obs = sampler.observe(tick, value);
        if obs.violation {
            detected_low |= value < low;
            detected_high |= value > high;
        }
        tick = obs.next_sample_tick;
    }
    // With 0.5% mass on each side, both tails exist in 6000 ticks and the
    // sampler collapses near both edges — it should catch at least one of
    // each kind over the run.
    assert!(
        detected_low || detected_high,
        "no band violation detected at all"
    );
}

#[test]
fn correlation_pipeline_end_to_end() {
    // Build correlated streams from the actual generators: attacks drive
    // ρ, ρ drives response time through the queueing model.
    let ticks = 8000usize;
    let mut config = NetflowConfig::builder()
        .seed(2)
        .vms(1)
        .scan_burst_probability(0.0);
    let mut start = 300u64;
    while (start as usize) < ticks {
        config = config.attack(AttackSpec {
            vm: 0,
            start_tick: start,
            duration_ticks: 90,
            peak_asymmetry: 2500.0,
        });
        start += 800;
    }
    let rho = config.build().generate_vm(0, ticks).rho;
    let latency = ResponseTimeModel::new(20.0, 3200.0).series(&rho, 7);
    let rho_threshold = volley::selectivity_threshold(&rho, 2.0).expect("valid");
    let lat_threshold = volley::selectivity_threshold(&latency, 8.0).expect("valid");

    // Learn.
    let mut detector = CorrelationDetector::new(
        CorrelationConfig {
            lag_window: 4,
            ..CorrelationConfig::default()
        },
        vec![TaskId(0), TaskId(1)],
    );
    let train = ticks / 2;
    for t in 0..train {
        detector.observe(
            t as u64,
            &[latency[t] > lat_threshold, rho[t] > rho_threshold],
        );
    }
    let plan = detector.plan();
    assert!(
        plan.gate(TaskId(1)).is_some(),
        "DDoS task should be gated on latency"
    );

    // Apply via the scheduler on the second half.
    let mut scheduler = CorrelatedScheduler::new(
        vec![
            (
                TaskId(0),
                AdaptiveSampler::new(adaptation(0.01), lat_threshold),
            ),
            (
                TaskId(1),
                AdaptiveSampler::new(adaptation(0.01), rho_threshold),
            ),
        ],
        plan,
    )
    .expect("valid scheduler");
    let mut follower_sampled = 0u64;
    let mut follower_violations_caught = 0u64;
    for t in train..ticks {
        let outcomes = scheduler
            .step((t - train) as u64, &[latency[t], rho[t]])
            .expect("step succeeds");
        if outcomes[1].sampled {
            follower_sampled += 1;
            if outcomes[1].violation {
                follower_violations_caught += 1;
            }
        }
    }
    let eval = (ticks - train) as u64;
    assert!(
        follower_sampled < eval * 2 / 3,
        "gating should cut follower sampling: {follower_sampled}/{eval}"
    );
    assert!(
        follower_violations_caught > 0,
        "attacks must still be caught"
    );
}

#[test]
fn fleet_runs_mixed_workloads() {
    let netflow = NetflowConfig::builder()
        .seed(8)
        .vms(4)
        .build()
        .generate(600);
    let traces: Vec<Vec<f64>> = netflow.into_iter().map(|t| t.rho).collect();
    let thresholds: Vec<f64> = traces
        .iter()
        .map(|t| volley::selectivity_threshold(t, 1.0).expect("valid"))
        .collect();
    let tasks = vec![
        FleetTask::from_spec(
            TaskSpec::builder(thresholds[0] + thresholds[1])
                .monitors(2)
                .error_allowance(0.02)
                .max_interval(8)
                .patience(5)
                .build()
                .expect("valid spec"),
            traces[0..2].to_vec(),
        ),
        FleetTask::from_spec(
            TaskSpec::builder(thresholds[2] + thresholds[3])
                .monitors(2)
                .error_allowance(0.02)
                .max_interval(8)
                .patience(5)
                .build()
                .expect("valid spec"),
            traces[2..4].to_vec(),
        ),
    ];
    let (reports, summary) = FleetRunner::new().run(tasks).expect("fleet succeeds");
    assert_eq!(reports.len(), 2);
    assert_eq!(summary.baseline_samples, 4 * 600);
    assert!(summary.cost_ratio() < 1.0);
}

#[test]
fn csv_round_trip_preserves_generated_traces() {
    let traffic = NetflowConfig::builder()
        .seed(3)
        .vms(3)
        .build()
        .generate(200);
    let columns: Vec<Vec<f64>> = traffic.into_iter().map(|t| t.rho).collect();
    let mut buffer = Vec::new();
    write_csv(&mut buffer, &["vm0", "vm1", "vm2"], &columns).expect("write succeeds");
    let back = read_csv(buffer.as_slice()).expect("read succeeds");
    assert_eq!(back, columns);
}
