//! Property tests of the sample-store segment codec: arbitrary record
//! sets — including NaN and infinite payloads — survive an
//! encode/decode round trip bit-for-bit, and the reader never panics on
//! truncated or bit-flipped segments. Corruption can at worst shrink
//! what a scan returns (the truncated-tail rule), never crash it or
//! invent records.

use proptest::prelude::*;

use volley::store::{encode_segment, Record, RecordKind, SegmentReader};

/// Payload classes the XOR codec must carry bit-exactly; mixed into
/// every generated record set so NaN/inf coverage never depends on the
/// random bits happening to form one.
const SPECIALS: [f64; 6] = [
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    -0.0,
    f64::MIN_POSITIVE / 2.0, // subnormal
    f64::MAX,
];

/// Builds a valid record set from raw generator output: ticks are the
/// element index (unique per series by construction) and values are
/// arbitrary `f64` bit patterns — with the special-value table woven in
/// — so every payload class rides through the XOR codec.
fn build_records(raw: &[(u8, u8, u64)]) -> Vec<Record> {
    raw.iter()
        .enumerate()
        .map(|(i, &(series, kind, bits))| Record {
            task: u32::from(series % 2),
            monitor: u32::from(series / 2),
            kind: RecordKind::ALL[usize::from(kind) % RecordKind::ALL.len()],
            tick: i as u64,
            value: if i % 5 == 4 {
                SPECIALS[(i / 5) % SPECIALS.len()]
            } else {
                f64::from_bits(bits)
            },
        })
        .collect()
}

/// Bit-exact record comparison (`PartialEq` would treat NaN ≠ NaN).
fn same_record(a: &Record, b: &Record) -> bool {
    a.sort_key() == b.sort_key() && a.value.to_bits() == b.value.to_bits()
}

proptest! {
    /// encode → decode is the identity on the sorted record set, for
    /// every `f64` bit pattern.
    #[test]
    fn segment_round_trips_arbitrary_values(
        raw in prop::collection::vec((0u8..4, 0u8..255, 0u64..u64::MAX), 0..300),
    ) {
        let mut records = build_records(&raw);
        let bytes = encode_segment(&records);
        let reader = SegmentReader::open(&bytes);
        prop_assert!(!reader.truncated());

        records.sort_by_key(Record::sort_key);
        let decoded = reader.records();
        prop_assert_eq!(decoded.len(), records.len());
        for (d, r) in decoded.iter().zip(&records) {
            prop_assert!(same_record(d, r), "decoded {d:?}, appended {r:?}");
        }
    }

    /// Cutting a segment anywhere never panics and never invents
    /// records: whatever survives is a prefix of the full decode.
    #[test]
    fn truncated_segment_never_panics(
        raw in prop::collection::vec((0u8..4, 0u8..255, 0u64..u64::MAX), 1..200),
        cut_ratio in 0.0f64..1.0,
    ) {
        let records = build_records(&raw);
        let bytes = encode_segment(&records);
        let full = SegmentReader::open(&bytes).records();

        let cut = ((bytes.len() as f64) * cut_ratio) as usize;
        let reader = SegmentReader::open(&bytes[..cut]);
        let decoded = reader.records();
        prop_assert!(decoded.len() <= full.len());
        for (d, r) in decoded.iter().zip(&full) {
            prop_assert!(same_record(d, r), "truncation reordered records");
        }
    }

    /// Flipping any single bit never panics, and every record that still
    /// decodes is bit-identical to one the writer appended — the CRC
    /// framing turns corruption into omission, never into wrong data.
    #[test]
    fn bit_flipped_segment_never_panics(
        raw in prop::collection::vec((0u8..4, 0u8..255, 0u64..u64::MAX), 1..200),
        flip_byte in 0usize..1 << 16,
        flip_bit in 0u8..8,
    ) {
        let records = build_records(&raw);
        let mut bytes = encode_segment(&records);
        let full = SegmentReader::open(&bytes).records();
        let flip_byte = flip_byte % bytes.len();
        bytes[flip_byte] ^= 1 << flip_bit;

        let reader = SegmentReader::open(&bytes);
        let decoded = reader.records();
        prop_assert!(decoded.len() <= full.len());
        for d in &decoded {
            prop_assert!(
                full.iter().any(|r| same_record(d, r)),
                "corruption invented record {d:?}"
            );
        }
    }

    /// Arbitrary garbage bytes never panic the reader.
    #[test]
    fn arbitrary_bytes_never_panic(
        raw in prop::collection::vec(0u16..256, 0..512),
    ) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let reader = SegmentReader::open(&bytes);
        let _ = reader.records();
        let _ = reader.record_count();
    }
}
