//! Property tests of the sample-store segment codec: arbitrary record
//! sets — including NaN and infinite payloads — survive an
//! encode/decode round trip bit-for-bit, and the reader never panics on
//! truncated or bit-flipped segments. Corruption can at worst shrink
//! what a scan returns (the truncated-tail rule), never crash it or
//! invent records. A live [`Store`] driven through a fault-injecting
//! filesystem upholds the same contract: injected write faults never
//! panic recovery and never lose a record covered by a successful
//! flush.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use volley::core::vfs::{CircuitBreaker, FaultFs, IoFaultPlan};
use volley::store::{encode_segment, Record, RecordKind, ScanRange, SegmentReader, Store};

/// A unique on-disk scratch directory per proptest case, so shrinking
/// reruns never collide with each other or with parallel test binaries.
fn case_dir(prefix: &str) -> std::path::PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let id = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("{prefix}-{}-{id}", std::process::id()))
}

/// Payload classes the XOR codec must carry bit-exactly; mixed into
/// every generated record set so NaN/inf coverage never depends on the
/// random bits happening to form one.
const SPECIALS: [f64; 6] = [
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    -0.0,
    f64::MIN_POSITIVE / 2.0, // subnormal
    f64::MAX,
];

/// Builds a valid record set from raw generator output: ticks are the
/// element index (unique per series by construction) and values are
/// arbitrary `f64` bit patterns — with the special-value table woven in
/// — so every payload class rides through the XOR codec.
fn build_records(raw: &[(u8, u8, u64)]) -> Vec<Record> {
    raw.iter()
        .enumerate()
        .map(|(i, &(series, kind, bits))| Record {
            task: u32::from(series % 2),
            monitor: u32::from(series / 2),
            kind: RecordKind::ALL[usize::from(kind) % RecordKind::ALL.len()],
            tick: i as u64,
            value: if i % 5 == 4 {
                SPECIALS[(i / 5) % SPECIALS.len()]
            } else {
                f64::from_bits(bits)
            },
        })
        .collect()
}

/// Bit-exact record comparison (`PartialEq` would treat NaN ≠ NaN).
fn same_record(a: &Record, b: &Record) -> bool {
    a.sort_key() == b.sort_key() && a.value.to_bits() == b.value.to_bits()
}

proptest! {
    /// encode → decode is the identity on the sorted record set, for
    /// every `f64` bit pattern.
    #[test]
    fn segment_round_trips_arbitrary_values(
        raw in prop::collection::vec((0u8..4, 0u8..255, 0u64..u64::MAX), 0..300),
    ) {
        let mut records = build_records(&raw);
        let bytes = encode_segment(&records);
        let reader = SegmentReader::open(&bytes);
        prop_assert!(!reader.truncated());

        records.sort_by_key(Record::sort_key);
        let decoded = reader.records();
        prop_assert_eq!(decoded.len(), records.len());
        for (d, r) in decoded.iter().zip(&records) {
            prop_assert!(same_record(d, r), "decoded {d:?}, appended {r:?}");
        }
    }

    /// Cutting a segment anywhere never panics and never invents
    /// records: whatever survives is a prefix of the full decode.
    #[test]
    fn truncated_segment_never_panics(
        raw in prop::collection::vec((0u8..4, 0u8..255, 0u64..u64::MAX), 1..200),
        cut_ratio in 0.0f64..1.0,
    ) {
        let records = build_records(&raw);
        let bytes = encode_segment(&records);
        let full = SegmentReader::open(&bytes).records();

        let cut = ((bytes.len() as f64) * cut_ratio) as usize;
        let reader = SegmentReader::open(&bytes[..cut]);
        let decoded = reader.records();
        prop_assert!(decoded.len() <= full.len());
        for (d, r) in decoded.iter().zip(&full) {
            prop_assert!(same_record(d, r), "truncation reordered records");
        }
    }

    /// Flipping any single bit never panics, and every record that still
    /// decodes is bit-identical to one the writer appended — the CRC
    /// framing turns corruption into omission, never into wrong data.
    #[test]
    fn bit_flipped_segment_never_panics(
        raw in prop::collection::vec((0u8..4, 0u8..255, 0u64..u64::MAX), 1..200),
        flip_byte in 0usize..1 << 16,
        flip_bit in 0u8..8,
    ) {
        let records = build_records(&raw);
        let mut bytes = encode_segment(&records);
        let full = SegmentReader::open(&bytes).records();
        let flip_byte = flip_byte % bytes.len();
        bytes[flip_byte] ^= 1 << flip_bit;

        let reader = SegmentReader::open(&bytes);
        let decoded = reader.records();
        prop_assert!(decoded.len() <= full.len());
        for d in &decoded {
            prop_assert!(
                full.iter().any(|r| same_record(d, r)),
                "corruption invented record {d:?}"
            );
        }
    }

    /// Arbitrary garbage bytes never panic the reader.
    #[test]
    fn arbitrary_bytes_never_panic(
        raw in prop::collection::vec(0u16..256, 0..512),
    ) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let reader = SegmentReader::open(&bytes);
        let _ = reader.records();
        let _ = reader.record_count();
    }

    /// A live store driven through a fault-injecting filesystem — torn,
    /// short and errored segment writes, an optional ENOSPC storm —
    /// never panics, and every record covered by a successful flush is
    /// still scannable after recovery on a clean filesystem. Faults may
    /// shed unflushed records (that is the degraded mode working), never
    /// flushed ones.
    #[test]
    fn faulted_store_never_loses_flushed_records(
        seed in 0u64..10_000,
        error_rate in 0.0f64..0.6,
        short_rate in 0.0f64..0.6,
        torn_rate in 0.0f64..0.6,
        enospc_from in 0u64..64,
        enospc_ticks in 0u64..32, // 0 = no ENOSPC storm
        count in 1u64..96,
    ) {
        let dir = case_dir("volley-prop-store");
        let mut plan = IoFaultPlan::new(seed)
            .with_error_rate(error_rate)
            .with_short_writes(short_rate)
            .with_torn_writes(torn_rate);
        if enospc_ticks > 0 {
            plan = plan.with_enospc_window(enospc_from, enospc_ticks);
        }
        let mut store = Store::open_on(Arc::new(FaultFs::new(plan)), &dir)
            .unwrap()
            .with_flush_limits(8, u64::MAX)
            .with_breaker(CircuitBreaker::with_backoff(2, 1, 4));

        // `accepted` holds every record the store took into its buffer;
        // whenever the buffer empties the sealed set catches up to it.
        let mut accepted: Vec<u64> = Vec::new();
        let mut sealed = 0usize;
        for t in 0..count {
            let shed_before = store.shed_samples();
            let _ = store.append(Record {
                task: 0,
                monitor: 0,
                kind: RecordKind::ALL[(t % RecordKind::ALL.len() as u64) as usize],
                tick: t,
                value: t as f64,
            });
            if store.shed_samples() == shed_before {
                accepted.push(t);
            }
            if store.buffered() == 0 {
                sealed = accepted.len();
            }
        }
        if store.flush().is_ok() {
            sealed = accepted.len();
        }
        drop(store);

        // Recover on the real filesystem: scanning what the faulted
        // writer left behind must yield every sealed record.
        let recovered = Store::open(&dir).unwrap();
        let ticks: Vec<u64> = recovered
            .scan(&ScanRange::all())
            .unwrap()
            .map(|r| r.tick)
            .collect();
        for t in &accepted[..sealed] {
            prop_assert!(
                ticks.contains(t),
                "flushed tick {t} lost; recovered {ticks:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
