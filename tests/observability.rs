//! Integration: the observability subsystem end to end — instrumented
//! runtime, periodic snapshot dumps in both exposition formats, and the
//! flagship *Volley watching Volley* loop: a self-monitoring task (core
//! adaptive sampling and all) alerting when injected faults spike the
//! runtime's own tick latency.

use std::time::Duration;

use volley::core::task::{MonitorId, TaskSpec};
use volley::obs::{latest_snapshot, names, parse_prometheus, Obs};
use volley::TaskRunner;
use volley_runtime::FaultPlan;

const MONITORS: usize = 3;
const TICKS: usize = 40;
/// The tick where the injected faults land.
const FAULT_TICK: u64 = 10;
/// Collection deadline: a stalled monitor holds the coordinator (and so
/// the runner's tick) for this long — well past the watchdog threshold.
const DEADLINE: Duration = Duration::from_millis(250);
/// Watchdog threshold on the runner tick-latency gauge, microseconds.
/// Healthy ticks on this workload run in the tens of microseconds; the
/// stalled tick must wait out the 250 ms deadline.
const WATCHDOG_THRESHOLD_US: f64 = 100_000.0;

fn spec() -> TaskSpec {
    TaskSpec::builder(100.0 * MONITORS as f64)
        .monitors(MONITORS)
        .error_allowance(0.0)
        .build()
        .unwrap()
}

/// Quiet traces: no state alerts, so everything the watchdog sees comes
/// from the injected faults, not the workload.
fn traces() -> Vec<Vec<f64>> {
    (0..MONITORS)
        .map(|m| {
            (0..TICKS)
                .map(|t| 20.0 + ((t * (3 + m)) % 7) as f64)
                .collect()
        })
        .collect()
}

/// The flagship loop: a coordinator crash plus a monitor stall at the
/// same tick force the post-failover coordinator to wait out the full
/// collection deadline, spiking the runner's tick latency. The
/// self-monitoring task — fed by the obs registry's own gauge through
/// the core `MonitoringService` — must alert on that spike, and on
/// nothing else.
#[test]
fn self_monitor_alerts_on_injected_coordinator_stall() {
    let plan = FaultPlan::new(7)
        .with_coordinator_crash(FAULT_TICK)
        .with_stall(MonitorId(1), FAULT_TICK, 2);
    let report = TaskRunner::new(&spec())
        .unwrap()
        .with_fault_plan(plan)
        .with_tick_deadline(DEADLINE)
        .with_standby(true)
        .with_self_monitor(WATCHDOG_THRESHOLD_US, 0.0)
        .run(&traces())
        .unwrap();

    assert_eq!(report.ticks, TICKS as u64, "the run must complete");
    assert_eq!(report.coordinator_failovers, 1);
    assert_eq!(report.alerts, 0, "quiet workload: no state alerts");
    // Eager watchdog (err = 0): one snapshot read per tick.
    assert_eq!(report.self_monitor_samples, TICKS as u64);
    assert!(
        report.self_monitor_alerts >= 1,
        "watchdog must flag the stalled tick: {report:?}"
    );
    assert!(
        report
            .self_monitor_alert_ticks
            .iter()
            .all(|&t| (FAULT_TICK..FAULT_TICK + 4).contains(&t)),
        "alerts must cluster on the injected fault, got {:?}",
        report.self_monitor_alert_ticks
    );
}

/// Without faults the watchdog stays silent — the spike detection above
/// is signal, not noise.
#[test]
fn self_monitor_quiet_on_healthy_run() {
    let report = TaskRunner::new(&spec())
        .unwrap()
        .with_self_monitor(WATCHDOG_THRESHOLD_US, 0.0)
        .run(&traces())
        .unwrap();
    assert_eq!(report.ticks, TICKS as u64);
    assert_eq!(
        report.self_monitor_alerts, 0,
        "healthy ticks are far below the threshold: {:?}",
        report.self_monitor_alert_ticks
    );
}

/// `--obs-dir` dumps parse back in both exposition formats, and the
/// instrumented counters agree with the runtime's own report.
#[test]
fn obs_dir_emits_parseable_snapshots() {
    let dir = std::env::temp_dir().join("volley-obs-integration");
    let _ = std::fs::remove_dir_all(&dir);

    let obs = Obs::new(true);
    let report = TaskRunner::new(&spec())
        .unwrap()
        .with_obs(obs.clone())
        .with_obs_dir(&dir, 10)
        .run(&traces())
        .unwrap();
    assert_eq!(report.ticks, TICKS as u64);

    // JSON side: schema-checked decode, counters match the report.
    let (path, snapshot) = latest_snapshot(&dir)
        .expect("snapshot dir readable")
        .expect("at least one snapshot dumped");
    assert_eq!(
        snapshot.counters[names::RUNNER_TICKS_TOTAL],
        report.ticks,
        "registry and report must agree"
    );
    assert_eq!(
        snapshot.counters[names::RUNNER_SAMPLES_TOTAL],
        report.total_samples
    );

    // Prometheus side: the sibling .prom file parses and carries the
    // same series.
    let prom = std::fs::read_to_string(path.with_extension("prom")).unwrap();
    let samples = parse_prometheus(&prom).expect("valid exposition text");
    let ticks_sample = samples
        .iter()
        .find(|s| s.name == names::RUNNER_TICKS_TOTAL)
        .expect("runner tick counter exposed");
    assert_eq!(ticks_sample.value, report.ticks as f64);
    assert!(
        samples
            .iter()
            .any(|s| s.name == format!("{}_count", names::COORDINATOR_TICK_NS)),
        "histograms expose summary series"
    );

    // Span log: the teardown dump wrote a chrome-trace document naming
    // the hot-path spans.
    let spans = std::fs::read_to_string(dir.join("spans.json")).unwrap();
    for span in ["coordinator_tick", "monitor_sample", "runner_tick"] {
        assert!(spans.contains(span), "span {span} missing from trace");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
