//! Property-based tests of the core invariants, spanning crates.

use proptest::prelude::*;

use volley::core::accuracy::evaluate_policy;
use volley::core::allocation::{allowance_ladder, AllocationConfig, ErrorAllocator};
use volley::core::stats::OnlineStats;
use volley::{
    exceed_probability_bound, misdetection_bound, AdaptationConfig, AdaptiveSampler, Interval,
    PeriodicSampler,
};
use volley_sim::{EventQueue, SimTime};
use volley_traces::timeseries::{percentile, SeriesSummary};
use volley_traces::zipf::zipf_weights;

proptest! {
    /// Welford-style online statistics match the two-pass definition.
    #[test]
    fn online_stats_match_two_pass(data in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut stats = OnlineStats::with_restart_after(u32::MAX);
        for &x in &data {
            stats.update(x);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let scale = var.abs().max(1.0);
        prop_assert!((stats.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((stats.variance() - var).abs() < 1e-6 * scale);
    }

    /// The violation-likelihood bound is a probability and is monotone in
    /// the number of steps when the drift is non-negative.
    #[test]
    fn exceed_bound_is_probability(
        value in -1e6f64..1e6,
        headroom in 0.0f64..1e6,
        mu in 0.0f64..1e3,
        sigma in 0.0f64..1e3,
        steps in 1u32..64,
    ) {
        let threshold = value + headroom;
        let p = exceed_probability_bound(value, threshold, mu, sigma, steps);
        prop_assert!((0.0..=1.0).contains(&p));
        let p_next = exceed_probability_bound(value, threshold, mu, sigma, steps + 1);
        prop_assert!(p_next >= p - 1e-12, "non-negative drift: later steps riskier");
    }

    /// β(I) is monotone non-decreasing in the interval and bounded by 1.
    #[test]
    fn misdetection_bound_monotone(
        value in -1e3f64..1e3,
        headroom in -10.0f64..1e4,
        mu in -10.0f64..10.0,
        sigma in 0.0f64..100.0,
    ) {
        let threshold = value + headroom;
        let mut prev = 0.0;
        for interval in 1..=24u32 {
            let b = misdetection_bound(value, threshold, mu, sigma, interval);
            prop_assert!((0.0..=1.0).contains(&b));
            prop_assert!(b >= prev - 1e-12);
            prev = b;
        }
    }

    /// The adaptive sampler's interval always stays within [1, I_m], and
    /// its schedule advances strictly.
    #[test]
    fn sampler_interval_bounded(
        values in prop::collection::vec(0.0f64..1000.0, 10..400),
        err in 0.0f64..0.2,
        max_interval in 1u32..32,
        threshold in 1.0f64..2000.0,
    ) {
        let config = AdaptationConfig::builder()
            .error_allowance(err)
            .max_interval(max_interval)
            .patience(3)
            .warmup_samples(2)
            .build()
            .expect("valid");
        let mut sampler = AdaptiveSampler::new(config, threshold);
        let mut tick = 0u64;
        for &v in &values {
            let obs = sampler.observe(tick, v);
            prop_assert!(obs.next_interval.get() >= 1);
            prop_assert!(obs.next_interval <= config.max_interval());
            prop_assert!(obs.next_sample_tick > tick);
            tick = obs.next_sample_tick;
        }
    }

    /// A periodic sampler at the default interval never misses and the
    /// adaptive sampler never costs more than periodic.
    #[test]
    fn adaptive_never_costs_more_than_periodic(
        values in prop::collection::vec(0.0f64..100.0, 50..500),
        err in 0.0f64..0.1,
    ) {
        let threshold = 120.0; // never violated: pure cost comparison
        let config = AdaptationConfig::builder()
            .error_allowance(err)
            .max_interval(8)
            .patience(3)
            .build()
            .expect("valid");
        let mut adaptive = AdaptiveSampler::new(config, threshold);
        let mut periodic = PeriodicSampler::new(Interval::DEFAULT, threshold);
        let a = evaluate_policy(&mut adaptive, &values);
        let p = evaluate_policy(&mut periodic, &values);
        prop_assert!(a.sampling_ops <= p.sampling_ops);
        prop_assert_eq!(p.misdetection_rate(), 0.0);
    }

    /// Allowance allocation always conserves the budget and floors.
    #[test]
    fn allocator_conserves_budget(
        global_err in 0.001f64..0.2,
        monitors in 2usize..12,
        rounds in 1usize..10,
        difficulty_exp in prop::collection::vec(-6.0f64..0.0, 2..12),
    ) {
        let mut allocator =
            ErrorAllocator::new(AllocationConfig::default(), global_err, monitors).expect("valid");
        let ladder = allowance_ladder(global_err);
        let reports: Vec<_> = (0..monitors)
            .map(|i| {
                let difficulty = 10f64.powf(difficulty_exp[i % difficulty_exp.len()]);
                volley::core::adaptation::PeriodReport {
                    observations: 100,
                    avg_beta_current: difficulty,
                    avg_beta_grown: (difficulty * 8.0).min(1.0),
                    avg_potential_reduction: 0.5,
                    interval: Interval::new_clamped(1 + (i as u32 % 4)),
                    at_max_interval: false,
                    cost_curve: ladder.iter().map(|e| (difficulty / e).min(1.0)).collect(),
                }
            })
            .collect();
        for _ in 0..rounds {
            allocator.update(&reports, 0.2).expect("update succeeds");
            let sum: f64 = allocator.allowances().iter().sum();
            prop_assert!(sum <= global_err + 1e-9, "sum {sum} budget {global_err}");
            let floor = global_err * allocator.config().min_fraction;
            for &a in allocator.allowances() {
                prop_assert!(a >= floor - 1e-12);
            }
        }
    }

    /// The event queue delivers every event in timestamp order with FIFO
    /// tie-breaking.
    #[test]
    fn event_queue_orders_events(times in prop::collection::vec(0u64..10_000, 1..300)) {
        let mut queue = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            queue.schedule(SimTime::from_micros(t), seq);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut delivered = 0usize;
        while let Some((t, seq)) = queue.pop() {
            prop_assert!(t >= last_time);
            if t > last_time {
                seen_at_time.clear();
            }
            // FIFO among equal timestamps: sequence numbers increase.
            if let Some(&prev) = seen_at_time.last() {
                prop_assert!(seq > prev);
            }
            seen_at_time.push(seq);
            last_time = t;
            delivered += 1;
        }
        prop_assert_eq!(delivered, times.len());
    }

    /// Percentiles are bounded by the extremes and monotone in p.
    #[test]
    fn percentile_bounds_and_monotonicity(
        mut values in prop::collection::vec(-1e6f64..1e6, 1..200),
    ) {
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let q = percentile(&values, p);
            prop_assert!(q >= values[0] && q <= *values.last().expect("non-empty"));
            prop_assert!(q >= prev);
            prev = q;
        }
        let summary = SeriesSummary::compute(&values).expect("non-empty");
        prop_assert!(summary.min <= summary.q1);
        prop_assert!(summary.q1 <= summary.median);
        prop_assert!(summary.median <= summary.q3);
        prop_assert!(summary.q3 <= summary.max);
    }

    /// Zipf weights are a probability distribution, non-increasing in
    /// rank, and increasingly concentrated with skew.
    #[test]
    fn zipf_weights_well_formed(n in 1usize..200, s in 0.0f64..3.0) {
        let w = zipf_weights(n, s);
        prop_assert_eq!(w.len(), n);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for pair in w.windows(2) {
            prop_assert!(pair[0] >= pair[1] - 1e-15);
        }
        if n > 1 {
            let steeper = zipf_weights(n, s + 0.5);
            prop_assert!(steeper[0] >= w[0] - 1e-15);
        }
    }

    /// Sliding-window aggregates always match a naive recomputation,
    /// including under sparse (gappy) tick sequences.
    #[test]
    fn sliding_window_matches_naive(
        steps in prop::collection::vec((1u64..20, -1e3f64..1e3), 1..150),
        width in 1u64..40,
    ) {
        use volley::core::window::{AggregateKind, SlidingWindow};
        let mut window = SlidingWindow::new(width).expect("valid width");
        let mut history: Vec<(u64, f64)> = Vec::new();
        let mut tick = 0u64;
        for (gap, value) in steps {
            tick += gap;
            window.push(tick, value);
            history.push((tick, value));
            let cutoff = tick.saturating_sub(width - 1);
            let live: Vec<f64> =
                history.iter().filter(|(t, _)| *t >= cutoff).map(|(_, v)| *v).collect();
            let sum: f64 = live.iter().sum();
            prop_assert!((window.aggregate(AggregateKind::Sum) - sum).abs() < 1e-9);
            prop_assert!(
                (window.aggregate(AggregateKind::Mean) - sum / live.len() as f64).abs() < 1e-9
            );
            let max = live.iter().cloned().fold(f64::MIN, f64::max);
            let min = live.iter().cloned().fold(f64::MAX, f64::min);
            prop_assert_eq!(window.aggregate(AggregateKind::Max), max);
            prop_assert_eq!(window.aggregate(AggregateKind::Min), min);
            prop_assert_eq!(window.aggregate(AggregateKind::Count), live.len() as f64);
        }
    }

    /// A band condition at zero allowance detects exactly the violating
    /// samples a direct predicate check finds.
    #[test]
    fn band_condition_at_zero_allowance_is_exact(
        values in prop::collection::vec(-100.0f64..100.0, 10..200),
        low in -80.0f64..-10.0,
        high in 10.0f64..80.0,
    ) {
        use volley::core::condition::{Condition, ConditionSampler};
        let condition = Condition::Outside { low, high };
        let config = AdaptationConfig::builder()
            .error_allowance(0.0)
            .build()
            .expect("valid");
        let mut sampler = ConditionSampler::new(config, condition).expect("valid");
        for (t, &v) in values.iter().enumerate() {
            let obs = sampler.observe(t as u64, v);
            prop_assert_eq!(obs.violation, condition.is_violated(v), "tick {}", t);
            prop_assert_eq!(obs.next_interval.get(), 1, "zero allowance stays periodic");
        }
    }

    /// Ground-truth selectivity of a threshold chosen at selectivity `k`
    /// is at most `k` (exceedances are strict).
    #[test]
    fn selectivity_threshold_bounds_exceedances(
        values in prop::collection::vec(-1e3f64..1e3, 10..500),
        k in 0.5f64..50.0,
    ) {
        let threshold = volley::selectivity_threshold(&values, k).expect("valid");
        let exceed = values.iter().filter(|v| **v > threshold).count() as f64;
        let frac = exceed / values.len() as f64;
        // Interpolated percentiles keep the exceedance fraction within
        // one order-statistic step of k%.
        prop_assert!(frac <= k / 100.0 + 1.0 / values.len() as f64 + 1e-12);
    }
}
