//! End-to-end socket fleet tests: a real `NetCoordinator` event loop
//! serving real `run_agent` connections over localhost TCP and Unix
//! sockets, checked for bit-for-bit report parity against the
//! in-process `TaskRunner` and for robustness under reconnect storms
//! and stalled peers.

use std::thread::{self, JoinHandle};
use std::time::Duration;

use volley_core::task::TaskSpec;
use volley_runtime::net::{
    run_agent, AgentConfig, AgentReport, BackoffConfig, NetAddr, NetCoordinator, NetFaultPlan,
    NetRunOutcome,
};
use volley_runtime::transport::TransportConfig;
use volley_runtime::TaskRunner;

/// The CLI's bursty workload: quiet at ~20% of the local threshold with
/// a violation burst every 50 ticks.
fn bursty_traces(n: usize, ticks: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|m| {
            (0..ticks)
                .map(|t| {
                    let wobble = ((t * (3 + m)) % 7) as f64;
                    if t % 50 == 49 {
                        140.0 + wobble
                    } else {
                        20.0 + wobble
                    }
                })
                .collect()
        })
        .collect()
}

fn spec(n: usize, err: f64) -> TaskSpec {
    TaskSpec::builder(100.0 * n as f64)
        .monitors(n)
        .error_allowance(err)
        .build()
        .unwrap()
}

/// Spawns `agents` threads splitting `n` monitors evenly.
fn spawn_agents(
    addr: &NetAddr,
    task: &TaskSpec,
    n: u32,
    agents: u32,
) -> Vec<JoinHandle<AgentReport>> {
    let per = n.div_ceil(agents);
    (0..agents)
        .map(|a| {
            let config = AgentConfig {
                agent: a,
                addr: addr.clone(),
                spec: task.clone(),
                monitors: (a * per)..((a + 1) * per).min(n),
                transport: TransportConfig::default(),
                backoff: BackoffConfig {
                    base: Duration::from_millis(10),
                    cap: Duration::from_millis(200),
                    max_retries_per_outage: 100,
                },
            };
            thread::spawn(move || run_agent(&config).expect("agent runs to completion"))
        })
        .collect()
}

fn net_run(
    coordinator: NetCoordinator,
    addr: &NetAddr,
    task: &TaskSpec,
    traces: &[Vec<f64>],
    n: u32,
    agents: u32,
) -> (NetRunOutcome, Vec<AgentReport>) {
    let handles = spawn_agents(addr, task, n, agents);
    let outcome = coordinator.run(traces).expect("net run succeeds");
    let reports = handles
        .into_iter()
        .map(|h| h.join().expect("agent thread joins"))
        .collect();
    (outcome, reports)
}

#[test]
fn tcp_fleet_matches_in_process_runner_bit_for_bit() {
    let n = 24usize;
    let task = spec(n, 0.01);
    let traces = bursty_traces(n, 150);
    let baseline = TaskRunner::new(&task)
        .unwrap()
        .run(&traces)
        .expect("in-process run succeeds");

    let coordinator = NetCoordinator::bind(task.clone(), &NetAddr::Tcp("127.0.0.1:0".into()))
        .unwrap()
        .with_wait_timeout(Duration::from_secs(10));
    let addr = NetAddr::Tcp(coordinator.local_addr().unwrap().to_string());
    let (outcome, reports) = net_run(coordinator, &addr, &task, &traces, n as u32, 6);

    assert_eq!(
        outcome.report, baseline,
        "networked report must be bit-for-bit identical to the in-process runner"
    );
    assert!(baseline.alerts > 0, "bursty workload must alert");
    assert_eq!(outcome.net.reconnects, 0, "no reconnects in a clean run");
    assert_eq!(outcome.net.malformed_frames, 0);
    let sent: u64 = reports.iter().map(|r| r.frames_sent).sum();
    assert_eq!(sent, outcome.net.frames_in, "every agent frame arrived");
}

#[cfg(unix)]
#[test]
fn unix_socket_fleet_matches_in_process_runner() {
    let n = 6usize;
    let task = spec(n, 0.01);
    let traces = bursty_traces(n, 60);
    let baseline = TaskRunner::new(&task).unwrap().run(&traces).unwrap();

    let path = std::env::temp_dir().join(format!("volley-net-test-{}.sock", std::process::id()));
    let addr = NetAddr::Unix(path.clone());
    let coordinator = NetCoordinator::bind(task.clone(), &addr)
        .unwrap()
        .with_wait_timeout(Duration::from_secs(10));
    let (outcome, _) = net_run(coordinator, &addr, &task, &traces, n as u32, 2);

    assert_eq!(outcome.report, baseline);
    assert!(!path.exists(), "socket file is unlinked after the run");
}

#[test]
fn reconnect_storm_misses_no_planted_violations() {
    let n = 12usize;
    let task = spec(n, 0.01);
    let traces = bursty_traces(n, 150);
    let baseline = TaskRunner::new(&task).unwrap().run(&traces).unwrap();
    assert!(baseline.alerts > 0, "bursty workload must alert");

    // Storms at ticks 20, 41, 62, ... — never on a burst tick (49, 99,
    // 149), so every planted violation must still be detected.
    let coordinator = NetCoordinator::bind(task.clone(), &NetAddr::Tcp("127.0.0.1:0".into()))
        .unwrap()
        .with_wait_timeout(Duration::from_secs(10))
        .with_tick_deadline(Duration::from_millis(250))
        .with_faults(NetFaultPlan::new(7).with_storm(21, 0.5));
    let addr = NetAddr::Tcp(coordinator.local_addr().unwrap().to_string());
    let (outcome, reports) = net_run(coordinator, &addr, &task, &traces, n as u32, 6);

    assert_eq!(
        outcome.report.alert_ticks, baseline.alert_ticks,
        "storms on quiet ticks must not add or suppress alerts"
    );
    assert!(
        outcome.net.kicked > 0,
        "the storm plan must sever connections"
    );
    let agent_reconnects: u64 = reports.iter().map(|r| r.reconnects).sum();
    assert!(agent_reconnects > 0, "severed agents must have re-dialed");
    assert!(
        outcome.net.reconnects > 0,
        "the coordinator must have absorbed re-hellos"
    );
}

#[test]
fn stalled_peer_is_flow_controlled_then_degraded() {
    use std::io::Write;

    let n = 2usize;
    let task = spec(n, 0.0);
    // Quiet traces: this test is about liveness, not alerts.
    let traces = vec![vec![10.0; 40], vec![10.0; 40]];

    let coordinator = NetCoordinator::bind(task.clone(), &NetAddr::Tcp("127.0.0.1:0".into()))
        .unwrap()
        .with_wait_timeout(Duration::from_secs(10))
        .with_tick_deadline(Duration::from_millis(100))
        .with_quarantine_after(2)
        .with_queue_cap(2)
        .with_idle_timeout(Duration::from_millis(700));
    let local = coordinator.local_addr().unwrap();
    let addr = NetAddr::Tcp(local.to_string());

    // A well-behaved agent hosting monitor 0.
    let agent_handle = {
        let config = AgentConfig {
            agent: 0,
            addr: addr.clone(),
            spec: task.clone(),
            monitors: 0..1,
            transport: TransportConfig::default(),
            backoff: BackoffConfig::default(),
        };
        thread::spawn(move || run_agent(&config).expect("agent runs to completion"))
    };
    // A hostile peer claiming monitor 1: sends its hello, then never
    // reads — the idle timeout must reap the half-open socket, after
    // which monitor 1's frames drop unrouted, and monitor 1 must be
    // quarantined and counted at its local threshold.
    thread::spawn(move || {
        let mut sock = std::net::TcpStream::connect(local).expect("fake peer dials");
        let hello = volley_runtime::net::AgentHello {
            agent: 1,
            monitors: vec![1],
            epoch: 0,
        };
        sock.write_all(&volley_runtime::message::encode(&hello))
            .expect("hello written");
        thread::sleep(Duration::from_secs(20)); // never reads, never closes
    });

    let outcome = coordinator.run(&traces).expect("net run succeeds");
    agent_handle.join().expect("agent joins");

    assert_eq!(
        outcome.report.ticks, 40,
        "the run completes despite the stall"
    );
    assert!(
        outcome.net.unrouted_drops > 0,
        "frames for the reaped peer must be dropped, not buffered: {:?}",
        outcome.net
    );
    assert!(
        outcome.net.idle_closed >= 1,
        "the half-open connection must be reaped: {:?}",
        outcome.net
    );
    assert!(
        outcome.report.quarantines >= 1,
        "monitor 1 must be quarantined: {:?}",
        outcome.report
    );
    assert_eq!(
        outcome.report.missed_tick_reports, 40,
        "monitor 1 is missing every tick"
    );
}
