//! Integration: killing the coordinator mid-run and failing over to the
//! warm standby preserves detection accuracy and the learned per-monitor
//! sampling intervals, costs strictly less than the paper's conservative
//! default-interval restart, and provably fences out stale-epoch frames
//! from a partitioned former fleet member.

use std::time::Duration;

use volley::core::task::{MonitorId, TaskSpec};
use volley::TaskRunner;
use volley_runtime::{FaultPlan, RuntimeReport};

const MONITORS: usize = 4;
const TICKS: usize = 400;
/// Ground-truth violation windows, both *after* the crash so they measure
/// post-recovery detection. Each burst outlasts the max interval (8), so
/// even a fully-grown sampler lands at least one sample inside it. The
/// long quiet lead-in matters: burst deltas inflate the δ statistics for
/// the rest of the windowed-restart horizon, so grown intervals — the
/// learned state whose survival this test measures — exist exactly
/// because the pre-crash stretch is quiet.
const BURSTS: [(u64, u64); 2] = [(260, 272), (340, 352)];
/// Crash mid-quiet-stretch, after the samplers converged to the max
/// interval and a checkpoint captured that.
const CRASH_TICK: u64 = 210;

/// A non-zero error allowance so the samplers actually *learn* grown
/// intervals — the state whose survival this test is about.
fn spec() -> TaskSpec {
    TaskSpec::builder(100.0 * MONITORS as f64)
        .monitors(MONITORS)
        .error_allowance(0.05)
        .max_interval(8)
        .patience(3)
        .warmup_samples(3)
        .build()
        .unwrap()
}

/// Smooth traces (tiny wobble, so β stays under the allowance and
/// intervals grow to the max) with synchronized sustained bursts.
fn traces() -> Vec<Vec<f64>> {
    let local = 100.0;
    (0..MONITORS)
        .map(|m| {
            (0..TICKS as u64)
                .map(|t| {
                    let wobble = ((t * (3 + m as u64)) % 7) as f64 * 0.1;
                    if BURSTS.iter().any(|&(s, e)| (s..e).contains(&t)) {
                        local * 1.4 + wobble
                    } else {
                        local * 0.2 + wobble
                    }
                })
                .collect()
        })
        .collect()
}

/// Whether the run raised at least one alert inside the window — the
/// detection criterion for sustained violations under adaptive sampling
/// (the first few burst ticks may legitimately fall inside a grown
/// interval).
fn detects(report: &RuntimeReport, window: (u64, u64)) -> bool {
    report
        .alert_ticks
        .iter()
        .any(|&t| t >= window.0 && t < window.1)
}

fn wal_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("volley-failover-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.wal", std::process::id()))
}

#[test]
fn checkpointed_failover_preserves_accuracy_and_beats_conservative_restart() {
    let spec = spec();
    let traces = traces();
    let windows = BURSTS;

    let no_fault = TaskRunner::new(&spec).unwrap().run(&traces).unwrap();
    for w in &windows {
        assert!(detects(&no_fault, *w), "no-fault run detects burst {w:?}");
    }
    assert!(
        no_fault.cost_ratio(MONITORS) < 0.7,
        "the workload must reward interval growth (cost ratio {})",
        no_fault.cost_ratio(MONITORS)
    );

    let path = wal_path("accuracy");
    let crash = || FaultPlan::new(11).with_coordinator_crash(CRASH_TICK);
    let checkpointed = TaskRunner::new(&spec)
        .unwrap()
        .with_fault_plan(crash())
        .with_tick_deadline(Duration::from_millis(50))
        .with_standby(true)
        .with_wal(&path, 20)
        .run(&traces)
        .unwrap();
    let conservative = TaskRunner::new(&spec)
        .unwrap()
        .with_fault_plan(crash())
        .with_tick_deadline(Duration::from_millis(50))
        .with_standby(true)
        .run(&traces)
        .unwrap();
    std::fs::remove_file(&path).ok();

    for report in [&checkpointed, &conservative] {
        assert_eq!(report.ticks, TICKS as u64, "failover must not lose ticks");
        assert_eq!(report.coordinator_failovers, 1);
        // Post-recovery detection within tolerance of the no-fault run:
        // both post-crash bursts still alert (the ISSUE tolerance is 2%;
        // sustained bursts achieve 0%).
        for w in &windows {
            assert!(
                report.detects_window(*w),
                "burst {w:?} missing after failover; raised {:?}",
                report.alert_ticks
            );
        }
    }
    assert_eq!(
        checkpointed.checkpoint_restores, MONITORS as u64,
        "every monitor restored from the tick-200 snapshot"
    );
    assert_eq!(conservative.checkpoint_restores, 0);
    assert_eq!(conservative.conservative_restarts, MONITORS as u64);

    // The point of durability: restored intervals keep the grown sampling
    // schedule, so the checkpointed run samples strictly less than the
    // conservative I_d restart — and lands within a whisker of no-fault.
    assert!(
        checkpointed.total_samples < conservative.total_samples,
        "checkpointed {} vs conservative {}",
        checkpointed.total_samples,
        conservative.total_samples
    );
    let drift = checkpointed.total_samples.abs_diff(no_fault.total_samples) as f64
        / no_fault.total_samples as f64;
    assert!(
        drift < 0.10,
        "checkpointed cost {} strays {drift:.3} from no-fault {}",
        checkpointed.total_samples,
        no_fault.total_samples
    );
}

/// Window-detection helper on reports (free-function form reads awkwardly
/// inside the loop above).
trait DetectsWindow {
    fn detects_window(&self, window: (u64, u64)) -> bool;
}

impl DetectsWindow for RuntimeReport {
    fn detects_window(&self, window: (u64, u64)) -> bool {
        detects(self, window)
    }
}

#[test]
fn partition_spanning_failover_fences_stale_frames_then_readmits() {
    let spec = spec();
    let traces = traces();
    let windows = BURSTS;

    let path = wal_path("partition");
    // Monitor 2 is partitioned across the crash: it misses the NewEpoch
    // broadcast, so its post-heal frames carry the dead coordinator's
    // epoch. No supervisor — a restart would hand it the new epoch
    // out-of-band; it must rejoin through stale-frame rejection followed
    // by the epoch-repair handshake.
    let plan = FaultPlan::new(13)
        .with_coordinator_crash(CRASH_TICK)
        .with_partition(&[MonitorId(2)], CRASH_TICK - 10, CRASH_TICK + 20);
    let report = TaskRunner::new(&spec)
        .unwrap()
        .with_fault_plan(plan)
        .with_tick_deadline(Duration::from_millis(50))
        .with_quarantine_after(2)
        .with_supervision(false)
        .with_standby(true)
        .with_wal(&path, 20)
        .run(&traces)
        .unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(report.ticks, TICKS as u64);
    assert_eq!(report.coordinator_failovers, 1);
    assert!(
        report.stale_epoch_frames >= 1,
        "the healed monitor's old-epoch frames must be rejected, got {}",
        report.stale_epoch_frames
    );
    assert!(
        report.quarantines >= 1,
        "the partitioned monitor misses deadlines"
    );
    assert!(
        report.recoveries >= 1,
        "epoch repair readmits the partitioned monitor"
    );
    // Detection survives: during the partition the burst aggregates
    // degraded; afterwards the readmitted monitor reports normally.
    for w in &windows {
        assert!(
            detects(&report, *w),
            "burst {w:?} missing; raised {:?}",
            report.alert_ticks
        );
    }
}

#[test]
fn same_failover_plan_reproduces_identical_reports() {
    let spec = spec();
    let traces: Vec<Vec<f64>> = traces().into_iter().map(|t| t[..250].to_vec()).collect();
    let path = wal_path("determinism");
    let run = || {
        TaskRunner::new(&spec)
            .unwrap()
            .with_fault_plan(FaultPlan::new(99).with_coordinator_crash(120))
            .with_tick_deadline(Duration::from_millis(50))
            .with_standby(true)
            .with_wal(&path, 25)
            .run(&traces)
            .unwrap()
    };
    let first = run();
    let second = run();
    std::fs::remove_file(&path).ok();
    assert_eq!(first, second, "failover must be deterministic");
    assert_eq!(first.coordinator_failovers, 1);
    assert_eq!(first.checkpoint_restores, MONITORS as u64);
}
