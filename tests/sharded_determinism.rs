//! Cross-thread determinism of the sharded simulation engine and the
//! fleet runner: for a fixed seed, results are bit-identical no matter
//! how many worker threads execute them. Thread count may only change
//! wall-clock time, never a single reported number.

use std::time::Duration;

use volley::prelude::*;
use volley::runtime::{FaultPath, FaultPlan};
use volley::sim::{EngineConfig, ShardedEngine};
use volley_core::task::MonitorId;

const SEEDS: [u64; 3] = [1, 2, 3];
const THREADS: [usize; 3] = [1, 2, 8];

fn small_config(seed: u64) -> VolleyConfig {
    VolleyConfig::new()
        .cluster(ClusterConfig::new(4, 6, 1))
        .ticks(200)
        .seed(seed)
}

#[test]
fn network_scenario_identical_across_thread_counts() {
    for seed in SEEDS {
        let config = small_config(seed);
        let baseline = config.network_scenario().run_parallel(1);
        for threads in THREADS {
            let report = config.network_scenario().run_parallel(threads);
            assert_eq!(
                report, baseline,
                "network scenario diverged at seed {seed}, {threads} threads"
            );
        }
    }
}

#[test]
fn system_and_application_scenarios_identical_across_thread_counts() {
    let config = small_config(2);
    let system_baseline = config.system_scenario().run_parallel(1);
    let application_baseline = config.application_scenario().run_parallel(1);
    for threads in THREADS {
        assert_eq!(
            config.system_scenario().run_parallel(threads),
            system_baseline,
            "system scenario diverged at {threads} threads"
        );
        assert_eq!(
            config.application_scenario().run_parallel(threads),
            application_baseline,
            "application scenario diverged at {threads} threads"
        );
    }
}

#[test]
fn distributed_scenario_identical_across_thread_counts() {
    for seed in SEEDS {
        // Task size 5 over 4-VM shards: tasks straddle shard boundaries,
        // exercising the cross-shard telemetry merge.
        let config = VolleyConfig::new()
            .cluster(ClusterConfig::new(4, 4, 1))
            .ticks(150)
            .seed(seed);
        let baseline = config.distributed_scenario(5).run_parallel(1);
        for threads in THREADS {
            let report = config.distributed_scenario(5).run_parallel(threads);
            assert_eq!(
                report, baseline,
                "distributed scenario diverged at seed {seed}, {threads} threads"
            );
        }
    }
}

/// The engine's per-shard RNG streams are a function of (seed, shard)
/// alone: a worker that consumes randomness while exchanging cross-shard
/// messages still converges to the same state on every thread count.
#[test]
fn engine_rng_streams_identical_across_thread_counts() {
    struct Mixer {
        acc: u64,
    }
    impl volley::sim::ShardWorker for Mixer {
        type Event = u32;
        type Msg = u64;
        fn handle(
            &mut self,
            ctx: &mut volley::sim::EpochCtx<'_, Self::Event, Self::Msg>,
            time: SimTime,
            event: Self::Event,
        ) {
            use rand::Rng;
            let draw: u64 = ctx.rng().gen();
            self.acc = self
                .acc
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(draw ^ u64::from(event));
            let shards = 4u32;
            let next = ShardId((ctx.shard().0 + 1) % shards);
            ctx.send(next, self.acc);
            if event < 40 {
                ctx.schedule(time + SimDuration::from_micros(10), event + 1);
            }
        }
        fn on_message(
            &mut self,
            _ctx: &mut volley::sim::EpochCtx<'_, Self::Event, Self::Msg>,
            from: ShardId,
            msg: Self::Msg,
        ) {
            self.acc = self.acc.wrapping_add(msg.rotate_left(from.0));
        }
    }

    let plan = ShardPlan::by_coordinator_group(ClusterConfig::new(8, 2, 2));
    assert_eq!(plan.shard_count(), 4);
    for seed in SEEDS {
        let mut baseline: Option<Vec<u64>> = None;
        for threads in THREADS {
            let engine = ShardedEngine::new(EngineConfig {
                threads,
                epoch: SimDuration::from_micros(50),
                horizon: SimTime::from_micros(500),
            });
            let (workers, _) = engine.run(
                &plan,
                seed,
                |_, ctx| {
                    ctx.schedule(SimTime::ZERO, 0u32);
                    Mixer { acc: seed }
                },
                None,
            );
            let accs: Vec<u64> = workers.iter().map(|w| w.acc).collect();
            match &baseline {
                None => baseline = Some(accs),
                Some(expected) => assert_eq!(
                    &accs, expected,
                    "engine RNG diverged at seed {seed}, {threads} threads"
                ),
            }
        }
    }
}

fn fleet_tasks(seed: u64, faults: bool) -> Vec<volley::runtime::FleetTask> {
    let workload = HttpWorkloadConfig::builder()
        .seed(seed)
        .objects(9)
        .requests_per_tick(900.0)
        .build()
        .generate(120);
    (0..3)
        .map(|task| {
            let traces: Vec<Vec<f64>> = (0..3)
                .map(|m| workload.object_rate(task * 3 + m).to_vec())
                .collect();
            let threshold: f64 = traces
                .iter()
                .map(|t| selectivity_threshold(t, 5.0).unwrap())
                .sum();
            let spec = VolleyConfig::new()
                .error_allowance(0.02)
                .max_interval(8)
                .task_spec(threshold, 3)
                .expect("valid spec");
            let task = volley::runtime::FleetTask::from_spec(spec, traces);
            if faults {
                // Tick-indexed faults and a seeded drop plan: deterministic
                // regardless of scheduling, unlike wall-clock stalls.
                let plan = FaultPlan::new(seed)
                    .with_drop_rate(FaultPath::ViolationReport, 0.2)
                    .with_duplication_rate(0.1)
                    .with_crash(MonitorId(1), 60);
                task.with_faults(plan, Duration::from_millis(200))
            } else {
                task
            }
        })
        .collect()
}

#[test]
fn fleet_runner_identical_across_thread_caps() {
    for seed in SEEDS {
        let (baseline_reports, baseline_summary) = FleetRunner::new()
            .with_threads(1)
            .run(fleet_tasks(seed, false))
            .expect("fleet run succeeds");
        for threads in THREADS {
            let (reports, summary) = FleetRunner::new()
                .with_threads(threads)
                .run(fleet_tasks(seed, false))
                .expect("fleet run succeeds");
            assert_eq!(
                reports, baseline_reports,
                "fleet reports diverged at seed {seed}, cap {threads}"
            );
            assert_eq!(
                summary, baseline_summary,
                "fleet summary diverged at seed {seed}, cap {threads}"
            );
        }
    }
}

#[test]
fn fleet_runner_identical_across_thread_caps_under_faults() {
    for seed in SEEDS {
        let (baseline_reports, baseline_summary) = FleetRunner::new()
            .with_threads(1)
            .run(fleet_tasks(seed, true))
            .expect("fleet run succeeds");
        // Faults actually fired: the crashed monitor was quarantined.
        assert!(
            baseline_reports.iter().all(|r| r.quarantines >= 1),
            "expected the injected crash to register"
        );
        for threads in THREADS {
            let (reports, summary) = FleetRunner::new()
                .with_threads(threads)
                .run(fleet_tasks(seed, true))
                .expect("fleet run succeeds");
            assert_eq!(
                reports, baseline_reports,
                "faulted fleet reports diverged at seed {seed}, cap {threads}"
            );
            assert_eq!(
                summary, baseline_summary,
                "faulted fleet summary diverged at seed {seed}, cap {threads}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Old-engine golden pins.
//
// The digests below were captured from the previous serial
// collect-route-sort engine immediately before the lane-based rewrite
// landed, by hashing the `Debug` form of each report with FNV-1a 64.
// They pin the cut-over: the new engine must reproduce the old engine's
// output byte-for-byte, at every thread count, fault plan included.
// ---------------------------------------------------------------------------

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[test]
fn network_scenario_matches_pre_rewrite_goldens() {
    const GOLDEN: [(u64, u64); 3] = [
        (1, 0xad22247ad9454af3),
        (2, 0x80f435f28533dd94),
        (3, 0x71e19e010bf98071),
    ];
    for (seed, expected) in GOLDEN {
        for threads in THREADS {
            let report = small_config(seed).network_scenario().run_parallel(threads);
            assert_eq!(
                fnv1a(&format!("{report:?}")),
                expected,
                "network scenario drifted from the pre-rewrite engine at seed {seed}, {threads} threads"
            );
        }
    }
}

#[test]
fn system_and_application_scenarios_match_pre_rewrite_goldens() {
    let config = small_config(2);
    for threads in THREADS {
        let system = config.system_scenario().run_parallel(threads);
        assert_eq!(
            fnv1a(&format!("{system:?}")),
            0xc28d5b03614ecfdf,
            "system scenario drifted from the pre-rewrite engine at {threads} threads"
        );
        let application = config.application_scenario().run_parallel(threads);
        assert_eq!(
            fnv1a(&format!("{application:?}")),
            0x6d60381d2b2892c2,
            "application scenario drifted from the pre-rewrite engine at {threads} threads"
        );
    }
}

#[test]
fn distributed_scenario_matches_pre_rewrite_goldens() {
    const GOLDEN: [(u64, u64); 3] = [
        (1, 0xf4d196cbf2c15a07),
        (2, 0xe20744ba97266abd),
        (3, 0x9ad280293478747f),
    ];
    for (seed, expected) in GOLDEN {
        let config = VolleyConfig::new()
            .cluster(ClusterConfig::new(4, 4, 1))
            .ticks(150)
            .seed(seed);
        for threads in THREADS {
            let report = config.distributed_scenario(5).run_parallel(threads);
            assert_eq!(
                fnv1a(&format!("{report:?}")),
                expected,
                "distributed scenario drifted from the pre-rewrite engine at seed {seed}, {threads} threads"
            );
        }
    }
}

#[test]
fn fleet_runner_matches_pre_rewrite_goldens() {
    const GOLDEN_CLEAN: [(u64, u64); 3] = [
        (1, 0x1c71bb50c002a22c),
        (2, 0x6dd252597a6c5e0f),
        (3, 0x549fa96f02508311),
    ];
    const GOLDEN_FAULTED: [(u64, u64); 3] = [
        (1, 0x25402d9b54de4bb4),
        (2, 0x4dc7ad687bd5cf37),
        (3, 0x36dfe98fd9eb14bf),
    ];
    for (goldens, faults) in [(GOLDEN_CLEAN, false), (GOLDEN_FAULTED, true)] {
        for (seed, expected) in goldens {
            for threads in THREADS {
                let (reports, summary) = FleetRunner::new()
                    .with_threads(threads)
                    .run(fleet_tasks(seed, faults))
                    .expect("fleet run succeeds");
                // Fleet tasks never gate, so the multi-task section is
                // always absent; masking it keeps the digests comparable
                // to the reports captured before `RuntimeReport` grew
                // the field.
                let repr = format!("{:?}", (reports, summary)).replace(", multitask: None", "");
                assert_eq!(
                    fnv1a(&repr),
                    expected,
                    "fleet runner (faults: {faults}) drifted from the pre-rewrite engine at seed {seed}, cap {threads}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Lane delivery order == the old engine's sorted-merge order.
//
// The old barrier tagged every message with a per-source sequence number,
// gathered all (dst, src, seq) triples, and sorted each destination's
// inbox by (src, seq). The lane-based barrier skips the sort: it walks
// source lanes in ascending order and each lane preserves push order,
// which is the same total order by construction. This property test
// drives arbitrary send patterns through the engine and checks the
// delivered order against the sort-based definition.
// ---------------------------------------------------------------------------

use proptest::prelude::*;

#[derive(Debug, Default)]
struct LaneProbe {
    /// (dst, payload) pairs to emit from this shard, in order.
    sends: Vec<(u32, u64)>,
    /// (src, payload) pairs in the order the barrier delivered them.
    received: Vec<(u32, u64)>,
}

impl volley::sim::ShardWorker for LaneProbe {
    type Event = ();
    type Msg = u64;
    fn handle(
        &mut self,
        ctx: &mut volley::sim::EpochCtx<'_, Self::Event, Self::Msg>,
        _time: SimTime,
        _event: Self::Event,
    ) {
        for &(dst, payload) in &self.sends {
            ctx.send(ShardId(dst), payload);
        }
    }
    fn on_message(
        &mut self,
        _ctx: &mut volley::sim::EpochCtx<'_, Self::Event, Self::Msg>,
        from: ShardId,
        msg: Self::Msg,
    ) {
        self.received.push((from.0, msg));
    }
}

proptest! {
    #[test]
    fn lane_delivery_order_equals_sorted_merge_order(
        sends in prop::collection::vec((0u32..4, 0u32..4, 0u16..512), 0..96),
    ) {
        let shards = 4u32;
        // Old-engine definition: per destination, sort by (src, per-src
        // send sequence). Payloads carry (src, seq) so the expectation is
        // computable without touching engine internals.
        let mut per_shard_sends: Vec<Vec<(u32, u64)>> = vec![Vec::new(); shards as usize];
        let mut expected: Vec<Vec<(u32, u64)>> = vec![Vec::new(); shards as usize];
        for (i, &(src, dst, tag)) in sends.iter().enumerate() {
            let payload = (u64::from(src) << 48) | (u64::from(tag) << 24) | i as u64;
            per_shard_sends[src as usize].push((dst, payload));
            expected[dst as usize].push((src, payload));
        }
        for inbox in &mut expected {
            // Stable sort by source: within a source, send order is kept,
            // exactly what the old per-source sequence numbers encoded.
            inbox.sort_by_key(|&(src, _)| src);
        }

        let plan = ShardPlan::by_coordinator_group(ClusterConfig::new(8, 2, 2));
        assert_eq!(plan.shard_count(), shards);
        let mut baseline: Option<Vec<Vec<(u32, u64)>>> = None;
        for threads in [1usize, 4] {
            let engine = ShardedEngine::new(EngineConfig {
                threads,
                epoch: SimDuration::from_micros(50),
                horizon: SimTime::from_micros(50),
            });
            let (workers, _) = engine.run(
                &plan,
                7,
                |shard, ctx| {
                    ctx.schedule(SimTime::ZERO, ());
                    LaneProbe {
                        sends: per_shard_sends[shard.0 as usize].clone(),
                        received: Vec::new(),
                    }
                },
                None,
            );
            let received: Vec<Vec<(u32, u64)>> =
                workers.into_iter().map(|w| w.received).collect();
            prop_assert_eq!(&received, &expected, "lane order != sorted-merge order at {} threads", threads);
            match &baseline {
                None => baseline = Some(received),
                Some(b) => prop_assert_eq!(&received, b),
            }
        }
    }
}
