//! Integration: storage faults degrade persistence, never detection.
//!
//! A mid-run ENOSPC storm (and a separate random-fault soak) hammers
//! every durability plane at once — the coordinator WAL, the sample
//! store, obs snapshot exposition — while the distributed runtime keeps
//! monitoring. The alert schedule must come out bit-identical to a
//! fault-free run at the same seed, the degradation section of the
//! report must show the circuit breakers tripping and re-arming, and
//! recording must resume after the storm clears.

use std::sync::Arc;
use std::time::Duration;

use volley::core::task::TaskSpec;
use volley::core::vfs::{CircuitBreaker, FaultFs, IoFaultPlan};
use volley::store::{SampleRecorder, ScanRange, Store, TaskMeta};
use volley::TaskRunner;
use volley_runtime::{FaultPlan, WalSyncPolicy};

const MONITORS: usize = 5;
const TICKS: usize = 200;
const BURST_EVERY: usize = 50;

/// Error allowance 0 keeps every monitor at the default interval, so the
/// fault-free alert schedule is exact: one alert per burst tick.
fn spec() -> TaskSpec {
    TaskSpec::builder(100.0 * MONITORS as f64)
        .monitors(MONITORS)
        .error_allowance(0.0)
        .max_interval(8)
        .patience(3)
        .build()
        .unwrap()
}

/// Quiet at ~20% of the local threshold; every 50th tick all monitors
/// spike together for an unambiguous ground-truth alert.
fn traces() -> Vec<Vec<f64>> {
    let local = 100.0;
    (0..MONITORS)
        .map(|m| {
            (0..TICKS)
                .map(|t| {
                    let wobble = ((t * (3 + m)) % 7) as f64;
                    if t % BURST_EVERY == BURST_EVERY - 1 {
                        local * 1.4 + wobble
                    } else {
                        local * 0.2 + wobble
                    }
                })
                .collect()
        })
        .collect()
}

/// A scratch directory unique to this test binary invocation.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("volley-io-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn meta() -> TaskMeta {
    TaskMeta {
        monitors: MONITORS,
        global_threshold: 100.0 * MONITORS as f64,
        error_allowance: 0.0,
        ticks: TICKS as u64,
        seed: 7,
    }
}

/// Builds the runner every scenario shares: WAL + obs dumping + a
/// generous deadline so slow CI machines never quarantine a monitor.
fn runner(spec: &TaskSpec, dir: &std::path::Path, tag: &str) -> TaskRunner {
    TaskRunner::new(spec)
        .unwrap()
        .with_tick_deadline(Duration::from_millis(3000))
        .with_quarantine_after(3)
        .with_wal(dir.join(format!("{tag}.wal")), 20)
        .with_wal_sync(WalSyncPolicy::EveryN(8))
        .with_obs_dir(dir.join(format!("obs-{tag}")), 25)
}

#[test]
fn enospc_storm_leaves_alerts_bit_identical_and_rearms() {
    let spec = spec();
    let traces = traces();
    let dir = scratch("enospc");

    // Fault-free baseline with the same sinks attached.
    let clean_store = Store::open(dir.join("store-clean")).unwrap();
    clean_store.write_meta(&meta()).unwrap();
    let clean_recorder = SampleRecorder::new(clean_store);
    let clean = runner(&spec, &dir, "clean")
        .with_recorder(clean_recorder.clone())
        .run(&traces)
        .unwrap();
    clean_recorder.flush();
    assert_eq!(clean.alerts, (TICKS / BURST_EVERY) as u64);
    assert!(!clean.degradation.any(), "no faults, no degradation");

    // Same seed, plus an ENOSPC storm covering ticks 60..120 on every
    // durability plane: WAL and obs through the runner's fault plan, the
    // sample store through a fault-wrapped VFS (the same split the CLI
    // uses).
    let io = IoFaultPlan::new(7).with_enospc_window(60, 60);
    let store_dir = dir.join("store-faulted");
    // Seal small segments often so the storm is felt within its window,
    // and probe on a short backoff so the re-arm lands well before the
    // run ends.
    let store = Store::open_on(Arc::new(FaultFs::new(io.clone())), &store_dir)
        .unwrap()
        .with_flush_limits(32, 16)
        .with_breaker(CircuitBreaker::with_backoff(2, 2, 8));
    store.write_meta(&meta()).unwrap();
    let recorder = SampleRecorder::new(store);
    let report = runner(&spec, &dir, "faulted")
        .with_fault_plan(FaultPlan::new(7).with_io_faults(io))
        .with_recorder(recorder.clone())
        .run(&traces)
        .unwrap();
    recorder.flush();

    // Detection is untouched: the alert schedule is bit-identical.
    assert_eq!(report.alert_ticks, clean.alert_ticks);
    assert_eq!(report.ticks, clean.ticks);

    // The storm was felt: breakers tripped, samples were shed, WAL
    // writes failed — and everything re-armed once space came back.
    let d = &report.degradation;
    assert!(d.any(), "degradation section must record the storm");
    assert!(d.wal_write_failures > 0, "WAL felt the storm: {d:?}");
    assert!(d.wal_trips >= 1 && d.wal_rearms >= 1, "WAL re-armed: {d:?}");
    assert!(d.store_shed_samples > 0, "store went lossy: {d:?}");
    assert!(
        d.store_trips >= 1 && d.store_rearms >= 1,
        "store re-armed: {d:?}"
    );
    assert!(!d.wal_degraded_at_end, "storm cleared: {d:?}");
    assert!(!d.store_degraded_at_end, "storm cleared: {d:?}");
    assert!(!d.obs_degraded_at_end, "storm cleared: {d:?}");
    assert!(d.io_faults_injected > 0);

    // Recording resumed after the re-arm: post-storm ticks are on disk.
    let recovered = Store::open(&store_dir).unwrap();
    let last_tick = recovered
        .scan(&ScanRange::all())
        .unwrap()
        .map(|r| r.tick)
        .max()
        .expect("post-storm segments exist");
    assert!(
        last_tick >= 150,
        "recording resumed after the storm (last tick {last_tick})"
    );
}

#[test]
fn random_fault_soak_never_perturbs_detection() {
    let spec = spec();
    let traces = traces();
    let dir = scratch("soak");

    let clean = runner(&spec, &dir, "clean").run(&traces).unwrap();
    assert_eq!(clean.alerts, (TICKS / BURST_EVERY) as u64);

    // Torn, short, errored and unsynced writes at aggressive rates on
    // the WAL and obs planes for the whole run.
    let io = IoFaultPlan::new(21)
        .with_error_rate(0.3)
        .with_short_writes(0.2)
        .with_torn_writes(0.2)
        .with_sync_errors(0.3);
    let report = runner(&spec, &dir, "faulted")
        .with_fault_plan(FaultPlan::new(21).with_io_faults(io))
        .run(&traces)
        .unwrap();

    assert_eq!(report.alert_ticks, clean.alert_ticks);
    assert!(report.degradation.io_faults_injected > 0);
}
