//! Property tests of the §II.B correlation detector and plan generator:
//! the lag window's boundary is exact (a leader alert `lag` ticks back
//! counts, `lag + 1` does not), plans stay two-level — leaders are never
//! themselves gated — under arbitrary violation histories and cost
//! vectors, and the necessity-confidence estimate moves the right way
//! when evidence arrives: confirming observations never lower it,
//! refuting observations never raise it.

use proptest::prelude::*;

use volley::core::correlation::{CorrelationConfig, CorrelationDetector};
use volley::core::task::TaskId;

fn ids(n: u64) -> Vec<TaskId> {
    (0..n).map(TaskId).collect()
}

/// A detector trusting single observations, so boundary cases are
/// visible without bulk support.
fn config(lag_window: u32) -> CorrelationConfig {
    CorrelationConfig {
        min_support: 1,
        lag_window,
        ..CorrelationConfig::default()
    }
}

/// Decodes one generated row of per-task activity bits.
fn row_of(bits: &[u32]) -> Vec<bool> {
    bits.iter().map(|&b| b == 1).collect()
}

proptest! {
    /// The lag window boundary is inclusive and exact: with the leader
    /// firing `delta` ticks before each follower violation, necessity
    /// confidence is 1 when `delta ≤ lag_window` and 0 when it exceeds
    /// it — for every (lag, delta) combination, at every period.
    #[test]
    fn lag_window_boundary_is_exact(
        lag in 0u32..12,
        delta in 0u64..24,
        repeats in 3u64..20,
    ) {
        // Periods long enough that the previous cycle's leader pulse can
        // never fall inside the current follower's window.
        let period = delta + u64::from(lag) + 2;
        let mut det = CorrelationDetector::new(config(lag), ids(2));
        for k in 0..repeats {
            let base = k * period;
            if delta == 0 {
                // Simultaneous activity: recency updates first, so the
                // same-tick leader pulse is inside the window.
                det.observe(base, &[true, true]);
            } else {
                det.observe(base, &[true, false]);
                det.observe(base + delta, &[false, true]);
            }
        }
        let confidence = det
            .necessity_confidence(TaskId(0), TaskId(1))
            .expect("every cycle adds follower support");
        if delta <= u64::from(lag) {
            prop_assert_eq!(confidence, 1.0, "delta {} within lag {}", delta, lag);
        } else {
            prop_assert_eq!(confidence, 0.0, "delta {} beyond lag {}", delta, lag);
        }
    }

    /// Under arbitrary violation histories (and arbitrary thresholds),
    /// derived plans are two-level: no task is both a leader and a gated
    /// follower, and every gate clears the configured confidence floor.
    #[test]
    fn leaders_are_never_gated(
        tasks in 2usize..6,
        history in prop::collection::vec(prop::collection::vec(0u32..2, 6..7), 10..120),
        min_confidence in 0.05f64..1.0,
        lag in 0u32..5,
    ) {
        let cfg = CorrelationConfig {
            min_confidence,
            min_support: 1,
            lag_window: lag,
            ..CorrelationConfig::default()
        };
        let mut det = CorrelationDetector::new(cfg, ids(tasks as u64));
        for (tick, bits) in history.iter().enumerate() {
            det.observe(tick as u64, &row_of(&bits[..tasks]));
        }
        let plan = det.plan();
        for (follower, gate) in plan.iter() {
            prop_assert!(
                plan.gate(gate.leader).is_none(),
                "leader {} of follower {} is itself gated",
                gate.leader,
                follower
            );
            prop_assert!(gate.leader != *follower, "self-gating");
            prop_assert!(
                gate.confidence >= min_confidence,
                "gate confidence {} below floor {}",
                gate.confidence,
                min_confidence
            );
        }
    }

    /// The two-level guarantee also holds for cost-aware plans, whatever
    /// the cost vector — including NaN, zero and short vectors, which
    /// fall back to unit costs.
    #[test]
    fn cost_aware_plans_stay_two_level(
        history in prop::collection::vec(prop::collection::vec(0u32..2, 4..5), 10..80),
        raw_costs in prop::collection::vec((0u8..3, 1u32..10_000), 0..6),
    ) {
        let cfg = CorrelationConfig {
            min_confidence: 0.5,
            min_support: 1,
            ..CorrelationConfig::default()
        };
        let mut det = CorrelationDetector::new(cfg, ids(4));
        for (tick, bits) in history.iter().enumerate() {
            det.observe(tick as u64, &row_of(bits));
        }
        let costs: Vec<f64> = raw_costs
            .iter()
            .map(|&(kind, magnitude)| match kind {
                0 => f64::NAN,
                1 => 0.0,
                _ => f64::from(magnitude) / 100.0,
            })
            .collect();
        let plan = det.plan_with_costs(&costs);
        for (_, gate) in plan.iter() {
            prop_assert!(plan.gate(gate.leader).is_none());
        }
    }

    /// Confidence is monotone in the evidence: starting from an
    /// arbitrary history, appending a *confirming* observation (leader
    /// active alongside the follower violation) never lowers the
    /// estimate, and appending a *refuting* one (follower violates with
    /// the leader long quiet) never raises it.
    #[test]
    fn confidence_is_monotone_in_support(
        history in prop::collection::vec((0u32..2, 0u32..2), 1..150),
        lag in 0u32..6,
        confirm in 0u32..2,
    ) {
        let confirm = confirm == 1;
        let mut det = CorrelationDetector::new(config(lag), ids(2));
        for (tick, &(leader, follower)) in history.iter().enumerate() {
            det.observe(tick as u64, &[leader == 1, follower == 1]);
        }
        let before = det.necessity_confidence(TaskId(0), TaskId(1));
        // Far enough past the history that no old leader pulse lingers
        // inside the lag window of the appended tick.
        let next = history.len() as u64 + u64::from(lag) + 1;
        det.observe(next, &[confirm, true]);
        let after = det
            .necessity_confidence(TaskId(0), TaskId(1))
            .expect("the appended violation provides support");
        if let Some(before) = before {
            if confirm {
                prop_assert!(
                    after >= before,
                    "confirming evidence lowered confidence {} -> {}",
                    before,
                    after
                );
            } else {
                prop_assert!(
                    after <= before,
                    "refuting evidence raised confidence {} -> {}",
                    before,
                    after
                );
            }
        } else if confirm {
            prop_assert_eq!(after, 1.0, "first evidence is confirming");
        } else {
            prop_assert_eq!(after, 0.0, "first evidence is refuting");
        }
    }
}
