//! Integration: monitor-level adaptation meets its cost/accuracy contract
//! on all three workload families of the paper's evaluation.

use volley::core::accuracy::evaluate_policy;
use volley::{
    AdaptationConfig, AdaptiveSampler, HttpWorkloadConfig, NetflowConfig, SystemMetricsGenerator,
};
use volley_traces::DiurnalPattern;

fn adaptation(err: f64) -> AdaptationConfig {
    AdaptationConfig::builder()
        .error_allowance(err)
        .max_interval(16)
        .patience(10)
        .build()
        .expect("valid adaptation config")
}

fn family_traces() -> Vec<(&'static str, Vec<Vec<f64>>)> {
    let ticks = 4000;
    let network: Vec<Vec<f64>> = NetflowConfig::builder()
        .seed(1)
        .vms(6)
        .diurnal(DiurnalPattern::new(ticks as u64, 0.4))
        .build()
        .generate(ticks)
        .into_iter()
        .map(|t| t.rho)
        .collect();
    let sysgen = SystemMetricsGenerator::new(2).with_diurnal_period(ticks as u64);
    let system: Vec<Vec<f64>> = (0..6).map(|m| sysgen.trace(0, m * 11, ticks)).collect();
    let http = HttpWorkloadConfig::builder()
        .seed(3)
        .objects(6)
        .requests_per_tick(6000.0)
        .diurnal(DiurnalPattern::new(ticks as u64, 0.6))
        .build()
        .generate(ticks);
    let application: Vec<Vec<f64>> = (0..6).map(|o| http.object_rate(o).to_vec()).collect();
    vec![
        ("network", network),
        ("system", system),
        ("application", application),
    ]
}

#[test]
fn saves_cost_on_every_family() {
    for (family, traces) in family_traces() {
        let mut merged: Option<volley::AccuracyReport> = None;
        for trace in &traces {
            let threshold = volley::selectivity_threshold(trace, 1.0).expect("valid trace");
            let mut policy = AdaptiveSampler::new(adaptation(0.02), threshold);
            let report = evaluate_policy(&mut policy, trace);
            merged = Some(merged.map(|m| m.merged(&report)).unwrap_or(report));
        }
        let report = merged.expect("non-empty");
        assert!(
            report.savings() > 0.15,
            "{family}: expected >15% savings, got {:.3}",
            report.savings()
        );
    }
}

#[test]
fn misdetection_tracks_allowance_scale() {
    // Measured misses should stay within a small factor of the allowance
    // (the paper reports "smaller or close to" the allowance; Chebyshev
    // conservatism usually gives much less).
    for (family, traces) in family_traces() {
        let mut merged: Option<volley::AccuracyReport> = None;
        for trace in &traces {
            let threshold = volley::selectivity_threshold(trace, 1.0).expect("valid trace");
            let mut policy = AdaptiveSampler::new(adaptation(0.01), threshold);
            let report = evaluate_policy(&mut policy, trace);
            merged = Some(merged.map(|m| m.merged(&report)).unwrap_or(report));
        }
        let report = merged.expect("non-empty");
        assert!(
            report.misdetection_rate() <= 0.05,
            "{family}: miss rate {:.4} far above the 0.01 allowance",
            report.misdetection_rate()
        );
    }
}

#[test]
fn cost_is_monotone_in_allowance() {
    let (_, traces) = &family_traces()[0];
    let trace = &traces[0];
    let threshold = volley::selectivity_threshold(trace, 1.0).expect("valid trace");
    let mut previous = f64::INFINITY;
    for err in [0.002, 0.008, 0.032] {
        let mut policy = AdaptiveSampler::new(adaptation(err), threshold);
        let report = evaluate_policy(&mut policy, trace);
        assert!(
            report.cost_ratio() <= previous + 0.05,
            "err={err}: ratio {} vs previous {previous}",
            report.cost_ratio()
        );
        previous = report.cost_ratio();
    }
}

#[test]
fn zero_allowance_is_lossless() {
    for (_, traces) in family_traces() {
        let trace = &traces[0];
        let threshold = volley::selectivity_threshold(trace, 2.0).expect("valid trace");
        let mut policy = AdaptiveSampler::new(adaptation(0.0), threshold);
        let report = evaluate_policy(&mut policy, trace);
        assert_eq!(report.misdetection_rate(), 0.0);
        assert_eq!(report.cost_ratio(), 1.0);
    }
}

#[test]
fn higher_selectivity_threshold_saves_more() {
    let (_, traces) = &family_traces()[0];
    let trace = &traces[1];
    let tight = volley::selectivity_threshold(trace, 0.1).expect("valid trace");
    let loose = volley::selectivity_threshold(trace, 6.4).expect("valid trace");
    assert!(tight >= loose);
    let mut p_tight = AdaptiveSampler::new(adaptation(0.016), tight);
    let mut p_loose = AdaptiveSampler::new(adaptation(0.016), loose);
    let r_tight = evaluate_policy(&mut p_tight, trace);
    let r_loose = evaluate_policy(&mut p_loose, trace);
    assert!(
        r_tight.cost_ratio() <= r_loose.cost_ratio() + 0.05,
        "k=0.1%: {} vs k=6.4%: {}",
        r_tight.cost_ratio(),
        r_loose.cost_ratio()
    );
}
