//! Integration: distributed tasks — local thresholds, global polls,
//! detection parity with a centralized evaluator.

use volley::core::coordinator::CoordinationScheme;
use volley::core::task::TaskSpec;
use volley::core::GroundTruth;
use volley::{DistributedTask, NetflowConfig, ThresholdSplit};
use volley_traces::DiurnalPattern;

fn traces(monitors: usize, ticks: usize, seed: u64) -> Vec<Vec<f64>> {
    NetflowConfig::builder()
        .seed(seed)
        .vms(monitors)
        .diurnal(DiurnalPattern::new(ticks as u64, 0.4))
        .build()
        .generate(ticks)
        .into_iter()
        .map(|t| t.rho)
        .collect()
}

/// With err = 0 (periodic sampling everywhere), the distributed task must
/// raise an alert at exactly the ticks where the centralized aggregate
/// exceeds the global threshold AND some local threshold is exceeded —
/// which, by the decomposition property, is every aggregate-violation
/// tick.
#[test]
fn periodic_distributed_task_detects_every_global_violation() {
    let monitors = 5;
    let ticks = 2500;
    let traces = traces(monitors, ticks, 99);
    // A global threshold low enough to be violated a handful of times.
    let aggregate: Vec<f64> = (0..ticks)
        .map(|t| traces.iter().map(|tr| tr[t]).sum())
        .collect();
    let global = volley::selectivity_threshold(&aggregate, 1.0).expect("valid");
    let truth = GroundTruth::from_aggregate_traces(&traces, global);
    assert!(truth.violation_count() > 0, "test needs violations");

    let spec = TaskSpec::builder(global)
        .monitors(monitors)
        .error_allowance(0.0)
        .build()
        .expect("valid spec");
    let mut task = DistributedTask::new(&spec).expect("valid task");
    let mut alert_ticks = Vec::new();
    let mut values = vec![0.0; monitors];
    for tick in 0..ticks as u64 {
        for (m, tr) in traces.iter().enumerate() {
            values[m] = tr[tick as usize];
        }
        if task.step(tick, &values).expect("step").alerted() {
            alert_ticks.push(tick);
        }
    }
    assert_eq!(
        alert_ticks,
        truth.violation_ticks(),
        "detection parity with centralized evaluation"
    );
}

/// The fundamental safety property of threshold decomposition: no global
/// violation can exist without at least one local violation, so a task
/// sampling at the default interval can never be blind-sided.
#[test]
fn decomposition_never_misses_at_default_interval() {
    for split in [ThresholdSplit::Even, ThresholdSplit::Proportional] {
        let monitors = 4;
        let ticks = 1500;
        let traces = traces(monitors, ticks, 7);
        let aggregate: Vec<f64> = (0..ticks)
            .map(|t| traces.iter().map(|tr| tr[t]).sum())
            .collect();
        let global = volley::selectivity_threshold(&aggregate, 0.5).expect("valid");
        let means: Vec<f64> = traces
            .iter()
            .map(|t| t.iter().sum::<f64>() / t.len() as f64)
            .collect();
        let spec = TaskSpec::builder(global)
            .threshold_split(split)
            .threshold_weights(means)
            .error_allowance(0.0)
            .build()
            .expect("valid spec");
        let mut task = DistributedTask::new(&spec).expect("valid task");
        let truth = GroundTruth::from_aggregate_traces(&traces, global);
        let mut detected = 0usize;
        let mut values = vec![0.0; monitors];
        for tick in 0..ticks as u64 {
            for (m, tr) in traces.iter().enumerate() {
                values[m] = tr[tick as usize];
            }
            if task.step(tick, &values).expect("step").alerted() {
                detected += 1;
            }
        }
        assert_eq!(detected, truth.violation_count(), "split {split:?}");
    }
}

#[test]
fn adaptive_task_saves_cost_with_bounded_misses() {
    let monitors = 6;
    let ticks = 4000;
    let traces = traces(monitors, ticks, 21);
    let thresholds: Vec<f64> = traces
        .iter()
        .map(|t| volley::selectivity_threshold(t, 1.0).expect("valid"))
        .collect();
    let global: f64 = thresholds.iter().sum();
    let spec = TaskSpec::builder(global)
        .monitors(monitors)
        .error_allowance(0.02)
        .max_interval(16)
        .patience(10)
        .build()
        .expect("valid spec");
    let mut task = DistributedTask::new(&spec).expect("valid task");
    for (i, th) in thresholds.iter().enumerate() {
        task.set_local_threshold(i, *th).expect("monitor exists");
    }
    let mut values = vec![0.0; monitors];
    for tick in 0..ticks as u64 {
        for (m, tr) in traces.iter().enumerate() {
            values[m] = tr[tick as usize];
        }
        task.step(tick, &values).expect("step");
    }
    assert!(task.cost_ratio() < 0.85, "cost ratio {}", task.cost_ratio());
}

#[test]
fn schemes_agree_when_monitors_are_homogeneous() {
    // With statistically identical monitors, the adaptive scheme should
    // stay within a few percent of the even baseline (the fixed point is
    // the even split).
    let monitors = 4;
    let ticks = 3000;
    let traces = traces(monitors, ticks, 5);
    let thresholds: Vec<f64> = traces
        .iter()
        .map(|t| volley::selectivity_threshold(t, 1.0).expect("valid"))
        .collect();
    let global: f64 = thresholds.iter().sum();
    let mut ratios = Vec::new();
    for scheme in [CoordinationScheme::Even, CoordinationScheme::Adaptive] {
        let spec = TaskSpec::builder(global)
            .monitors(monitors)
            .error_allowance(0.02)
            .max_interval(16)
            .patience(10)
            .build()
            .expect("valid spec");
        let mut task = DistributedTask::with_scheme(
            &spec,
            scheme,
            volley::core::allocation::AllocationConfig::default(),
        )
        .expect("valid task");
        for (i, th) in thresholds.iter().enumerate() {
            task.set_local_threshold(i, *th).expect("monitor exists");
        }
        let mut values = vec![0.0; monitors];
        for tick in 0..ticks as u64 {
            for (m, tr) in traces.iter().enumerate() {
                values[m] = tr[tick as usize];
            }
            task.step(tick, &values).expect("step");
        }
        ratios.push(task.cost_ratio());
    }
    assert!(
        (ratios[0] - ratios[1]).abs() < 0.10,
        "even {} vs adaptive {}",
        ratios[0],
        ratios[1]
    );
}

#[test]
fn task_state_is_serde_round_trippable_mid_run() {
    let monitors = 3;
    let ticks = 600usize;
    let traces = traces(monitors, ticks, 13);
    let spec = TaskSpec::builder(500.0)
        .monitors(monitors)
        .error_allowance(0.01)
        .build()
        .expect("valid spec");
    let mut task = DistributedTask::new(&spec).expect("valid task");
    let mut values = vec![0.0; monitors];
    for tick in 0..300u64 {
        for (m, tr) in traces.iter().enumerate() {
            values[m] = tr[tick as usize];
        }
        task.step(tick, &values).expect("step");
    }
    // Snapshot, restore, and verify identical continuation.
    let snapshot = serde_json::to_string(&task).expect("serializes");
    let mut restored: DistributedTask = serde_json::from_str(&snapshot).expect("deserializes");
    for tick in 300..ticks as u64 {
        for (m, tr) in traces.iter().enumerate() {
            values[m] = tr[tick as usize];
        }
        let a = task.step(tick, &values).expect("step");
        let b = restored.step(tick, &values).expect("step");
        assert_eq!(a, b, "diverged at tick {tick}");
    }
}
