//! Property tests of the socket frame codec: [`FrameBuffer`] must
//! reassemble newline-delimited frames identically no matter how the
//! kernel fragments the byte stream — arbitrary chunk boundaries,
//! byte-at-a-time delivery, polls interleaved between partial reads —
//! and must agree bit-for-bit with the blocking reader
//! (`read_frame_limited`) it replaces on the nonblocking path.

use std::io::BufReader;

use proptest::prelude::*;

use volley::runtime::net::FrameBuffer;
use volley::runtime::transport::read_frame_limited;

/// Builds the wire image: every frame payload (newline-free) terminated
/// by `\n`.
fn wire_image(frames: &[Vec<u8>]) -> Vec<u8> {
    let mut wire = Vec::new();
    for frame in frames {
        wire.extend_from_slice(frame);
        wire.push(b'\n');
    }
    wire
}

/// Sanitizes proptest byte vectors: strips newlines so each vec is one
/// frame payload.
fn payloads(raw: &[Vec<u16>]) -> Vec<Vec<u8>> {
    raw.iter()
        .map(|frame| {
            frame
                .iter()
                .map(|&b| b as u8)
                .filter(|&b| b != b'\n')
                .collect()
        })
        .collect()
}

/// Splits `wire` at the (deduplicated, sorted) cut points and feeds the
/// chunks to the buffer, draining complete frames after every chunk —
/// the exact access pattern of the nonblocking event loop.
fn reassemble(wire: &[u8], cuts: &[usize], max_frame: usize) -> Result<Vec<Vec<u8>>, ()> {
    let mut points: Vec<usize> = cuts.iter().map(|&c| c % (wire.len() + 1)).collect();
    points.push(0);
    points.push(wire.len());
    points.sort_unstable();
    points.dedup();

    let mut fb = FrameBuffer::new(max_frame);
    let mut out = Vec::new();
    for pair in points.windows(2) {
        fb.extend(&wire[pair[0]..pair[1]]);
        loop {
            match fb.next_frame() {
                Ok(Some(frame)) => out.push(frame.to_vec()),
                Ok(None) => break,
                Err(_) => return Err(()),
            }
        }
    }
    assert_eq!(
        fb.pending(),
        0,
        "a fully-delivered wire leaves nothing pending"
    );
    Ok(out)
}

proptest! {
    /// Any frame sequence survives any fragmentation: the reassembled
    /// frames equal the originals (newline included) regardless of where
    /// the stream was cut.
    #[test]
    fn arbitrary_splits_reassemble_exactly(
        raw in prop::collection::vec(prop::collection::vec(0u16..256, 0..48), 0..10),
        cuts in prop::collection::vec(0usize..4096, 0..24),
    ) {
        let frames = payloads(&raw);
        let wire = wire_image(&frames);
        let got = reassemble(&wire, &cuts, 64).expect("all payloads under the cap");
        prop_assert_eq!(got.len(), frames.len());
        for (frame, payload) in got.iter().zip(&frames) {
            prop_assert_eq!(&frame[..frame.len() - 1], &payload[..]);
            prop_assert_eq!(frame.last(), Some(&b'\n'));
        }
    }

    /// Byte-at-a-time delivery (the worst fragmentation the kernel can
    /// produce) gives the same result as one big chunk.
    #[test]
    fn byte_at_a_time_equals_single_chunk(
        raw in prop::collection::vec(prop::collection::vec(0u16..256, 0..32), 0..6),
    ) {
        let frames = payloads(&raw);
        let wire = wire_image(&frames);
        let every_byte: Vec<usize> = (0..=wire.len()).collect();
        let fine = reassemble(&wire, &every_byte, 64).expect("under cap");
        let coarse = reassemble(&wire, &[], 64).expect("under cap");
        prop_assert_eq!(fine, coarse);
    }

    /// The nonblocking reassembler agrees frame-for-frame with the
    /// blocking `read_frame_limited` on the same byte stream.
    #[test]
    fn agrees_with_blocking_reader(
        raw in prop::collection::vec(prop::collection::vec(0u16..256, 0..48), 0..8),
        cuts in prop::collection::vec(0usize..4096, 0..16),
    ) {
        let frames = payloads(&raw);
        let wire = wire_image(&frames);
        let nonblocking = reassemble(&wire, &cuts, 4096).expect("under cap");

        let mut reader = BufReader::new(&wire[..]);
        let mut blocking = Vec::new();
        while let Some(frame) = read_frame_limited(&mut reader, 4096).expect("reads") {
            blocking.push(frame.to_vec());
        }
        prop_assert_eq!(nonblocking, blocking);
    }

    /// Oversized frames error no matter how they are fragmented, and the
    /// error fires without waiting for a newline that may never come.
    #[test]
    fn oversized_frames_error_under_any_split(
        cap in 1usize..32,
        extra in 1usize..32,
        cuts in prop::collection::vec(0usize..128, 0..12),
    ) {
        let payload = vec![b'x'; cap + extra];
        let wire = wire_image(&[payload]);
        prop_assert!(reassemble(&wire, &cuts, cap).is_err());

        // Same oversize, but the newline never arrives: the cap must
        // still trip once pending bytes exceed it.
        let mut fb = FrameBuffer::new(cap);
        let headless = &wire[..wire.len() - 1];
        let mut errored = false;
        for &b in headless {
            fb.extend(&[b]);
            match fb.next_frame() {
                Ok(None) => {}
                Ok(Some(frame)) => panic!("no newline was sent, got {frame:?}"),
                Err(_) => {
                    errored = true;
                    break;
                }
            }
        }
        prop_assert!(errored, "cap must trip before a newline arrives");
    }

    /// Repeated polling while starved is stable: `Ok(None)` forever, no
    /// phantom frames, and `pending` tracks exactly the undelivered tail.
    #[test]
    fn polling_while_starved_is_stable(
        raw in prop::collection::vec(0u16..256, 1..64),
        polls in 1usize..8,
    ) {
        let payload: Vec<u8> = raw.iter().map(|&b| b as u8).filter(|&b| b != b'\n').collect();
        let mut fb = FrameBuffer::new(256);
        for (i, &b) in payload.iter().enumerate() {
            fb.extend(&[b]);
            for _ in 0..polls {
                prop_assert!(fb.next_frame().expect("under cap").is_none());
            }
            prop_assert_eq!(fb.pending(), i + 1);
        }
        fb.extend(b"\n");
        let frame = fb.next_frame().expect("under cap").expect("complete");
        prop_assert_eq!(&frame[..frame.len() - 1], &payload[..]);
        prop_assert_eq!(fb.pending(), 0);
    }
}
