//! Integration: the threaded message-passing runtime agrees exactly with
//! the step-driven reference implementation, and degrades predictably
//! under injected message loss.

use volley::core::coordinator::CoordinationScheme;
use volley::core::task::TaskSpec;
use volley::{DistributedTask, TaskRunner};
use volley_runtime::FailureInjector;

/// Deterministic pseudo-random traces (no external RNG needed).
fn traces(monitors: usize, ticks: usize, seed: u64) -> Vec<Vec<f64>> {
    (0..monitors)
        .map(|m| {
            let mut state = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(m as u64);
            (0..ticks)
                .map(|t| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let noise = (state >> 33) as f64 / (1u64 << 31) as f64; // 0..4
                    let base = 20.0 + 5.0 * (m as f64) + noise * 5.0;
                    // Periodic surges per monitor.
                    if t % (500 + m * 37) > (480 + m * 37) {
                        base + 120.0
                    } else {
                        base
                    }
                })
                .collect()
        })
        .collect()
}

fn spec(monitors: usize, global: f64, err: f64) -> TaskSpec {
    TaskSpec::builder(global)
        .monitors(monitors)
        .error_allowance(err)
        .max_interval(8)
        .patience(5)
        .warmup_samples(3)
        .build()
        .expect("valid spec")
}

fn reference_run(spec: &TaskSpec, traces: &[Vec<f64>]) -> (Vec<u64>, u64) {
    let mut task = DistributedTask::new(spec).expect("valid task");
    let ticks = traces[0].len();
    let mut alerts = Vec::new();
    let mut samples = 0u64;
    let mut values = vec![0.0; traces.len()];
    for tick in 0..ticks as u64 {
        for (m, tr) in traces.iter().enumerate() {
            values[m] = tr[tick as usize];
        }
        let out = task.step(tick, &values).expect("step");
        samples += u64::from(out.total_samples());
        if out.alerted() {
            alerts.push(tick);
        }
    }
    (alerts, samples)
}

#[test]
fn exact_parity_across_seeds_and_sizes() {
    for (monitors, seed) in [(2usize, 1u64), (3, 2), (5, 3)] {
        let traces = traces(monitors, 1200, seed);
        let spec = spec(monitors, 60.0 * monitors as f64, 0.02);
        let (ref_alerts, ref_samples) = reference_run(&spec, &traces);
        let report = TaskRunner::new(&spec)
            .expect("valid runner")
            .run(&traces)
            .expect("run succeeds");
        assert_eq!(
            report.alert_ticks, ref_alerts,
            "alerts (m={monitors}, seed={seed})"
        );
        assert_eq!(
            report.total_samples, ref_samples,
            "samples (m={monitors}, seed={seed})"
        );
    }
}

#[test]
fn parity_holds_for_even_scheme() {
    let monitors = 3;
    let traces = traces(monitors, 800, 11);
    let spec = spec(monitors, 200.0, 0.02);
    let mut reference = DistributedTask::with_scheme(
        &spec,
        CoordinationScheme::Even,
        volley::core::allocation::AllocationConfig::default(),
    )
    .expect("valid task");
    let mut ref_samples = 0u64;
    let mut values = vec![0.0; monitors];
    for tick in 0..800u64 {
        for (m, tr) in traces.iter().enumerate() {
            values[m] = tr[tick as usize];
        }
        ref_samples += u64::from(reference.step(tick, &values).expect("step").total_samples());
    }
    let report = TaskRunner::new(&spec)
        .expect("valid runner")
        .with_scheme(CoordinationScheme::Even)
        .run(&traces)
        .expect("run succeeds");
    assert_eq!(report.total_samples, ref_samples);
}

#[test]
fn message_loss_loses_alerts_monotonically() {
    let monitors = 2;
    let traces = traces(monitors, 1500, 4);
    let spec = spec(monitors, 100.0, 0.0); // periodic: maximal alert count
    let mut previous_alerts = u64::MAX;
    for (loss, seed) in [(0.0, 1u64), (0.5, 1), (1.0, 1)] {
        let report = TaskRunner::new(&spec)
            .expect("valid runner")
            .with_failure(FailureInjector::new(loss, seed))
            .run(&traces)
            .expect("run succeeds");
        assert!(
            report.alerts <= previous_alerts,
            "alerts should not increase with loss ({loss}: {} vs {previous_alerts})",
            report.alerts
        );
        previous_alerts = report.alerts;
        if loss == 0.0 {
            assert!(report.alerts > 0, "lossless run should alert");
        }
        if loss == 1.0 {
            assert_eq!(report.alerts, 0, "total loss cannot alert");
            assert_eq!(report.polls, 0);
        }
    }
}

#[test]
fn runtime_handles_many_monitors() {
    let monitors = 16;
    let traces = traces(monitors, 400, 9);
    let spec = spec(monitors, 50.0 * monitors as f64, 0.05);
    let report = TaskRunner::new(&spec)
        .expect("valid runner")
        .run(&traces)
        .expect("run succeeds");
    assert_eq!(report.ticks, 400);
    assert!(report.total_samples > 0);
}
