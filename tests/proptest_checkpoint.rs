//! Property tests of the durability layer: every snapshot type survives a
//! `to_snapshot`/`from_snapshot`/serialize round trip, WAL records
//! round-trip through their CRC framing, and the WAL decoder never panics
//! on truncated or bit-flipped input — corruption can at worst shrink
//! what recovery restores, never crash it.

use proptest::prelude::*;

use volley::core::snapshot::{DeltaSnapshot, EwmaSnapshot, SamplerSnapshot, StatsSnapshot};
use volley::core::stats::{DeltaTracker, EwmaStats, OnlineStats};
use volley::core::{AdaptationConfig, AdaptiveSampler, Interval};
use volley::runtime::checkpoint::{
    decode_records, encode_record, CoordinatorSnapshot, TickOutcome, WalRecord,
};

/// A sampler grown through real observations, so its snapshot satisfies
/// every invariant the restore path round-trips exactly.
fn grown_sampler(threshold: f64, err: f64, steps: u64) -> AdaptiveSampler {
    let cfg = AdaptationConfig::builder()
        .error_allowance(0.05)
        .max_interval(8)
        .patience(3)
        .warmup_samples(3)
        .build()
        .unwrap();
    let mut sampler = AdaptiveSampler::new(cfg, threshold);
    sampler.set_error_allowance(err);
    let mut tick = 0u64;
    for i in 0..steps {
        let obs = sampler.observe(tick, (i % 11) as f64);
        tick = obs.next_sample_tick.max(tick + 1);
    }
    // Drain the §IV-B period aggregates: snapshots deliberately exclude
    // them, so equality after restore requires an empty period.
    sampler.drain_period_report();
    sampler
}

fn tick_record(epoch: u64, tick: u64, violations: u32) -> WalRecord {
    WalRecord::Tick(TickOutcome {
        epoch,
        tick,
        polled: violations > 0,
        alerted: violations > 2,
        local_violations: violations,
    })
}

fn snapshot_record(epoch: u64, tick: u64, samplers: Vec<Option<SamplerSnapshot>>) -> WalRecord {
    let n = samplers.len();
    WalRecord::Snapshot(CoordinatorSnapshot {
        epoch,
        tick,
        next_update_tick: tick + 100,
        allowances: vec![0.01; n],
        samplers,
    })
}

proptest! {
    /// `OnlineStats` → snapshot → restore is the identity.
    #[test]
    fn stats_snapshot_round_trips(
        values in prop::collection::vec(-1e6f64..1e6, 0..64),
        restart_after in 2u32..10_000,
    ) {
        let mut stats = OnlineStats::with_restart_after(restart_after);
        for v in &values {
            stats.update(*v);
        }
        let snap = stats.to_snapshot();
        prop_assert_eq!(OnlineStats::from_snapshot(&snap), stats);
        // And the snapshot itself survives serialization.
        let json = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, snap);
    }

    /// `EwmaStats` → snapshot → restore is the identity.
    #[test]
    fn ewma_snapshot_round_trips(
        lambda in 0.001f64..1.0,
        values in prop::collection::vec(-1e6f64..1e6, 0..64),
    ) {
        let mut ewma = EwmaStats::new(lambda);
        for v in &values {
            ewma.update(*v);
        }
        let snap = ewma.to_snapshot();
        prop_assert_eq!(EwmaStats::from_snapshot(&snap), ewma);
        let json = serde_json::to_string(&snap).unwrap();
        let back: EwmaSnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, snap);
    }

    /// `DeltaTracker` (with and without the EWMA estimator) round-trips,
    /// including the cached last sample.
    #[test]
    fn delta_snapshot_round_trips(
        use_ewma in 0u8..2,
        samples in prop::collection::vec((0u64..1_000_000, -1e6f64..1e6), 0..32),
    ) {
        let mut tracker = if use_ewma == 1 {
            DeltaTracker::with_ewma(0.2)
        } else {
            DeltaTracker::new()
        };
        let mut last_tick = None;
        for (tick, value) in &samples {
            // Ticks must advance for δ̂ normalization to stay sane.
            let tick = last_tick.map_or(*tick % 1000, |t: u64| t + 1 + *tick % 1000);
            tracker.record(tick, *value, Interval::DEFAULT);
            last_tick = Some(tick);
        }
        let snap = tracker.to_snapshot();
        prop_assert_eq!(DeltaTracker::from_snapshot(&snap), tracker);
        let json = serde_json::to_string(&snap).unwrap();
        let back: DeltaSnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, snap);
    }

    /// A sampler grown through arbitrary-length real runs round-trips its
    /// full adaptation state.
    #[test]
    fn sampler_snapshot_round_trips(
        threshold in 1.0f64..1e6,
        err in 0.0f64..0.2,
        steps in 0u64..80,
    ) {
        let sampler = grown_sampler(threshold, err, steps);
        let snap = sampler.to_snapshot();
        prop_assert_eq!(AdaptiveSampler::from_snapshot(&snap), sampler);
        let json = serde_json::to_string(&snap).unwrap();
        let back: SamplerSnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, snap);
    }

    /// A well-formed WAL stream decodes back to exactly the records that
    /// were appended, with the latest snapshot winning and only the ticks
    /// behind it in the tail.
    #[test]
    fn wal_streams_round_trip(
        epoch in 0u64..1000,
        ticks_before in 0u64..8,
        ticks_after in 0u64..8,
        steps in 0u64..40,
    ) {
        let mut bytes = Vec::new();
        for t in 0..ticks_before {
            bytes.extend(encode_record(&tick_record(epoch, t, (t % 4) as u32)));
        }
        let sampler = grown_sampler(100.0, 0.01, steps);
        let snap = snapshot_record(epoch, ticks_before, vec![Some(sampler.to_snapshot()), None]);
        bytes.extend(encode_record(&snap));
        for t in 0..ticks_after {
            bytes.extend(encode_record(&tick_record(epoch, ticks_before + 1 + t, 0)));
        }

        let replay = decode_records(&bytes);
        prop_assert!(!replay.truncated);
        prop_assert_eq!(replay.records, ticks_before + 1 + ticks_after);
        prop_assert_eq!(replay.valid_len, bytes.len());
        let restored = replay.snapshot.expect("snapshot survives");
        prop_assert_eq!(restored.tick, ticks_before);
        prop_assert_eq!(restored.samplers[0], Some(sampler.to_snapshot()));
        prop_assert_eq!(restored.samplers[1], None);
        // Only post-snapshot ticks are newer than the checkpoint horizon.
        prop_assert_eq!(replay.tail.len() as u64, ticks_after);
    }

    /// Truncating a valid stream anywhere never panics and never
    /// *invents* records: the replay is a prefix of the full one.
    #[test]
    fn truncated_wal_never_panics(
        records in 1u64..8,
        cut_ratio in 0.0f64..1.0,
    ) {
        let mut bytes = Vec::new();
        for t in 0..records {
            bytes.extend(encode_record(&tick_record(1, t, (t % 3) as u32)));
        }
        let full = decode_records(&bytes);
        let cut = ((bytes.len() as f64) * cut_ratio) as usize;
        let replay = decode_records(&bytes[..cut]);
        prop_assert!(replay.records <= full.records);
        prop_assert!(replay.valid_len <= cut);
        if cut < bytes.len() {
            // Whole records decode; the torn tail is flagged unless the
            // cut landed exactly on a record boundary.
            prop_assert_eq!(replay.truncated, replay.valid_len < cut);
        }
    }

    /// Flipping any single bit anywhere in the stream never panics, and
    /// everything *before* the corrupted record still replays (the
    /// truncated-tail rule).
    #[test]
    fn bit_flipped_wal_never_panics(
        records in 1u64..8,
        flip_byte in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for t in 0..records {
            bytes.extend(encode_record(&tick_record(2, t, 1)));
            boundaries.push(bytes.len());
        }
        let flip_byte = flip_byte % bytes.len();
        bytes[flip_byte] ^= 1 << flip_bit;

        let replay = decode_records(&bytes);
        // Records wholly before the flipped byte are untouched; the CRC
        // guarantees nothing *after* the flip decodes as valid data.
        let intact = boundaries.iter().filter(|&&b| b <= flip_byte).count() - 1;
        prop_assert!(replay.records >= intact as u64);
        for (i, outcome) in replay.tail.iter().enumerate() {
            if i < intact {
                prop_assert_eq!(outcome.tick, i as u64);
            }
        }
    }

    /// Arbitrary garbage bytes never panic the decoder.
    #[test]
    fn arbitrary_bytes_never_panic(
        raw in prop::collection::vec(0u16..256, 0..256),
    ) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let _ = decode_records(&bytes);
    }
}
