//! Property tests of the durability layer: every snapshot type survives a
//! `to_snapshot`/`from_snapshot`/serialize round trip, WAL records
//! round-trip through their CRC framing, and the WAL decoder never panics
//! on truncated or bit-flipped input — corruption can at worst shrink
//! what recovery restores, never crash it. A live [`Wal`] driven through
//! a fault-injecting filesystem upholds the same contract end to end:
//! torn, short, errored and unsynced writes never panic recovery and
//! never lose a record whose append was acknowledged as persisted.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use volley::core::snapshot::{DeltaSnapshot, EwmaSnapshot, SamplerSnapshot, StatsSnapshot};
use volley::core::stats::{DeltaTracker, EwmaStats, OnlineStats};
use volley::core::vfs::{CircuitBreaker, FaultFs, IoFaultPlan};
use volley::core::{AdaptationConfig, AdaptiveSampler, Interval};
use volley::runtime::checkpoint::{
    decode_records, encode_record, AppendOutcome, CoordinatorSnapshot, MultitaskSnapshot,
    TickOutcome, Wal, WalRecord, WalSyncPolicy,
};

/// A unique on-disk scratch directory per proptest case, so shrinking
/// reruns never collide with each other or with parallel test binaries.
fn case_dir(prefix: &str) -> std::path::PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let id = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("{prefix}-{}-{id}", std::process::id()))
}

/// A sampler grown through real observations, so its snapshot satisfies
/// every invariant the restore path round-trips exactly.
fn grown_sampler(threshold: f64, err: f64, steps: u64) -> AdaptiveSampler {
    let cfg = AdaptationConfig::builder()
        .error_allowance(0.05)
        .max_interval(8)
        .patience(3)
        .warmup_samples(3)
        .build()
        .unwrap();
    let mut sampler = AdaptiveSampler::new(cfg, threshold);
    sampler.set_error_allowance(err);
    let mut tick = 0u64;
    for i in 0..steps {
        let obs = sampler.observe(tick, (i % 11) as f64);
        tick = obs.next_sample_tick.max(tick + 1);
    }
    // Drain the §IV-B period aggregates: snapshots deliberately exclude
    // them, so equality after restore requires an empty period.
    sampler.drain_period_report();
    sampler
}

fn tick_record(epoch: u64, tick: u64, violations: u32) -> WalRecord {
    WalRecord::Tick(TickOutcome {
        epoch,
        tick,
        polled: violations > 0,
        alerted: violations > 2,
        local_violations: violations,
    })
}

fn snapshot_record(epoch: u64, tick: u64, samplers: Vec<Option<SamplerSnapshot>>) -> WalRecord {
    let n = samplers.len();
    WalRecord::Snapshot(CoordinatorSnapshot {
        epoch,
        tick,
        next_update_tick: tick + 100,
        allowances: vec![0.01; n],
        samplers,
        multitask: tick.is_multiple_of(2).then_some(MultitaskSnapshot {
            engaged: tick.is_multiple_of(4),
            flips: tick / 3,
            suppressed: tick,
        }),
    })
}

proptest! {
    /// `OnlineStats` → snapshot → restore is the identity.
    #[test]
    fn stats_snapshot_round_trips(
        values in prop::collection::vec(-1e6f64..1e6, 0..64),
        restart_after in 2u32..10_000,
    ) {
        let mut stats = OnlineStats::with_restart_after(restart_after);
        for v in &values {
            stats.update(*v);
        }
        let snap = stats.to_snapshot();
        prop_assert_eq!(OnlineStats::from_snapshot(&snap), stats);
        // And the snapshot itself survives serialization.
        let json = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, snap);
    }

    /// `EwmaStats` → snapshot → restore is the identity.
    #[test]
    fn ewma_snapshot_round_trips(
        lambda in 0.001f64..1.0,
        values in prop::collection::vec(-1e6f64..1e6, 0..64),
    ) {
        let mut ewma = EwmaStats::new(lambda);
        for v in &values {
            ewma.update(*v);
        }
        let snap = ewma.to_snapshot();
        prop_assert_eq!(EwmaStats::from_snapshot(&snap), ewma);
        let json = serde_json::to_string(&snap).unwrap();
        let back: EwmaSnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, snap);
    }

    /// `DeltaTracker` (with and without the EWMA estimator) round-trips,
    /// including the cached last sample.
    #[test]
    fn delta_snapshot_round_trips(
        use_ewma in 0u8..2,
        samples in prop::collection::vec((0u64..1_000_000, -1e6f64..1e6), 0..32),
    ) {
        let mut tracker = if use_ewma == 1 {
            DeltaTracker::with_ewma(0.2)
        } else {
            DeltaTracker::new()
        };
        let mut last_tick = None;
        for (tick, value) in &samples {
            // Ticks must advance for δ̂ normalization to stay sane.
            let tick = last_tick.map_or(*tick % 1000, |t: u64| t + 1 + *tick % 1000);
            tracker.record(tick, *value, Interval::DEFAULT);
            last_tick = Some(tick);
        }
        let snap = tracker.to_snapshot();
        prop_assert_eq!(DeltaTracker::from_snapshot(&snap), tracker);
        let json = serde_json::to_string(&snap).unwrap();
        let back: DeltaSnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, snap);
    }

    /// A sampler grown through arbitrary-length real runs round-trips its
    /// full adaptation state.
    #[test]
    fn sampler_snapshot_round_trips(
        threshold in 1.0f64..1e6,
        err in 0.0f64..0.2,
        steps in 0u64..80,
    ) {
        let sampler = grown_sampler(threshold, err, steps);
        let snap = sampler.to_snapshot();
        prop_assert_eq!(AdaptiveSampler::from_snapshot(&snap), sampler);
        let json = serde_json::to_string(&snap).unwrap();
        let back: SamplerSnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, snap);
    }

    /// A well-formed WAL stream decodes back to exactly the records that
    /// were appended, with the latest snapshot winning and only the ticks
    /// behind it in the tail.
    #[test]
    fn wal_streams_round_trip(
        epoch in 0u64..1000,
        ticks_before in 0u64..8,
        ticks_after in 0u64..8,
        steps in 0u64..40,
    ) {
        let mut bytes = Vec::new();
        for t in 0..ticks_before {
            bytes.extend(encode_record(&tick_record(epoch, t, (t % 4) as u32)));
        }
        let sampler = grown_sampler(100.0, 0.01, steps);
        let snap = snapshot_record(epoch, ticks_before, vec![Some(sampler.to_snapshot()), None]);
        bytes.extend(encode_record(&snap));
        for t in 0..ticks_after {
            bytes.extend(encode_record(&tick_record(epoch, ticks_before + 1 + t, 0)));
        }

        let replay = decode_records(&bytes);
        prop_assert!(!replay.truncated);
        prop_assert_eq!(replay.records, ticks_before + 1 + ticks_after);
        prop_assert_eq!(replay.valid_len, bytes.len());
        let restored = replay.snapshot.expect("snapshot survives");
        prop_assert_eq!(restored.tick, ticks_before);
        prop_assert_eq!(restored.samplers[0], Some(sampler.to_snapshot()));
        prop_assert_eq!(restored.samplers[1], None);
        // Only post-snapshot ticks are newer than the checkpoint horizon.
        prop_assert_eq!(replay.tail.len() as u64, ticks_after);
    }

    /// Truncating a valid stream anywhere never panics and never
    /// *invents* records: the replay is a prefix of the full one.
    #[test]
    fn truncated_wal_never_panics(
        records in 1u64..8,
        cut_ratio in 0.0f64..1.0,
    ) {
        let mut bytes = Vec::new();
        for t in 0..records {
            bytes.extend(encode_record(&tick_record(1, t, (t % 3) as u32)));
        }
        let full = decode_records(&bytes);
        let cut = ((bytes.len() as f64) * cut_ratio) as usize;
        let replay = decode_records(&bytes[..cut]);
        prop_assert!(replay.records <= full.records);
        prop_assert!(replay.valid_len <= cut);
        if cut < bytes.len() {
            // Whole records decode; the torn tail is flagged unless the
            // cut landed exactly on a record boundary.
            prop_assert_eq!(replay.truncated, replay.valid_len < cut);
        }
    }

    /// Flipping any single bit anywhere in the stream never panics, and
    /// everything *before* the corrupted record still replays (the
    /// truncated-tail rule).
    #[test]
    fn bit_flipped_wal_never_panics(
        records in 1u64..8,
        flip_byte in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for t in 0..records {
            bytes.extend(encode_record(&tick_record(2, t, 1)));
            boundaries.push(bytes.len());
        }
        let flip_byte = flip_byte % bytes.len();
        bytes[flip_byte] ^= 1 << flip_bit;

        let replay = decode_records(&bytes);
        // Records wholly before the flipped byte are untouched; the CRC
        // guarantees nothing *after* the flip decodes as valid data.
        let intact = boundaries.iter().filter(|&&b| b <= flip_byte).count() - 1;
        prop_assert!(replay.records >= intact as u64);
        for (i, outcome) in replay.tail.iter().enumerate() {
            if i < intact {
                prop_assert_eq!(outcome.tick, i as u64);
            }
        }
    }

    /// Arbitrary garbage bytes never panic the decoder.
    #[test]
    fn arbitrary_bytes_never_panic(
        raw in prop::collection::vec(0u16..256, 0..256),
    ) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let _ = decode_records(&bytes);
    }

    /// A live WAL driven through a fault-injecting filesystem — torn
    /// writes, short writes, clean EIO, failed fsyncs, an optional
    /// ENOSPC storm — never panics, and under a sync-every-append
    /// policy every record whose append was acknowledged
    /// [`AppendOutcome::Persisted`] survives replay in order. Faults may
    /// cost *unacknowledged* records, never acknowledged ones.
    #[test]
    fn faulted_wal_never_loses_persisted_records(
        seed in 0u64..10_000,
        error_rate in 0.0f64..0.6,
        short_rate in 0.0f64..0.6,
        torn_rate in 0.0f64..0.6,
        sync_rate in 0.0f64..0.6,
        enospc_from in 0u64..32,
        enospc_ticks in 0u64..16, // 0 = no ENOSPC storm
        records in 1u64..48,
    ) {
        let dir = case_dir("volley-prop-wal");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("faulted.wal");
        let mut plan = IoFaultPlan::new(seed)
            .with_error_rate(error_rate)
            .with_short_writes(short_rate)
            .with_torn_writes(torn_rate)
            .with_sync_errors(sync_rate);
        if enospc_ticks > 0 {
            plan = plan.with_enospc_window(enospc_from, enospc_ticks);
        }
        let mut wal = Wal::create_on(Arc::new(FaultFs::new(plan)), &path)
            .unwrap()
            .with_sync_policy(WalSyncPolicy::EveryN(1))
            .with_breaker(CircuitBreaker::with_backoff(2, 1, 4));
        let mut persisted = Vec::new();
        for t in 0..records {
            let record = tick_record(1, t, (t % 3) as u32);
            if let Ok(AppendOutcome::Persisted) = wal.append(&record) {
                persisted.push(t);
            }
        }
        drop(wal);

        // Recovery reads the real bytes the faulted writes left behind.
        let replay = Wal::replay(&path).unwrap();
        let replayed: Vec<u64> = replay.tail.iter().map(|o| o.tick).collect();
        let mut cursor = replayed.iter();
        for t in &persisted {
            prop_assert!(
                cursor.any(|r| r == t),
                "persisted tick {t} lost; replay holds {replayed:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
