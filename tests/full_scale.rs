//! Full-testbed-scale runs (ignored by default; run with
//! `cargo test --release -- --ignored`).

use volley::sim::{ClusterConfig, NetworkScenario, NetworkScenarioConfig};

/// The paper's complete deployment: 800 VMs over a full day of 15-second
/// windows (4.6M potential sampling events), in one simulator run.
#[test]
#[ignore = "full scale: ~minutes in debug, seconds in release"]
fn paper_testbed_full_day() {
    let config = NetworkScenarioConfig {
        cluster: ClusterConfig::paper(),
        error_allowance: 0.01,
        selectivity_percent: 1.0,
        ticks: 5760,
        seed: 20130708,
        ..NetworkScenarioConfig::default()
    };
    let report = NetworkScenario::from_config(config).run();
    let cpu = report.cpu.as_ref().expect("utilization recorded");
    // The periodic-sampling calibration band and the adaptive savings
    // must both hold at full scale.
    assert!(
        report.cost_ratio() < 0.9,
        "cost ratio {}",
        report.cost_ratio()
    );
    assert!(cpu.mean < 0.27, "mean Dom0 utilization {}", cpu.mean);
    assert!(
        report.accuracy.misdetection_rate() <= 0.01,
        "miss rate {} above allowance",
        report.accuracy.misdetection_rate()
    );
    // 800 VMs × 5760 windows of utilization samples were recorded.
    assert_eq!(report.cpu_values.len(), 20 * 5760);
}
