//! End-to-end tests of the live §II.B multi-task suppression on the
//! threaded runtime: a planted leader/follower cascade yields a gate
//! that saves follower samples without missing its post-training
//! alerts, and the follower-gate state survives a coordinator
//! crash/failover — the WAL checkpoint round-trips the suppression
//! counters bit-for-bit, so a standby resumes pacing where the deposed
//! primary stopped.

use volley::core::correlation::CorrelationConfig;
use volley::core::task::TaskSpec;
use volley::runtime::checkpoint::Wal;
use volley::runtime::{MultiTask, MultiTaskConfig, MultiTaskRunner};

fn spec() -> TaskSpec {
    TaskSpec::builder(100.0)
        .monitors(1)
        .error_allowance(0.05)
        .max_interval(4)
        .patience(2)
        .warmup_samples(2)
        .build()
        .expect("valid spec")
}

/// Violating (200 > 100) on `offset..offset + 8` of every 40-tick
/// period, calm otherwise.
fn burst_trace(ticks: u64, offset: u64) -> Vec<f64> {
    (0..ticks)
        .map(|t| {
            if (offset..offset + 8).contains(&(t % 40)) {
                200.0
            } else {
                5.0
            }
        })
        .collect()
}

/// Leader bursts first, the follower echoes two ticks later, a
/// bystander never violates.
fn cascade(ticks: u64) -> Vec<MultiTask> {
    vec![
        MultiTask::new(spec(), vec![burst_trace(ticks, 10)]),
        MultiTask::new(spec(), vec![burst_trace(ticks, 12)]),
        MultiTask::new(spec(), vec![vec![5.0; ticks as usize]]),
    ]
}

fn config(train_ticks: u64) -> MultiTaskConfig {
    MultiTaskConfig {
        correlation: CorrelationConfig {
            min_confidence: 0.8,
            min_support: 5,
            ..CorrelationConfig::default()
        },
        train_ticks,
        costs: None,
    }
}

#[test]
fn suppression_saves_follower_samples_without_missing_alerts() {
    let ticks = 600;
    let gated = MultiTaskRunner::new(config(200))
        .expect("valid config")
        .run(&cascade(ticks))
        .expect("gated run");
    // Training at least as long as the run = the ungated baseline.
    let ungated = MultiTaskRunner::new(config(ticks))
        .expect("valid config")
        .run(&cascade(ticks))
        .expect("ungated run");

    assert_eq!(gated.gates.len(), 1, "gates: {:?}", gated.gates);
    assert_eq!((gated.gates[0].follower, gated.gates[0].leader), (1, 0));
    assert!(ungated.gates.is_empty());
    assert!(gated.suppressed_samples > 0);
    assert!(
        gated.total_samples() < ungated.total_samples(),
        "suppression must save samples ({} vs {})",
        gated.total_samples(),
        ungated.total_samples()
    );
    // The gate costs no detections: every burst the ungated follower
    // alerts on, the gated follower alerts on too.
    assert_eq!(
        gated.reports[1].alerts, ungated.reports[1].alerts,
        "snap-back must preserve the follower's alerts"
    );
    // The leader keeps full fidelity (never gated, identical sampling).
    assert!(gated.reports[0].multitask.is_none());
    assert_eq!(
        gated.reports[0].total_samples,
        ungated.reports[0].total_samples
    );
}

#[test]
fn gate_state_survives_checkpoint_round_trip() {
    let base = std::env::temp_dir().join(format!("volley-mt-roundtrip-{}", std::process::id()));
    let primary = base.join("primary");
    std::fs::create_dir_all(&primary).expect("create wal dir");
    let outcome = MultiTaskRunner::new(config(200))
        .expect("valid config")
        .with_wal_dir(&primary, 1)
        .run(&cascade(400))
        .expect("checkpointed run");
    let section = outcome.reports[1].multitask.expect("follower gated");

    // The "crash": all that remains of the coordinator is its WAL.
    let replay = Wal::replay(primary.join("task-1.wal")).expect("replay survives");
    let snapshot = replay.snapshot.expect("snapshot persisted");
    let persisted = snapshot.multitask.expect("gate state checkpointed");
    assert_eq!(persisted.flips, section.gate_flips);
    // The final tick's suppression lands after that tick's snapshot, so
    // the persisted counter may trail by at most one monitor-tick.
    assert!(
        persisted.suppressed <= section.suppressed_samples
            && persisted.suppressed + 1 >= section.suppressed_samples,
        "persisted {} vs live {}",
        persisted.suppressed,
        section.suppressed_samples
    );

    // Failover: the standby re-persists the recovered snapshot into its
    // own WAL; replaying that must yield the identical gate state.
    let standby = base.join("standby");
    std::fs::create_dir_all(&standby).expect("create standby dir");
    let mut wal = Wal::create(standby.join("task-1.wal")).expect("standby wal");
    wal.append_snapshot(&snapshot).expect("re-checkpoint");
    drop(wal);
    let restored = Wal::replay(standby.join("task-1.wal")).expect("standby replay");
    assert_eq!(
        restored.snapshot.expect("standby snapshot").multitask,
        Some(persisted),
        "gate state must round-trip bit-for-bit"
    );
    std::fs::remove_dir_all(&base).ok();
}
